"""Tests for the campaign execution runtime (:mod:`repro.runtime`).

The heart of this module is the determinism contract: for one job spec
and seed, serial in-process execution, a one-worker pool and a
four-worker pool must produce identical outcomes — and a campaign
interrupted mid-flight must, after resume, tally exactly like one that
never crashed.
"""

import multiprocessing
import os

import pytest

from repro.analysis import Evaluation
from repro.core import FaultModel, build_fades
from repro.core.campaign import FadesCampaign
from repro.core.classify import Outcome
from repro.core.config import FaultLoadSpec
from repro.core.faults import Fault, Target, TargetKind
from repro.errors import JournalError, SchedulerError
from repro.runtime import (CampaignJobSpec, CampaignMetrics, JobRunner,
                           MAX_SHARD_SIZE, derive_fault_seed, plan_shards,
                           read_journal, resume_campaign, run_campaign)

from helpers import build_counter

COUNT = 8

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def evaluation():
    return Evaluation()


@pytest.fixture(scope="module")
def jobspec(evaluation):
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, COUNT)
    return CampaignJobSpec.from_evaluation(evaluation, spec,
                                           faultload_seed=evaluation.seed)


@pytest.fixture(scope="module")
def serial_result(jobspec):
    return run_campaign(jobspec)


def outcomes(result):
    return [experiment.outcome for experiment in result.experiments]


class TestDeterminism:
    def test_engine_serial_matches_legacy_path(self, evaluation, jobspec,
                                               serial_result):
        legacy = evaluation.fades.run(jobspec.spec, seed=evaluation.seed)
        assert outcomes(legacy) == outcomes(serial_result)
        assert legacy.counts().as_dict() == \
            serial_result.counts().as_dict()
        assert legacy.mean_emulation_s == \
            pytest.approx(serial_result.mean_emulation_s)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_worker_pool_matches_serial(self, jobspec, serial_result,
                                        workers):
        result = run_campaign(jobspec, workers=workers)
        assert outcomes(result) == outcomes(serial_result)
        assert result.counts().as_dict() == \
            serial_result.counts().as_dict()
        assert result.mean_emulation_s == \
            pytest.approx(serial_result.mean_emulation_s)

    def test_oscillating_faults_shard_deterministically(self, evaluation):
        # Oscillating indeterminations consume the injector randomiser
        # every cycle — the per-fault reseed must still make sharded
        # execution order-independent.
        spec = evaluation.spec(FaultModel.INDETERMINATION, "ffs", 2, 6,
                               oscillate=True)
        jobspec = CampaignJobSpec.from_evaluation(
            evaluation, spec, faultload_seed=evaluation.seed)
        serial = run_campaign(jobspec)
        sharded = run_campaign(jobspec, workers=2)
        assert outcomes(sharded) == outcomes(serial)

    def test_derive_fault_seed_is_stable_and_distinct(self):
        seeds = [derive_fault_seed(2006, index) for index in range(64)]
        assert len(set(seeds)) == 64
        assert seeds == [derive_fault_seed(2006, index)
                         for index in range(64)]
        assert seeds != [derive_fault_seed(2007, index)
                         for index in range(64)]


class Interrupted(RuntimeError):
    """Injected mid-campaign 'crash' for resume tests."""


class TestJournalResume:
    def test_resume_after_interrupt(self, jobspec, serial_result,
                                    tmp_path):
        journal = str(tmp_path / "campaign.jsonl")

        def crash_after_three(snapshot):
            if snapshot.completed >= 3:
                raise Interrupted()

        with pytest.raises(Interrupted):
            run_campaign(jobspec, journal=journal,
                         progress=crash_after_three)
        state = read_journal(journal)
        assert state.header is not None
        assert len(state.records) == 3
        assert state.summary is None

        snapshots = []
        resumed = resume_campaign(journal, progress=snapshots.append)
        assert outcomes(resumed) == outcomes(serial_result)
        assert resumed.counts().as_dict() == \
            serial_result.counts().as_dict()
        # The resumed run skipped the journaled three and only executed
        # the remaining five.
        assert snapshots[-1].skipped == 3
        assert snapshots[-1].completed == COUNT - 3
        state = read_journal(journal)
        assert len(state.records) == COUNT
        assert state.summary is not None
        assert state.summary["failure"] == serial_result.counts().failure

    def test_rerun_skips_complete_journal(self, jobspec, serial_result,
                                          tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        run_campaign(jobspec, journal=journal)
        snapshots = []
        again = run_campaign(jobspec, journal=journal,
                             progress=snapshots.append)
        assert outcomes(again) == outcomes(serial_result)
        assert snapshots[-1].skipped == COUNT
        assert snapshots[-1].completed == 0

    def test_torn_tail_line_is_dropped(self, jobspec, serial_result,
                                       tmp_path):
        journal = str(tmp_path / "campaign.jsonl")

        def crash_after_two(snapshot):
            if snapshot.completed >= 2:
                raise Interrupted()

        with pytest.raises(Interrupted):
            run_campaign(jobspec, journal=journal,
                         progress=crash_after_two)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"type": "record", "index": 5, "outc')
        state = read_journal(journal)
        assert state.dropped_lines == 1
        assert len(state.records) == 2
        resumed = resume_campaign(journal)
        assert resumed.counts().as_dict() == \
            serial_result.counts().as_dict()

    def test_journal_rejects_different_campaign(self, jobspec, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        run_campaign(jobspec, journal=journal)
        other = jobspec.with_count(COUNT + 1)
        with pytest.raises(JournalError):
            run_campaign(other, journal=journal)

    def test_resume_needs_a_header(self, tmp_path):
        journal = tmp_path / "empty.jsonl"
        journal.write_text("")
        with pytest.raises(JournalError):
            resume_campaign(str(journal))
        with pytest.raises(JournalError):
            resume_campaign(str(tmp_path / "missing.jsonl"))

    def test_jobspec_roundtrips_through_header(self, jobspec):
        assert CampaignJobSpec.from_dict(jobspec.to_dict()) == jobspec


class TestScheduler:
    def test_plan_shards_partitions_exactly(self):
        indices = list(range(100))
        shards = plan_shards(indices, workers=4)
        covered = [index for shard in shards for index in shard.indices]
        assert sorted(covered) == indices
        assert all(len(shard.indices) <= MAX_SHARD_SIZE
                   for shard in shards)
        assert len({shard.shard_id for shard in shards}) == len(shards)

    def test_plan_shards_explicit_size_and_empty(self):
        assert plan_shards([], workers=4) == []
        shards = plan_shards(list(range(10)), workers=2, shard_size=3)
        assert [len(shard.indices) for shard in shards] == [3, 3, 3, 1]

    @pytest.mark.skipif(not HAS_FORK,
                        reason="crash simulation needs fork start method")
    def test_worker_crash_requeues_and_respawns(self, jobspec,
                                                serial_result, tmp_path,
                                                monkeypatch):
        flag = tmp_path / "crashed-once"
        original = JobRunner.run_index

        def sabotage(self, index):
            if index == 2 and not flag.exists():
                flag.write_text("boom")
                os._exit(13)
            return original(self, index)

        monkeypatch.setattr(JobRunner, "run_index", sabotage)
        snapshots = []
        result = run_campaign(jobspec, workers=2,
                              progress=snapshots.append)
        assert flag.exists()
        assert snapshots[-1].retries >= 1
        assert outcomes(result) == outcomes(serial_result)

    @pytest.mark.skipif(not HAS_FORK,
                        reason="crash simulation needs fork start method")
    def test_persistent_failure_quarantines_poison_fault(
            self, jobspec, serial_result, monkeypatch):
        # A fault that fails deterministically must not kill the
        # campaign: after the retry budget it is bisected out,
        # journaled as Quarantined, and every other fault still
        # classifies exactly as an undisturbed run.
        original = JobRunner.run_index

        def sabotage(self, index):
            if index == 1:
                raise ValueError("always broken")
            return original(self, index)

        monkeypatch.setattr(JobRunner, "run_index", sabotage)
        result = run_campaign(jobspec, workers=1, max_retries=1)
        assert len(result.experiments) == COUNT
        poisoned = result.experiments[1]
        assert poisoned.quarantined
        assert poisoned.outcome is Outcome.QUARANTINED
        assert "always broken" in (poisoned.error or "")
        clean = [outcome for index, outcome
                 in enumerate(outcomes(result)) if index != 1]
        expected = [outcome for index, outcome
                    in enumerate(outcomes(serial_result)) if index != 1]
        assert clean == expected
        assert result.counts().quarantined == 1
        assert result.counts().total == COUNT - 1

    @pytest.mark.skipif(not HAS_FORK,
                        reason="crash simulation needs fork start method")
    def test_pool_without_quarantine_callback_still_aborts(self, jobspec):
        # Direct WorkerPool users that did not opt into quarantine keep
        # the historical abort contract.  An out-of-range fault index
        # raises deterministically inside the worker.
        from repro.runtime.scheduler import Shard, WorkerPool
        pool = WorkerPool(jobspec, workers=1, max_retries=0,
                          backoff_base=0.0)
        poisoned = Shard(shard_id=0, indices=(10 ** 9,))
        with pytest.raises(SchedulerError):
            pool.run([poisoned], lambda shard, records: None)


class TestMetrics:
    def test_phases_throughput_and_eta(self):
        now = [0.0]
        metrics = CampaignMetrics(clock=lambda: now[0])
        metrics.set_total(10, skipped=2)
        with metrics.phase("setup"):
            now[0] += 1.0
        with metrics.phase("experiments"):
            now[0] += 2.0
            metrics.record({"cost": {"locate_s": 0.5, "transfer_s": 0.25,
                                     "workload_s": 0.25,
                                     "overhead_s": 0.0}})
        snapshot = metrics.snapshot()
        assert snapshot.phases["setup"] == pytest.approx(1.0)
        assert snapshot.phases["experiments"] == pytest.approx(2.0)
        assert snapshot.completed == 1
        assert snapshot.skipped == 2
        assert snapshot.pending == 7
        assert snapshot.emulated_s == pytest.approx(1.0)
        assert snapshot.throughput == pytest.approx(1.0 / 3.0)
        assert snapshot.eta_s == pytest.approx(21.0)
        assert "exp/s" in snapshot.render()

    def test_progress_interval_throttles_callbacks(self):
        snapshots = []
        metrics = CampaignMetrics(progress=snapshots.append,
                                  progress_interval=3)
        metrics.set_total(7)
        for _ in range(7):
            metrics.record({})
        assert [snapshot.completed for snapshot in snapshots] == [3, 6, 7]

    def test_zero_wall_clock_is_safe(self):
        metrics = CampaignMetrics(clock=lambda: 0.0)
        snapshot = metrics.snapshot()
        assert snapshot.throughput == 0.0
        # Nothing pending: the campaign is (vacuously) drained.
        assert snapshot.eta_s == 0.0

    def test_eta_is_none_before_first_record(self):
        metrics = CampaignMetrics(clock=lambda: 0.0)
        metrics.set_total(10)
        snapshot = metrics.snapshot()
        assert snapshot.pending == 10
        assert snapshot.eta_s is None
        assert "eta --:--" in snapshot.render()


class TestGoldenCache:
    def _bitflip(self, start):
        return Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), start)

    def test_golden_simulated_once_across_classes(self):
        campaign = build_fades(build_counter(), seed=1,
                               inputs={"en": 1})
        campaign.run_faults([self._bitflip(3)], 40, label="class-a")
        campaign.run_faults([self._bitflip(7)], 40, label="class-b")
        assert campaign.golden_simulations == 1

    def test_golden_keyed_by_workload_and_cycles(self):
        campaign = build_fades(build_counter(), seed=1,
                               inputs={"en": 1})
        campaign.golden_run(40)
        campaign.golden_run(60)
        assert campaign.golden_simulations == 2
        # Changing the workload (the constant input assignment) must not
        # serve the stale trace.
        enabled = campaign.golden_run(40)
        campaign.inputs["en"] = 0
        disabled = campaign.golden_run(40)
        assert campaign.golden_simulations == 3
        assert not disabled.same_outputs(enabled)


class TestScreenSeed:
    def test_screen_default_seed_is_historical(self):
        campaign = build_fades(build_counter(), seed=1, inputs={"en": 1})
        default = campaign.screen_sensitive_ffs(40, samples_per_ff=1)
        pinned = campaign.screen_sensitive_ffs(40, samples_per_ff=1,
                                               seed=7)
        assert default == pinned

    def test_screen_seed_reaches_the_rng(self, monkeypatch):
        import random as random_module
        seen = []
        original = random_module.Random

        class Spy(original):
            def __init__(self, seed=None):
                seen.append(seed)
                super().__init__(seed)

        monkeypatch.setattr("repro.core.campaign.random.Random", Spy)
        campaign = build_fades(build_counter(), seed=1, inputs={"en": 1})
        seen.clear()
        campaign.screen_sensitive_ffs(40, samples_per_ff=1, seed=99)
        assert seen[0] == 99
