"""Tests for the reusable demonstration designs.

Each design is checked against its Python oracle, then pushed through the
full synthesis + implementation flow and re-checked on the FPGA device —
the same golden-equivalence discipline as the 8051.
"""

import random

import pytest

from repro.designs import (counter, fir_filter, fir_reference, gray_counter,
                           lfsr, lfsr_reference, majority_voter,
                           shift_register, tmr_counter, uart_reference,
                           uart_tx)
from repro.errors import ElaborationError
from repro.fpga import Device, implement
from repro.hdl import NetlistSim
from repro.synth import synthesize


def device_for(netlist):
    impl = implement(synthesize(netlist).mapped)
    device = Device(impl)
    device.reset_system()
    return device


class TestBasicDesigns:
    def test_counter_counts(self):
        sim = NetlistSim(counter(6))
        sim.reset()
        for expected in range(70):
            assert sim.step({"en": 1})["value"] == expected % 64

    def test_gray_counter_invariant(self):
        sim = NetlistSim(gray_counter(6))
        sim.reset()
        previous = sim.step()["gray_out"]
        for _ in range(80):
            current = sim.step()["gray_out"]
            assert bin(previous ^ current).count("1") == 1
            previous = current

    def test_lfsr_matches_reference(self):
        taps = (16, 15, 13, 4)
        sim = NetlistSim(lfsr(16, taps))
        sim.reset()
        expected = lfsr_reference(16, taps, 50)
        sim.step()  # state visible after the first edge is the seed
        for value in expected:
            assert sim.step()["state_out"] == value

    def test_lfsr_period_is_maximal_prefix(self):
        # The chosen polynomial is maximal: no repeat within a short run.
        sim = NetlistSim(lfsr(8, (8, 6, 5, 4)))
        sim.reset()
        seen = set()
        for _ in range(255):
            seen.add(sim.step()["state_out"])
        assert len(seen) == 255

    def test_lfsr_rejects_bad_taps(self):
        with pytest.raises(ElaborationError):
            lfsr(8, (9, 1))

    def test_shift_register_delays_input(self):
        sim = NetlistSim(shift_register(depth=4, width=4))
        sim.reset()
        sent = [3, 7, 1, 9, 12, 5, 8, 2]
        received = []
        for value in sent:
            received.append(sim.step({"din": value, "shift": 1})["dout"])
        # After 4 shifts the first word emerges.
        assert received[4:] == sent[:4]

    def test_majority_voter_masks_single_corruption(self):
        sim = NetlistSim(majority_voter(8))
        sim.reset()
        sim.step({"a": 0x5A, "b": 0x5A, "c": 0x13})
        outputs = sim.step()
        assert outputs["out"] == 0x5A
        assert outputs["disagree"] == 1
        sim.step({"a": 7, "b": 7, "c": 7})
        outputs = sim.step()
        assert outputs["out"] == 7
        assert outputs["disagree"] == 0


class TestFir:
    def test_matches_reference(self):
        coefficients = (1, 3, 3, 1)
        netlist = fir_filter(coefficients)
        sim = NetlistSim(netlist)
        sim.reset()
        rng = random.Random(3)
        samples = [rng.randrange(256) for _ in range(25)]
        # step() reports outputs from the evaluation phase, one capture
        # behind: the value returned while accepting sample k is the
        # registered result of edge k-1, i.e. fir_reference's out[k-1].
        observed = [sim.step({"sample": value, "valid": 1})["result_out"]
                    for value in samples]
        observed.append(sim.step({"sample": 0, "valid": 1})["result_out"])
        expected = fir_reference(coefficients, samples)
        assert observed[1:] == expected

    def test_impulse_response_is_coefficients(self):
        coefficients = (2, 5, 1)
        sim = NetlistSim(fir_filter(coefficients))
        sim.reset()
        sim.step({"sample": 1, "valid": 1})
        response = []
        for _ in range(len(coefficients) + 1):
            response.append(sim.step({"sample": 0, "valid": 1})
                            ["result_out"])
        # First observation is the pre-impulse zero (one capture behind).
        assert response == [0] + list(coefficients)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ElaborationError):
            fir_filter((1, -2))

    def test_device_equivalence(self):
        netlist = fir_filter((1, 2, 2, 1))
        device = device_for(netlist)
        ref = NetlistSim(netlist)
        ref.reset()
        rng = random.Random(9)
        for _ in range(30):
            vector = {"sample": rng.randrange(256), "valid": 1}
            assert ref.step(vector) == device.step(vector)


class TestUart:
    def _transmit(self, sim, byte, divider):
        sim.step({"data": byte, "send": 1})
        # The frame begins on the very next cycle (first START cycle).
        wave = [sim.step({"send": 0})["txd"]]
        for _ in range(10 * divider):
            wave.append(sim.step()["txd"])
        return wave

    @pytest.mark.parametrize("byte", [0x00, 0xFF, 0x55, 0xA7])
    def test_frame_matches_reference(self, byte):
        divider = 3
        sim = NetlistSim(uart_tx(divider))
        sim.reset()
        sim.step({"send": 0})
        assert sim.step()["txd"] == 1  # line idles high
        wave = self._transmit(sim, byte, divider)
        expected = uart_reference(byte, divider)
        # Align on the first low cycle (start-bit onset).
        start = wave.index(0)
        assert wave[start:start + len(expected) - divider] == \
            expected[:len(expected) - divider]

    def test_busy_during_frame(self):
        divider = 2
        sim = NetlistSim(uart_tx(divider))
        sim.reset()
        sim.step({"data": 0x3C, "send": 1})
        sim.step({"send": 0})
        busy = [sim.step()["busy"] for _ in range(10 * divider + 4)]
        assert busy[0] == 1
        assert busy[-1] == 0  # back to idle after the stop bit

    def test_divider_validated(self):
        with pytest.raises(ElaborationError):
            uart_tx(0)

    def test_device_equivalence(self):
        netlist = uart_tx(3)
        device = device_for(netlist)
        ref = NetlistSim(netlist)
        ref.reset()
        vectors = [{"data": 0x96, "send": 1}, {"send": 0}] + [{}] * 40
        for vector in vectors:
            assert ref.step(vector or None) == device.step(vector or None)


class TestDesignsThroughFades:
    def test_tmr_replica_faults_are_masked(self):
        # A bit-flip confined to ONE replica of the TMR counter is
        # outvoted at the output (Latent at worst); flipping the same bit
        # in two replicas at once defeats the redundancy.
        from repro.core import Outcome, multi_ff_bitflip
        from test_core_injector import make_campaign
        campaign = make_campaign(tmr_counter(4), inputs={"en": 1})
        locmap = campaign.locmap
        bit = 1  # counter bit of each replica
        replica_ffs = [locmap.signal(f"count{r}").bits[bit].index
                       for r in range(3)]
        single = campaign.run_experiment(
            multi_ff_bitflip(replica_ffs[:1], 5), 20)
        double = campaign.run_experiment(
            multi_ff_bitflip(replica_ffs[:2], 5), 20)
        assert single.outcome in (Outcome.SILENT, Outcome.LATENT)
        assert double.outcome is Outcome.FAILURE

    def test_tmr_pulse_campaign_shows_masking(self):
        # Pulses across replica logic: the failure rate must be far lower
        # than on the plain counter (the voter hides single-replica hits).
        from repro.core import FaultLoadSpec, FaultModel
        from test_core_injector import make_campaign
        tmr = make_campaign(tmr_counter(4), inputs={"en": 1})
        plain = make_campaign(counter(4), inputs={"en": 1})
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=15,
                             workload_cycles=24)
        tmr_failures = tmr.run(spec, seed=4).failure_percent()
        plain_failures = plain.run(spec, seed=4).failure_percent()
        assert tmr_failures < plain_failures
