"""Tests for the live-observability layer: the ``.tsdb`` time-series
sampler, the alert rule engine, the ``--serve-obs`` HTTP exporter, and
the ``repro top`` dashboard.

The contract under test is the barrier-clock design from ``DESIGN.md``:
samples and alert evaluations happen only at the engine's batch
barriers, land durably in CRC-sealed sidecar lines next to the journal,
and everything a live scraper sees over HTTP can be reconstructed after
the fact from the journal + sidecar alone.
"""

import json
import multiprocessing
import urllib.error
import urllib.request

import pytest

from repro import chaos
from repro.analysis import Evaluation
from repro.chaos import ChaosPlan
from repro.cli import main as cli_main
from repro.core import FaultModel
from repro.errors import ObservabilityError
from repro.obs import server as obs_server
from repro.obs.alerts import (AlertEngine, AlertRule, built_in_rules,
                              load_rules_toml, parse_rule_spec)
from repro.obs.live import (outcome_bar, render_dashboard, run_top,
                            sparkline, status_from_journal)
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.rundiff import diff_runs, load_profile
from repro.obs.server import ObsServer, parse_serve_spec
from repro.obs.timeseries import (TimeseriesSampler, TsdbWriter,
                                  line_crc, read_tsdb, seal_line,
                                  tsdb_path_for)
from repro.runtime import CampaignJobSpec, read_journal, run_campaign
from repro.runtime.metrics import MetricsSnapshot

COUNT = 8

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker pool requires the fork start method")


@pytest.fixture(scope="module")
def evaluation():
    return Evaluation()


@pytest.fixture(autouse=True)
def clean_chaos():
    chaos.clear()
    yield
    chaos.clear()


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def snap(completed=0, skipped=0, total=COUNT, **kwargs):
    return MetricsSnapshot(total=total, completed=completed,
                           skipped=skipped, **kwargs)


# ---------------------------------------------------------------------------
# .tsdb sidecar: sealed lines, torn tails, advisory reads
# ---------------------------------------------------------------------------
class TestTsdb:
    def test_roundtrip_preserves_samples(self, tmp_path):
        path = str(tmp_path / "run.tsdb")
        with TsdbWriter(path) as writer:
            writer.append({"t": 0.5, "n": 1, "outcomes": {"latent": 1}})
            writer.append({"t": 1.5, "n": 2, "outcomes": {"latent": 2}})
        samples, dropped = read_tsdb(path)
        assert dropped == 0
        assert [sample["n"] for sample in samples] == [1, 2]
        assert samples[0]["outcomes"] == {"latent": 1}
        assert all(sample["crc"] == line_crc(sample)
                   for sample in samples)

    def test_torn_tail_is_dropped_then_truncated(self, tmp_path):
        path = str(tmp_path / "run.tsdb")
        with TsdbWriter(path) as writer:
            writer.append({"t": 0.0, "n": 1})
            writer.append({"t": 1.0, "n": 2})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"t": 2.0, "n"')  # crash mid-append
        samples, dropped = read_tsdb(path)
        assert [sample["n"] for sample in samples] == [1, 2]
        assert dropped == 1
        # Reopening for append truncates the torn tail in place, so the
        # next sample never glues onto the crash signature.
        with TsdbWriter(path) as writer:
            writer.append({"t": 2.0, "n": 3})
        samples, dropped = read_tsdb(path)
        assert [sample["n"] for sample in samples] == [1, 2, 3]
        assert dropped == 0

    def test_interior_corruption_costs_one_sample_not_the_file(
            self, tmp_path):
        path = str(tmp_path / "run.tsdb")
        lines = [seal_line({"t": float(i), "n": i}) for i in range(3)]
        lines[1] = lines[1].replace('"n": 1', '"n": 9')  # CRC now wrong
        (tmp_path / "run.tsdb").write_text("\n".join(lines) + "\n")
        samples, dropped = read_tsdb(path)
        assert [sample["n"] for sample in samples] == [0, 2]
        assert dropped == 1

    def test_missing_file_is_refused(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_tsdb(str(tmp_path / "nope.tsdb"))

    def test_sidecar_path_derivation(self):
        assert tsdb_path_for("out.jsonl") == "out.jsonl.tsdb"


class TestSampler:
    def test_interval_throttles_between_samples(self):
        sampler = TimeseriesSampler(interval=1.0,
                                    clock=FakeClock(step=0.4),
                                    registry=MetricsRegistry())
        taken = [sampler.sample(snap(completed=i)) is not None
                 for i in range(1, 7)]
        # t = 0.4, 0.8, 1.2, 1.6, 2.0, 2.4 against a 1.0 s spacing.
        assert taken == [True, False, False, True, False, False]
        assert sampler.sample(snap(completed=7), force=True) is not None

    def test_sample_shape_and_ewma_smoothing(self):
        sampler = TimeseriesSampler(interval=0.0, clock=FakeClock(),
                                    registry=MetricsRegistry())
        first = sampler.sample(snap(completed=2,
                                    outcomes={"failure": 2}))
        second = sampler.sample(snap(completed=6,
                                     outcomes={"failure": 6}))
        assert first["n"] == 2 and second["n"] == 6
        assert first["throughput"] == pytest.approx(2.0)
        assert second["throughput"] == pytest.approx(4.0)
        # EWMA: 0.3 * 4.0 + 0.7 * 2.0
        assert second["ewma"] == pytest.approx(2.6)
        assert second["outcomes"] == {"failure": 6}
        assert second["pending"] == 2
        for field in ("hangs", "retries", "quarantined", "fallbacks",
                      "chaos", "alerts"):
            assert field in second

    def test_counters_report_campaign_relative_deltas(self):
        registry = MetricsRegistry()
        hangs = registry.counter("worker_hangs_total", "test")
        hangs.inc()  # pre-existing count from an earlier campaign
        sampler = TimeseriesSampler(interval=0.0, clock=FakeClock(),
                                    registry=registry)
        hangs.inc()
        sample = sampler.sample(snap(completed=1))
        assert sample["hangs"] == 1.0  # not 2: baseline subtracted

    def test_ring_buffer_is_bounded(self):
        sampler = TimeseriesSampler(interval=0.0, capacity=4,
                                    clock=FakeClock(step=0.1),
                                    registry=MetricsRegistry())
        for i in range(10):
            sampler.sample(snap(completed=i), force=True)
        assert len(sampler.samples) == 4
        assert sampler.last["n"] == 9


# ---------------------------------------------------------------------------
# alert rules
# ---------------------------------------------------------------------------
class TestAlertRules:
    def test_parse_named_spec_with_options(self):
        rule = parse_rule_spec(
            "slow:ewma<0.5:for=10:severity=critical")
        assert rule == AlertRule("slow", field="ewma", op="<",
                                 value=0.5, for_s=10.0,
                                 severity="critical")

    def test_parse_anonymous_condition_and_mode(self):
        rule = parse_rule_spec("failure > 3:mode=delta")
        assert rule.name == "failure___3"
        assert (rule.field, rule.op, rule.value) == ("failure", ">", 3.0)
        assert rule.mode == "delta"

    def test_bad_specs_are_refused(self):
        for spec in ("", "noname", "x:ewma~0.5", "x:ewma<0.5:blah=1",
                     "x:ewma<0.5:mode=sideways"):
            with pytest.raises(ObservabilityError):
                parse_rule_spec(spec)

    def test_toml_rules_load(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "rules.toml"
        path.write_text('[[rules]]\nname = "slow"\n'
                        'field = "throughput"\nop = "<"\nvalue = 0.5\n'
                        'for_s = 10.0\n')
        rules = load_rules_toml(str(path))
        assert rules == [AlertRule("slow", field="throughput", op="<",
                                   value=0.5, for_s=10.0)]
        (tmp_path / "empty.toml").write_text("x = 1\n")
        with pytest.raises(ObservabilityError):
            load_rules_toml(str(tmp_path / "empty.toml"))

    def test_built_in_rule_names(self):
        names = {rule.name for rule in built_in_rules()}
        assert names == {"worker_hang_spike", "compile_fallback",
                         "quarantine_burst", "throughput_stall"}

    def test_duplicate_rule_names_refused(self):
        rule = AlertRule("twin", field="n", op=">", value=1.0)
        with pytest.raises(ObservabilityError):
            AlertEngine(rules=[rule, rule])

    def test_level_rule_fires_on_transition_and_resolves(self):
        engine = AlertEngine(
            rules=[AlertRule("slow", field="ewma", op="<", value=0.5)])
        fired = engine.evaluate({"t": 0.0, "ewma": 0.4})
        assert [event.rule for event in fired] == ["slow"]
        assert engine.active[0]["rule"] == "slow"
        # Still breached: active but no re-fire.
        assert engine.evaluate({"t": 1.0, "ewma": 0.3}) == []
        # Recovered: resolves; a later breach fires again.
        assert engine.evaluate({"t": 2.0, "ewma": 0.9}) == []
        assert engine.active == []
        assert len(engine.evaluate({"t": 3.0, "ewma": 0.1})) == 1

    def test_delta_rule_watches_cumulative_counters(self):
        engine = AlertEngine(rules=[AlertRule(
            "hangs", field="hangs", op=">", value=0.0, mode="delta")])
        first = {"t": 0.0, "hangs": 0.0}
        assert engine.evaluate(first) == []
        second = {"t": 1.0, "hangs": 2.0}
        assert len(engine.evaluate(second, first)) == 1
        third = {"t": 2.0, "hangs": 2.0}  # no new hangs: resolves
        assert engine.evaluate(third, second) == []
        assert engine.active == []

    def test_sustain_window_delays_firing(self):
        engine = AlertEngine(rules=[AlertRule(
            "slow", field="ewma", op="<", value=0.5, for_s=5.0)])
        assert engine.evaluate({"t": 0.0, "ewma": 0.1}) == []
        assert engine.evaluate({"t": 3.0, "ewma": 0.1}) == []
        assert len(engine.evaluate({"t": 6.0, "ewma": 0.1})) == 1

    def test_stall_rule_needs_pending_work(self):
        engine = AlertEngine(rules=[AlertRule(
            "stuck", field="n", op="==", value=0.0, mode="stall",
            for_s=10.0)])
        assert engine.evaluate({"t": 0.0, "n": 5, "pending": 3}) == []
        assert engine.evaluate({"t": 5.0, "n": 5, "pending": 3}) == []
        fired = engine.evaluate({"t": 12.0, "n": 5, "pending": 3})
        assert [event.rule for event in fired] == ["stuck"]
        # Progress resolves it; a drained campaign never stalls.
        assert engine.evaluate({"t": 13.0, "n": 6, "pending": 2}) == []
        assert engine.active == []
        assert engine.evaluate({"t": 30.0, "n": 6, "pending": 0}) == []

    def test_firing_increments_labelled_counter_and_history(self):
        counter = REGISTRY.counter("alerts_fired_total")
        before = counter.total()
        events = []
        engine = AlertEngine(
            rules=[AlertRule("burst", field="failure", op=">",
                             value=1.0, severity="critical")],
            on_event=events.append)
        engine.evaluate({"t": 1.0, "outcomes": {"failure": 3}})
        assert counter.total() == before + 1
        assert [event.rule for event in events] == ["burst"]
        assert engine.history[-1]["severity"] == "critical"

    def test_replayed_journal_lines_are_marked(self):
        engine = AlertEngine()
        engine.replay([{"type": "alert", "rule": "old", "t": 4.0,
                        "crc": "xx"}])
        entry = engine.history[0]
        assert entry["rule"] == "old" and entry["replayed"] is True
        assert "crc" not in entry and "type" not in entry


# ---------------------------------------------------------------------------
# HTTP exporter
# ---------------------------------------------------------------------------
class TestServer:
    def test_parse_serve_spec(self):
        assert parse_serve_spec("9100") == ("127.0.0.1", 9100)
        assert parse_serve_spec("0.0.0.0:9100") == ("0.0.0.0", 9100)
        assert parse_serve_spec(":0") == ("127.0.0.1", 0)
        for bad in ("abc", "host:port", "70000"):
            with pytest.raises(ObservabilityError):
                parse_serve_spec(bad)

    def test_endpoints(self):
        registry = MetricsRegistry()
        registry.counter("campaign_records_total", "test").inc(
            outcome="latent")
        server = ObsServer("127.0.0.1:0",
                           lambda: {"campaign": "unit", "n": 3},
                           registry=registry)
        with server.start():
            assert obs_server.current() is server

            def get(path):
                with urllib.request.urlopen(server.url + path,
                                            timeout=5) as reply:
                    return reply.status, reply.read().decode("utf-8")

            assert get("/healthz") == (200, "ok\n")
            code, metrics_text = get("/metrics")
            assert code == 200
            assert 'campaign_records_total{outcome="latent"} 1' \
                in metrics_text
            code, status_text = get("/status")
            assert code == 200
            assert json.loads(status_text) == {"campaign": "unit",
                                               "n": 3}
            with pytest.raises(urllib.error.HTTPError) as caught:
                get("/nope")
            assert caught.value.code == 404
        assert obs_server.current() is None

    def test_bound_port_is_discoverable(self):
        server = ObsServer("127.0.0.1:0", dict)
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"
        server.close()


# ---------------------------------------------------------------------------
# engine integration: one serial campaign with the full stack attached
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_run(evaluation, tmp_path_factory):
    """A journaled serial campaign serving live observability, with
    every endpoint scraped from inside the progress callback."""
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, COUNT)
    jobspec = CampaignJobSpec.from_evaluation(
        evaluation, spec, faultload_seed=evaluation.seed)
    journal = str(tmp_path_factory.mktemp("live") / "campaign.jsonl")
    captured = {}

    def scrape(_snapshot):
        server = obs_server.current()
        if server is None:
            return
        for path in ("/healthz", "/metrics", "/status"):
            with urllib.request.urlopen(server.url + path,
                                        timeout=5) as reply:
                captured[path] = reply.read().decode("utf-8")

    rules = built_in_rules() + [
        AlertRule("progress", field="n", op=">", value=2.0)]
    result = run_campaign(jobspec, journal=journal, progress=scrape,
                          serve_obs="127.0.0.1:0", alert_rules=rules,
                          sample_interval=0.0)
    return {"result": result, "journal": journal, "captured": captured}


class TestEngineIntegration:
    def test_endpoints_served_while_running(self, live_run):
        captured = live_run["captured"]
        assert captured["/healthz"] == "ok\n"
        assert "campaign_records_total" in captured["/metrics"]
        status = json.loads(captured["/status"])
        assert status["campaign"] == live_run["result"].spec_label
        assert 0 < status["n"] <= COUNT
        assert status["total"] == COUNT
        assert status["finished"] is False
        assert isinstance(status["series"], list)

    def test_server_is_torn_down_with_the_campaign(self, live_run):
        assert obs_server.current() is None

    def test_tsdb_sidecar_lands_next_to_the_journal(self, live_run):
        samples, dropped = read_tsdb(
            tsdb_path_for(live_run["journal"]))
        assert dropped == 0
        assert samples  # close() force-takes a final sample
        assert samples[-1]["n"] == COUNT
        ns = [sample["n"] for sample in samples]
        assert ns == sorted(ns)
        assert sum(samples[-1]["outcomes"].values()) == COUNT

    def test_custom_rule_fired_journalled_and_exported(self, live_run):
        state = read_journal(live_run["journal"])
        assert any(entry.get("rule") == "progress"
                   for entry in state.alerts)
        assert 'alerts_fired_total{rule="progress"}' \
            in live_run["captured"]["/metrics"]

    def test_status_rebuilds_from_durable_state(self, live_run):
        status, samples = status_from_journal(live_run["journal"])
        assert status["finished"] is True
        assert status["n"] == COUNT
        assert sum(status["outcomes"].values()) == COUNT
        assert samples  # the sidecar feeds the offline sparkline
        assert any(entry.get("rule") == "progress"
                   for entry in status["alert_history"])

    def test_top_once_renders_the_finished_campaign(self, live_run,
                                                    capsys):
        assert cli_main(["top", live_run["journal"], "--once"]) == 0
        out = capsys.readouterr().out
        assert "[done]" in out
        assert f"n {COUNT}/{COUNT}" in out
        assert "progress" in out  # the fired alert is listed

    def test_obs_diff_of_identical_runs_passes(self, live_run, capsys):
        tsdb = tsdb_path_for(live_run["journal"])
        assert cli_main(["obs", "diff", tsdb, tsdb]) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out


# ---------------------------------------------------------------------------
# repro top rendering + run diffing, offline
# ---------------------------------------------------------------------------
class TestDashboard:
    def test_sparkline_scales_to_peak(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"
        assert sparkline([]) == ""

    def test_outcome_bar_shares(self):
        bar = outcome_bar({"failure": 3, "latent": 1})
        assert bar.index("failure") < bar.index("latent")
        assert "3 (75%)" in bar and "1 (25%)" in bar
        assert outcome_bar({}) == "(no experiments yet)"

    def test_render_dashboard_active_alerts_and_workers(self):
        text = render_dashboard({
            "campaign": "bitflip/ffs", "n": 4, "total": 8,
            "total_exact": False, "elapsed_s": 2.0,
            "throughput": 1.5, "eta_s": 61.0,
            "workers": {"configured": 2, "alive": 1},
            "retries": 1, "hangs": 1, "quarantined": 0,
            "outcomes": {"failure": 4},
            "series": [0.5, 1.0, 1.5],
            "alerts": [{"rule": "worker_hang_spike",
                        "severity": "warning",
                        "condition": "hangs>0 [delta]"}],
            "alert_history": [{"rule": "worker_hang_spike",
                               "severity": "warning", "t": 1.2,
                               "message": "m"}],
            "finished": False})
        assert "n 4/<=8" in text  # adaptive budget renders as a bound
        assert "workers 1/2" in text
        assert "eta 01:01" in text
        assert "ALERTS" in text and "worker_hang_spike" in text
        assert "fired      1 alert" in text

    def test_render_dashboard_quiet_campaign(self):
        text = render_dashboard({"campaign": "x", "n": 8, "total": 8,
                                 "outcomes": {"latent": 8},
                                 "finished": True})
        assert "[done]" in text
        assert "alerts     none" in text

    def test_run_top_reports_missing_journal(self, tmp_path):
        assert run_top(str(tmp_path / "nope.jsonl"), once=True) == 1


class TestRunDiff:
    @staticmethod
    def _write_tsdb(path, throughputs):
        with TsdbWriter(str(path)) as writer:
            for i, rate in enumerate(throughputs):
                writer.append({
                    "t": float(i), "n": i + 1, "throughput": rate,
                    "ewma": rate, "outcomes": {"failure": i + 1},
                    "phases": {"experiments": float(i)}})

    def test_regression_detected_and_rendered(self, tmp_path):
        self._write_tsdb(tmp_path / "fast.tsdb", [10.0, 10.0])
        self._write_tsdb(tmp_path / "slow.tsdb", [1.0, 1.0])
        report, regressed = diff_runs(str(tmp_path / "fast.tsdb"),
                                      str(tmp_path / "slow.tsdb"),
                                      regress_pct=10.0)
        assert regressed
        assert "throughput (exp/s)" in report and "REGRESSED" in report
        # The same comparison in the improving direction is clean.
        _report, regressed = diff_runs(str(tmp_path / "slow.tsdb"),
                                       str(tmp_path / "fast.tsdb"),
                                       regress_pct=10.0)
        assert not regressed

    def test_profile_loads_reject_junk(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"not": "a summary"}')
        with pytest.raises(ObservabilityError):
            load_profile(str(path))
        with pytest.raises(ObservabilityError):
            load_profile(str(tmp_path / "missing.tsdb"))

    def test_cli_diff_exits_nonzero_on_regression(self, tmp_path,
                                                  capsys):
        self._write_tsdb(tmp_path / "a.tsdb", [10.0, 10.0])
        self._write_tsdb(tmp_path / "b.tsdb", [1.0, 1.0])
        assert cli_main(["obs", "diff", str(tmp_path / "a.tsdb"),
                         str(tmp_path / "b.tsdb")]) == 1
        assert "REGRESSED" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# chaos end-to-end: an injected hang must reach every surface
# ---------------------------------------------------------------------------
@needs_fork
class TestChaosHangAlert:
    def test_worker_hang_fires_alert_on_every_surface(
            self, evaluation, tmp_path, capsys):
        spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, 12)
        jobspec = CampaignJobSpec.from_evaluation(
            evaluation, spec, faultload_seed=evaluation.seed)
        chaos.install(ChaosPlan.from_spec("seed=7;worker_hang:index=1"))
        journal = str(tmp_path / "chaos.jsonl")
        scrapes = {}

        def scrape(_snapshot):
            server = obs_server.current()
            if server is None:
                return
            with urllib.request.urlopen(server.url + "/metrics",
                                        timeout=5) as reply:
                scrapes["metrics"] = reply.read().decode("utf-8")
            with urllib.request.urlopen(server.url + "/status",
                                        timeout=5) as reply:
                scrapes["status"] = json.loads(reply.read().decode())

        result = run_campaign(jobspec, workers=2, shard_timeout=1.0,
                              shard_size=4, journal=journal,
                              progress=scrape,
                              serve_obs="127.0.0.1:0",
                              sample_interval=0.0)
        assert len(result.experiments) == 12

        # 1. the Prometheus scrape taken *while running* carries the
        #    labelled firing counter;
        assert 'alerts_fired_total{rule="worker_hang_spike"}' \
            in scrapes["metrics"]
        assert scrapes["status"]["workers"]["configured"] == 2
        # 2. the journal holds a durable alert line;
        state = read_journal(journal)
        assert any(entry.get("rule") == "worker_hang_spike"
                   for entry in state.alerts)
        # 3. repro top renders it after the fact.
        assert cli_main(["top", journal, "--once"]) == 0
        out = capsys.readouterr().out
        assert "worker_hang_spike" in out
