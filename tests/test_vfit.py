"""Tests for the VFIT baseline: commands, campaigns, cost model."""

import pytest

from repro.core import FaultLoadSpec, FaultModel, Outcome
from repro.core.faults import Fault, Target, TargetKind
from repro.errors import InjectionError, UnsupportedFaultError
from repro.hdl import FourValuedSim, logic
from repro.vfit import (VfitCampaign, VfitCommands, VfitTimeModel,
                        VfitTimingParams, vfit_faultload, vfit_pool_targets)

from helpers import build_accumulator, build_counter


@pytest.fixture()
def counter_sim():
    return FourValuedSim(build_counter(4))


@pytest.fixture()
def counter_campaign():
    return VfitCampaign(build_counter(4), inputs={"en": 1})


class TestCommands:
    def test_bitflip_ff(self, counter_sim):
        sim = counter_sim
        sim.reset()
        sim.run(5, {"en": 1})
        commands = VfitCommands(sim)
        before = sim.ff_state()[0]
        commands.inject(Fault(FaultModel.BITFLIP,
                              Target(TargetKind.FF, 0), 0))
        assert sim.ff_state()[0] == before ^ 1
        assert commands.commands_issued == 1

    def test_bitflip_memory(self):
        netlist = build_accumulator()
        sim = FourValuedSim(netlist)
        sim.reset()
        commands = VfitCommands(sim)
        commands.inject(Fault(
            FaultModel.BITFLIP,
            Target(TargetKind.MEMORY_BIT, 0, addr=3, bit=1), 0))
        # scratch[3] = 3*3+1 = 10; flipping bit 1 gives 8.
        assert sim.mem_state("scratch")[3] == 8

    def test_pulse_inverts_net_until_removed(self, counter_sim):
        sim = counter_sim
        sim.reset()
        tc_net = sim.netlist.names["tc"][0]
        commands = VfitCommands(sim)
        fault = Fault(FaultModel.PULSE, Target(TargetKind.NET, tc_net), 0,
                      duration_cycles=2)
        commands.inject(fault)
        assert sim.step({"en": 0})["tc"] == 1  # golden tc is 0 at count 0
        commands.remove(fault)
        assert sim.step()["tc"] == 0

    def test_indetermination_forces_x(self, counter_sim):
        sim = counter_sim
        sim.reset()
        commands = VfitCommands(sim)
        fault = Fault(FaultModel.INDETERMINATION,
                      Target(TargetKind.FF, 0), 0, duration_cycles=3)
        commands.inject(fault)
        sim.step({"en": 1})
        assert sim.peek("value") is None  # X visible on the output
        commands.remove(fault)

    def test_delay_unsupported(self, counter_sim):
        commands = VfitCommands(counter_sim)
        with pytest.raises(UnsupportedFaultError):
            commands.inject(Fault(FaultModel.DELAY,
                                  Target(TargetKind.NET, 5), 0))

    def test_ff_index_of_resolves_registers(self, counter_sim):
        commands = VfitCommands(counter_sim)
        index = commands.ff_index_of("count", 2)
        dff = counter_sim.netlist.dffs[index]
        assert dff.q == counter_sim.netlist.names["count"][2]

    def test_ff_index_of_rejects_comb_signal(self, counter_sim):
        commands = VfitCommands(counter_sim)
        with pytest.raises(InjectionError):
            commands.ff_index_of("tc", 0)


class TestPools:
    def test_ff_pool(self):
        netlist = build_counter(4)
        targets = vfit_pool_targets(netlist, "ffs")
        assert len(targets) == 4

    def test_memory_pool_with_range(self):
        netlist = build_accumulator()
        targets = vfit_pool_targets(netlist, "memory:scratch",
                                    mem_addr_range=(0, 2))
        assert len(targets) == 2 * 8

    def test_comb_pool_by_unit(self):
        from helpers import build_alu4
        netlist = build_alu4()
        targets = vfit_pool_targets(netlist, "comb:ALU")
        assert targets
        assert len(targets) == len(netlist.gates)

    def test_unknown_pool(self):
        with pytest.raises(InjectionError):
            vfit_pool_targets(build_counter(), "wires")

    def test_faultload_translates_lut_pools(self):
        from helpers import build_alu4
        netlist = build_alu4()
        spec = FaultLoadSpec(FaultModel.PULSE, "luts:ALU", count=5,
                             workload_cycles=10)
        faults = vfit_faultload(spec, netlist, seed=1)
        assert len(faults) == 5
        assert all(f.target.kind is TargetKind.NET for f in faults)


class TestCampaign:
    def test_bitflip_campaign_runs(self, counter_campaign):
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=8,
                             workload_cycles=30)
        result = counter_campaign.run(spec, seed=2)
        assert result.counts().total == 8
        assert result.failure_percent() > 0

    def test_experiment_leaves_no_residual_forces(self, counter_campaign):
        spec = FaultLoadSpec(FaultModel.INDETERMINATION, "ffs", count=5,
                             workload_cycles=25, duration_range=(1, 5))
        counter_campaign.run(spec, seed=3)
        assert counter_campaign.sim._forced == {}
        assert counter_campaign.sim._inverted == set()

    def test_golden_run_unaffected_by_experiments(self, counter_campaign):
        golden = counter_campaign.golden_run(25)
        spec = FaultLoadSpec(FaultModel.PULSE, "luts", count=5,
                             workload_cycles=25)
        counter_campaign.run(spec, seed=4)
        counter_campaign._golden.clear()
        assert counter_campaign.golden_run(25).samples == golden.samples

    def test_delay_campaign_raises(self, counter_campaign):
        spec = FaultLoadSpec(FaultModel.DELAY, "nets:seq", count=2,
                             workload_cycles=20)
        with pytest.raises(UnsupportedFaultError):
            counter_campaign.run(spec, seed=1)


class TestTimeModel:
    def test_cost_scales_with_cycles_and_elements(self):
        small = VfitTimeModel(elements=100)
        big = VfitTimeModel(elements=10_000)
        assert big.record(500).simulate_s > small.record(500).simulate_s
        assert small.record(5000).simulate_s > small.record(500).simulate_s

    def test_paper_scale_calibration(self):
        # 1303 cycles on a ~6000-element model must land near the paper's
        # 7.2 s per experiment.
        model = VfitTimeModel(elements=6000)
        cost = model.record(1303)
        assert cost.total_s == pytest.approx(7.2, rel=0.1)

    def test_projection(self):
        model = VfitTimeModel(elements=6000)
        model.record(1303)
        assert model.project(3000) == pytest.approx(21600, rel=0.12)

    def test_times_insensitive_to_fault_model(self, counter_campaign):
        # Paper: VFIT has "very similar execution times for any type and
        # length of the studied fault models".
        means = []
        for model, pool in [(FaultModel.BITFLIP, "ffs"),
                            (FaultModel.PULSE, "luts"),
                            (FaultModel.INDETERMINATION, "ffs")]:
            spec = FaultLoadSpec(model, pool, count=4, workload_cycles=30)
            means.append(counter_campaign.run(spec, seed=5)
                         .mean_emulation_s)
        assert max(means) == pytest.approx(min(means), rel=1e-6)
