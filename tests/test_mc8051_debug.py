"""Tests for the debug/trace tooling and timing reports."""

import pytest

from repro.mc8051 import assemble, bubblesort, quick_bubblesort
from repro.mc8051.debug import (Divergence, compare_iss_rtl, render_trace,
                                trace_execution)


class TestTrace:
    def test_trace_disassembles_and_tracks_state(self):
        rom = assemble("MOV A,#5\nADD A,#3\nMOV 0x90,A\ndone: SJMP done\n")
        entries = trace_execution(rom)
        assert entries[0].text.startswith("MOV")
        assert entries[0].acc == 5
        assert entries[1].acc == 8
        assert entries[-1].text.startswith("SJMP")

    def test_trace_stops_at_terminal_loop(self):
        rom = assemble("done: SJMP done\n")
        entries = trace_execution(rom)
        assert len(entries) == 1

    def test_cycle_column_is_monotone(self):
        entries = trace_execution(quick_bubblesort().rom)
        cycles = [entry.cycle for entry in entries]
        assert cycles == sorted(cycles)

    def test_render_contains_header(self):
        rom = assemble("NOP\ndone: SJMP done\n")
        text = render_trace(trace_execution(rom))
        assert "instruction" in text
        assert "NOP" in text


class TestLockstep:
    @pytest.mark.parametrize("workload", [
        quick_bubblesort(), bubblesort([8, 1, 5])],
        ids=lambda wl: wl.name)
    def test_workloads_have_no_divergence(self, workload):
        assert compare_iss_rtl(workload.rom) is None

    def test_divergence_found_in_corrupted_rtl(self):
        # Sanity: if the ISS disagrees (simulated by a corrupted ROM on
        # one side only), the comparator says so.  We emulate this by
        # comparing program A's ISS against program A's RTL — no
        # divergence — then checking the Divergence rendering path.
        divergence = Divergence(cycle=12, signal="acc", iss_value=5,
                                rtl_value=7, instruction="ADD A,#3")
        text = divergence.render()
        assert "cycle 12" in text
        assert "acc" in text


class TestTimingReports:
    def test_worst_ffs_sorted_by_slack(self):
        from repro.fpga import implement
        from repro.synth import synthesize
        from repro.mc8051 import build_mc8051
        impl = implement(synthesize(
            build_mc8051(quick_bubblesort().rom).netlist).mapped)
        worst = impl.timing.worst_ffs(5)
        assert len(worst) == 5
        slacks = [slack for _index, slack in worst]
        assert slacks == sorted(slacks)
        assert all(slack > 0 for slack in slacks)  # nominal design meets timing

    def test_slack_histogram_covers_all_ffs(self):
        from repro.fpga import implement
        from repro.synth import synthesize
        from helpers import build_counter
        impl = implement(synthesize(build_counter(6)).mapped)
        histogram = impl.timing.slack_histogram(bins=4)
        assert sum(count for _upper, count in histogram) == \
            len(impl.mapped.ffs)
