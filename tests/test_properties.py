"""Property-based tests (hypothesis) on core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core import (Outcome, classify, invert_lut_line, stuck_lut_line)
from repro.core.permanent import bridge_lut_lines
from repro.fpga.bitstream import Bitstream, CbConfig
from repro.fpga.architecture import demo_device
from repro.hdl import FourValuedSim, NetlistSim, logic
from repro.hdl.trace import Trace
from repro.mc8051 import assemble, disassemble
from repro.synth import MappedSim, synthesize

from helpers import random_netlist, random_stimulus

tt16 = st.integers(min_value=0, max_value=0xFFFF)
lut_line = st.integers(min_value=-1, max_value=3)
bit = st.integers(min_value=0, max_value=1)


def lut_eval(tt, index):
    return (tt >> (index & 0xF)) & 1


class TestLutRewriteProperties:
    @given(tt16, lut_line)
    def test_inversion_is_involution(self, tt, line):
        assert invert_lut_line(invert_lut_line(tt, line), line) == tt

    @given(tt16, st.integers(min_value=0, max_value=15))
    def test_output_inversion_semantics(self, tt, index):
        assert lut_eval(invert_lut_line(tt, -1), index) == \
            1 - lut_eval(tt, index)

    @given(tt16, st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=15))
    def test_input_inversion_semantics(self, tt, line, index):
        # The faulty LUT sees input `line` complemented.
        faulty = invert_lut_line(tt, line)
        assert lut_eval(faulty, index) == lut_eval(tt, index ^ (1 << line))

    @given(tt16, lut_line, bit, st.integers(min_value=0, max_value=15))
    def test_stuck_line_semantics(self, tt, line, value, index):
        stuck = stuck_lut_line(tt, line, value)
        if line < 0:
            assert lut_eval(stuck, index) == value
        else:
            frozen = (index | (1 << line)) if value \
                else (index & ~(1 << line))
            assert lut_eval(stuck, index) == lut_eval(tt, frozen)

    @given(tt16, st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=15))
    def test_bridging_short_semantics(self, tt, victim, aggressor, index):
        if victim == aggressor:
            return
        bridged = bridge_lut_lines(tt, victim, aggressor, "short")
        a = (index >> aggressor) & 1
        effective = (index & ~(1 << victim)) | (a << victim)
        assert lut_eval(bridged, index) == lut_eval(tt, effective)


class TestConfigRoundtrips:
    @given(tt16, st.booleans(), st.booleans(), st.booleans(),
           st.booleans(), bit, st.booleans())
    def test_cb_config_roundtrip(self, tt, use_ff, external, inv_ffin,
                                 inv_lsr, srval, latch):
        config = CbConfig(tt=tt, use_ff=use_ff, ff_d_external=external,
                          invert_ffin=inv_ffin, invert_lsr=inv_lsr,
                          srval=srval, latch_mode=latch)
        assert CbConfig.unpack(config.pack()) == config

    @given(st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=15),
           st.integers(min_value=0, max_value=191))
    @settings(max_examples=30)
    def test_pass_transistor_bit_isolation(self, row, col, index):
        image = Bitstream(demo_device())
        image.set_pass_transistor(row, col, index, 1)
        # Exactly one bit set in the whole routing plane.
        total = sum(image.pm_used_count(r, c)
                    for r in range(16) for c in range(16))
        assert total == 1
        assert image.get_pass_transistor(row, col, index) == 1

    @given(st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=511),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=30)
    def test_bram_word_roundtrip(self, block, addr, value):
        image = Bitstream(demo_device())
        image.set_bram_word(block, addr, value)
        assert image.get_bram_word(block, addr) == value


class TestSimulatorProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_synthesis_preserves_behaviour(self, seed):
        netlist = random_netlist(seed % 1000, n_gates=20)
        mapped = synthesize(netlist).mapped
        ref = NetlistSim(netlist)
        impl = MappedSim(mapped)
        names = list(netlist.inputs)
        widths = [len(netlist.inputs[n]) for n in names]
        for vector in random_stimulus(seed, names, widths, 15):
            assert ref.step(vector) == impl.step(vector)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_four_valued_agrees_on_binary_inputs(self, seed):
        netlist = random_netlist(seed % 1000, n_gates=20)
        binary = NetlistSim(netlist)
        fourval = FourValuedSim(netlist)
        names = list(netlist.inputs)
        widths = [len(netlist.inputs[n]) for n in names]
        for vector in random_stimulus(seed ^ 1, names, widths, 15):
            assert binary.step(vector) == fourval.step(vector)

    @given(st.sampled_from(["AND", "OR", "XOR", "NAND", "NOR", "XNOR"]),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=3))
    def test_x_propagation_is_sound(self, kind, a, b):
        # If the four-valued result is known, every binary completion of
        # the unknown inputs must produce that same value.
        from repro.hdl.netlist import kind_truth_table
        from repro.hdl.simulator import FourValuedSim
        tt = kind_truth_table(kind)
        result = FourValuedSim._eval_gate(tt, (2, 3), [0, 1, a, b])
        if result in (logic.ZERO, logic.ONE):
            completions = []
            for ca in ([a] if logic.is_known(a) else [0, 1]):
                for cb in ([b] if logic.is_known(b) else [0, 1]):
                    completions.append((tt >> (ca | cb << 1)) & 1)
            assert all(c == result for c in completions)


class TestAssemblerProperties:
    @given(st.lists(st.sampled_from([
        "NOP", "INC A", "DEC A", "CLR A", "CPL A", "RL A", "RR A",
        "CLR C", "SETB C", "MOV A,#0x55", "ADD A,#3", "SUBB A,#9",
        "MOV R3,#7", "MOV A,R3", "MOV R5,A", "ANL A,#0x0F",
        "MOV A,@R0", "MOV @R1,A", "XCH A,R2", "MOV 0x40,A",
    ]), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_assemble_disassemble_roundtrip(self, lines):
        code = assemble("\n".join(lines))
        listing = disassemble(code)
        assert len(listing) == len(lines)
        for (source, (_addr, rendered)) in zip(lines, listing):
            assert rendered.split()[0] == source.split()[0]

    @given(st.integers(min_value=0, max_value=255))
    def test_every_opcode_has_consistent_length(self, opcode):
        from repro.mc8051 import spec_for
        spec = spec_for(opcode)
        image = bytes([opcode, 0, 0][:spec.length])
        listing = disassemble(image)
        assert listing[0][0] == 0
        assert len(listing) == 1


class TestClassificationProperties:
    traces = st.lists(st.integers(min_value=0, max_value=3),
                      min_size=1, max_size=12)

    @given(traces)
    def test_identical_traces_are_silent(self, samples):
        trace = Trace(("o",))
        trace.samples = [(s,) for s in samples]
        trace.final_state = ("state",)
        assert classify(trace, trace) is Outcome.SILENT

    @given(traces, st.integers(min_value=0, max_value=11))
    def test_any_output_change_is_failure(self, samples, position):
        golden = Trace(("o",))
        golden.samples = [(s,) for s in samples]
        golden.final_state = ("state",)
        faulty = Trace(("o",))
        faulty.samples = list(golden.samples)
        index = position % len(samples)
        faulty.samples[index] = (samples[index] + 1,)
        faulty.final_state = ("state",)
        assert classify(golden, faulty) is Outcome.FAILURE


class TestDeviceInvariants:
    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_gsr_always_restores_initial_state(self, cycles):
        from repro.fpga import Device, implement
        from helpers import build_counter
        netlist = build_counter(4)
        result = synthesize(netlist)
        device = Device(implement(result.mapped))
        device.reset_system()
        device.run(cycles, {"en": 1})
        device.pulse_gsr()
        expected = tuple(ff.init for ff in result.mapped.ffs)
        assert device.ff_state() == expected


class TestConfigurationDeterminesBehaviour:
    """The device's defining property: behaviour is a function of the
    configuration image, independent of how it got there."""

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_reconfiguration_order_is_irrelevant(self, seed, n_writes):
        import random as _random
        from repro.fpga import Device, implement
        from helpers import build_counter
        result = synthesize(build_counter(4))
        impl_a = implement(result.mapped)
        impl_b = implement(synthesize(build_counter(4)).mapped)
        dev_a, dev_b = Device(impl_a), Device(impl_b)
        dev_a.reset_system()
        dev_b.reset_system()
        # Build a batch of random LUT rewrites on occupied sites.
        rng = _random.Random(seed)
        sites = list(impl_a.placement.site_of_lut.values())
        writes = []
        for _ in range(n_writes):
            row, col = rng.choice(sites)
            config = impl_a.golden_bitstream.get_cb(row, col)
            config.tt ^= rng.randrange(1, 1 << 16)
            writes.append((row, col, config))
        # Apply in opposite orders through the raw frame interface.
        from repro.fpga import JBits
        ja, jb = JBits(dev_a), JBits(dev_b)
        for row, col, config in writes:
            ja.write_cb(row, col, config)
        for row, col, config in reversed(writes):
            jb.write_cb(row, col, config)
        if dev_a.config.diff_frames(dev_b.config):
            return  # overlapping writes: last-writer-wins differs; skip
        for _ in range(15):
            assert dev_a.step({"en": 1}) == dev_b.step({"en": 1})

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_fresh_device_from_same_image_behaves_identically(self, seed):
        import random as _random
        from repro.fpga import Device, implement, JBits
        from helpers import build_counter
        result = synthesize(build_counter(4))
        impl = implement(result.mapped)
        device = Device(impl)
        device.reset_system()
        rng = _random.Random(seed)
        row, col = rng.choice(list(impl.placement.site_of_lut.values()))
        config = impl.golden_bitstream.get_cb(row, col)
        config.tt ^= rng.randrange(1, 1 << 16)
        JBits(device).write_cb(row, col, config)
        # Second device boots directly from the mutated image.
        impl2 = implement(synthesize(build_counter(4)).mapped)
        impl2.golden_bitstream.set_cb(row, col, config)
        fresh = Device(impl2)
        fresh.reset_system()
        device.reset_system()
        for _ in range(15):
            assert device.step({"en": 1}) == fresh.step({"en": 1})
