"""Tests for the statistics helpers and the VCD trace writer."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.stats import (Proportion, failure_interval,
                                  sample_size_for, wilson)
from repro.core.classify import Outcome, OutcomeCounts
from repro.errors import SimulationError
from repro.hdl import NetlistSim
from repro.hdl.vcd import VcdWriter, dump_run

from helpers import build_counter


class TestWilson:
    def test_known_value(self):
        # 8/10 at 95%: the Wilson interval is approximately [0.49, 0.94].
        interval = wilson(8, 10)
        assert interval.low == pytest.approx(0.49, abs=0.02)
        assert interval.high == pytest.approx(0.94, abs=0.02)

    def test_zero_successes_interval_starts_at_zero(self):
        interval = wilson(0, 20)
        assert interval.low == 0.0
        assert interval.high > 0.0

    def test_all_successes_interval_ends_at_one(self):
        interval = wilson(20, 20)
        assert interval.high == 1.0
        assert interval.low < 1.0

    def test_empty_trials(self):
        interval = wilson(0, 0)
        assert (interval.low, interval.high) == (0.0, 1.0)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            wilson(5, 3)

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=50)
    def test_interval_always_contains_point(self, successes, trials):
        if successes > trials:
            successes = trials
        interval = wilson(successes, trials)
        assert interval.low <= interval.point <= interval.high
        assert 0.0 <= interval.low <= interval.high <= 1.0

    @given(st.integers(min_value=1, max_value=19))
    @settings(max_examples=30)
    def test_interval_narrows_with_more_trials(self, successes):
        narrow = wilson(successes * 10, 20 * 10)
        wide = wilson(successes, 20)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_custom_confidence_via_quantile(self):
        tight = wilson(10, 40, confidence=0.80)
        loose = wilson(10, 40, confidence=0.99)
        assert (tight.high - tight.low) < (loose.high - loose.low)

    def test_render_and_overlap(self):
        a = wilson(5, 10)
        b = wilson(6, 10)
        assert a.overlaps(b)
        assert "%" in a.render()

    def test_failure_interval_from_counts(self):
        counts = OutcomeCounts(failure=3, latent=2, silent=5)
        interval = failure_interval(counts)
        assert interval.point == pytest.approx(0.3)

    def test_sample_size_paper_scale(self):
        # ~1.8-point margin needs ~3000 faults — the paper's choice.
        assert 2800 < sample_size_for(0.018) < 3100
        with pytest.raises(ValueError):
            sample_size_for(0.0)


class TestVcd:
    def _record(self, cycles=10):
        sim = NetlistSim(build_counter(4))
        sim.reset()
        return dump_run(sim, ["count", "tc"], cycles,
                        inputs={"en": 1})

    def test_header_and_vars(self):
        text = self._record().dumps()
        assert "$timescale 1 ns $end" in text
        assert "$var wire 4" in text
        assert "$var wire 1" in text
        assert "$enddefinitions $end" in text

    def test_values_change_over_time(self):
        text = self._record(6).dumps()
        # The 4-bit counter emits vector changes like "b0011 !".
        assert "#0" in text
        assert text.count("b") >= 5

    def test_only_changes_are_dumped(self):
        sim = NetlistSim(build_counter(4))
        sim.reset()
        writer = VcdWriter(["count"])
        for _ in range(5):
            sim.step({"en": 0})  # held: no change after first sample
            writer.sample(sim)
        text = writer.dumps()
        assert text.count("#") == 1  # single timestamp: the initial dump

    def test_unknown_signal_rejected(self):
        sim = NetlistSim(build_counter(4))
        sim.reset()
        writer = VcdWriter(["nonexistent"])
        sim.step()
        with pytest.raises(Exception):
            writer.sample(sim)

    def test_empty_signal_list_rejected(self):
        with pytest.raises(SimulationError):
            VcdWriter([])

    def test_file_roundtrip(self, tmp_path):
        writer = self._record(8)
        path = tmp_path / "trace.vcd"
        writer.write(str(path))
        assert path.read_text() == writer.dumps()
        assert len(writer) == 8

    def test_device_signals_supported(self):
        from repro.fpga import Device, implement
        from repro.synth import synthesize
        device = Device(implement(synthesize(build_counter(4)).mapped))
        device.reset_system()
        writer = VcdWriter(["count"])
        for _ in range(5):
            device.step({"en": 1})
            writer.sample(device)
        assert "b" in writer.dumps()

    def test_x_values_render(self):
        from repro.hdl import FourValuedSim
        sim = FourValuedSim(build_counter(4))
        sim.reset()
        sim.force("count", [2, 2, 0, 0])  # two X bits
        sim.step({"en": 0})
        writer = VcdWriter(["count"])
        writer.sample(sim)
        assert "x" in writer.dumps()
