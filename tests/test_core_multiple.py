"""Tests for the multiple-bit-flip (MBU) extension."""

import pytest

from repro.core import (Fault, FaultModel, Outcome, Target, TargetKind,
                        adjacent_memory_mbu, multi_ff_bitflip,
                        pulse_equivalent_mbu)
from repro.errors import InjectionError

from helpers import build_accumulator, build_counter
from test_core_injector import make_campaign


@pytest.fixture()
def campaign():
    return make_campaign(build_counter(4), inputs={"en": 1})


@pytest.fixture()
def accum():
    return make_campaign(build_accumulator(), inputs={"addr": 2, "load": 1})


class TestFaultBuilders:
    def test_multi_ff_builder(self):
        fault = multi_ff_bitflip([3, 1, 7], 10)
        assert fault.target.index == 3
        assert [t.index for t in fault.extra_targets] == [1, 7]
        assert len(fault.all_targets) == 3
        assert "+2 more" in fault.describe()

    def test_empty_mbu_rejected(self):
        with pytest.raises(InjectionError):
            multi_ff_bitflip([], 5)

    def test_adjacent_memory_builder(self):
        fault = adjacent_memory_mbu(0, addr=7, first_bit=2, width=3,
                                    start_cycle=4)
        bits = [t.bit for t in fault.all_targets]
        assert bits == [2, 3, 4]
        assert all(t.addr == 7 for t in fault.all_targets)

    def test_mixed_kinds_rejected(self, campaign):
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 3,
                      extra_targets=(Target(TargetKind.MEMORY_BIT, 0),))
        with pytest.raises(InjectionError):
            campaign.injector.prepare(fault)


class TestMultiFfInjection:
    def test_double_flip_flips_both(self, campaign):
        # Flipping bits 0 and 1 of the counter together adds/removes 3.
        golden = campaign.golden_run(20)
        fault = multi_ff_bitflip([0, 1], 6)
        result = campaign.run_experiment(fault, 20)
        divergence = result.first_divergence
        assert divergence is not None
        golden_value = golden.samples[divergence][0]
        # run_experiment samples outputs the cycle after the flip lands.
        assert result.outcome in (Outcome.FAILURE, Outcome.LATENT)

    def test_duplicate_targets_collapse_to_one_flip(self, campaign):
        # The MBU captures the pre-upset state once, so listing the same
        # cell twice still inverts it exactly once (an SEU cannot hit the
        # same cell twice); the outcome equals the single-flip outcome.
        double = campaign.run_experiment(multi_ff_bitflip([2, 2], 6), 20)
        single = campaign.run_experiment(multi_ff_bitflip([2], 6), 20)
        assert double.outcome == single.outcome
        assert double.first_divergence == single.first_divergence

    def test_state_reads_shared_per_column(self, campaign):
        placement = campaign.impl.placement
        # Find two FFs in the same column.
        by_col = {}
        for index, (_row, col) in placement.site_of_ff.items():
            by_col.setdefault(col, []).append(index)
        same_col = next((v for v in by_col.values() if len(v) >= 2), None)
        if same_col is None:
            pytest.skip("no column hosts two FFs in this placement")
        fault = multi_ff_bitflip(same_col[:2], 5)
        result = campaign.run_experiment(fault, 15)
        # 1 shared state read + 2 writes per FF = 5 transactions.
        assert result.cost.transactions == 5

    def test_mbu_cost_scales_with_multiplicity(self, campaign):
        single = campaign.run_experiment(multi_ff_bitflip([0], 5), 15)
        triple = campaign.run_experiment(multi_ff_bitflip([0, 1, 2], 5), 15)
        assert triple.cost.transactions > single.cost.transactions


class TestMemoryMbu:
    def test_adjacent_bits_single_rmw(self, accum):
        fault = adjacent_memory_mbu(0, addr=2, first_bit=0, width=3,
                                    start_cycle=1)
        result = accum.run_experiment(fault, 16)
        # One frame read + one frame write regardless of multiplicity.
        assert result.cost.transactions == 2
        assert result.outcome is Outcome.FAILURE

    def test_memory_mbu_flips_all_bits(self, accum):
        device = accum.device
        device.reset_system()
        before = device.mem_words(0)[2]
        fault = adjacent_memory_mbu(0, addr=2, first_bit=0, width=2,
                                    start_cycle=0)
        injection = accum.injector.prepare(fault)
        injection.inject()
        assert device.mem_words(0)[2] == before ^ 0b11
        accum._restore_configuration()

    def test_cross_block_mbu_rejected(self, accum):
        fault = Fault(
            FaultModel.BITFLIP,
            Target(TargetKind.MEMORY_BIT, 0, addr=0, bit=0), 1,
            extra_targets=(Target(TargetKind.MEMORY_BIT, 1, addr=0,
                                  bit=0),))
        with pytest.raises(InjectionError):
            accum.injector.prepare(fault)


class TestPulseEquivalence:
    def test_equivalent_mbu_reproduces_pulse_outcome(self, campaign):
        # Paper 7.2: a combinational pulse whose footprint is known can be
        # emulated by the corresponding multiple bit-flip.
        cycles = 24
        probe_cycle = 7
        matched = 0
        checked = 0
        for lut_index in range(len(campaign.locmap.mapped.luts)):
            equivalent = pulse_equivalent_mbu(campaign, lut_index,
                                              probe_cycle)
            if equivalent.mbu is None:
                continue
            pulse = Fault(FaultModel.PULSE,
                          Target(TargetKind.LUT, lut_index),
                          probe_cycle, duration_cycles=1.0)
            pulse_result = campaign.run_experiment(pulse, cycles)
            mbu_result = campaign.run_experiment(equivalent.mbu, cycles)
            checked += 1
            if pulse_result.outcome == mbu_result.outcome:
                matched += 1
        assert checked > 0
        assert matched == checked, (
            f"MBU equivalent diverged for {checked - matched}/{checked}")

    def test_footprint_can_be_multiple(self, campaign):
        widths = set()
        for lut_index in range(len(campaign.locmap.mapped.luts)):
            equivalent = pulse_equivalent_mbu(campaign, lut_index, 9)
            widths.add(len(equivalent.flipped_ffs))
        assert max(widths) >= 1
