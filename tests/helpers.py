"""Shared helpers for the test suite: tiny designs and random circuits."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.hdl import Netlist, Rtl


def build_counter(width: int = 4) -> Netlist:
    """An enabled wrap-around counter with a terminal-count output."""
    rtl = Rtl("counter")
    en = rtl.input("en", 1)
    count = rtl.register("count", width)
    count.drive(rtl.inc(count.q), en=en)
    rtl.output("value", count.q)
    rtl.output("tc", rtl.reduce_and(count.q))
    return rtl.build()


def build_alu4() -> Netlist:
    """A small 4-bit ALU: op selects among ADD/SUB/AND/XOR."""
    rtl = Rtl("alu4")
    a = rtl.input("a", 4)
    b = rtl.input("b", 4)
    op = rtl.input("op", 2)
    with rtl.unit("ALU"):
        add, carry = rtl.add(a, b)
        sub, borrow = rtl.sub(a, b)
        result = rtl.select(op, [add, sub, rtl.and_(a, b), rtl.xor_(a, b)])
        flag = rtl.mux(rtl.bit(op, 0), carry, borrow)
    rtl.output("result", result)
    rtl.output("flag", flag)
    return rtl.build()


def build_accumulator(width: int = 8) -> Netlist:
    """Registered accumulator with a memory: acc += mem[addr] each cycle."""
    rtl = Rtl("accum")
    addr = rtl.input("addr", 4)
    load = rtl.input("load", 1)
    mem = rtl.memory("scratch", depth=16, width=width,
                     init=[(3 * i + 1) % 256 for i in range(16)])
    acc = rtl.register("acc", width)
    total, _ = rtl.add(acc.q, mem.rdata)
    acc.drive(rtl.mux(load, acc.q, total))  # load=1: accumulate
    mem.connect(raddr=addr)
    rtl.output("acc_out", acc.q)
    return rtl.build()


def random_netlist(seed: int, n_inputs: int = 4, n_gates: int = 30,
                   n_ffs: int = 3) -> Netlist:
    """A random but valid synchronous design for property tests."""
    rng = random.Random(seed)
    rtl = Rtl(f"rand{seed}")
    pool: List = []
    for index in range(n_inputs):
        pool.append(rtl.input(f"in{index}", 1))
    regs = [rtl.register(f"r{index}", 1, init=rng.randint(0, 1))
            for index in range(n_ffs)]
    pool.extend(reg.q for reg in regs)
    for _ in range(n_gates):
        kind = rng.choice(["and", "or", "xor", "not", "mux"])
        a = rng.choice(pool)
        b = rng.choice(pool)
        if kind == "and":
            out = rtl.and_(a, b)
        elif kind == "or":
            out = rtl.or_(a, b)
        elif kind == "xor":
            out = rtl.xor_(a, b)
        elif kind == "not":
            out = rtl.not_(a)
        else:
            out = rtl.mux(rng.choice(pool), a, b)
        pool.append(out)
    for reg in regs:
        reg.drive(rng.choice(pool))
    for index in range(2):
        rtl.output(f"out{index}", rng.choice(pool))
    return rtl.build()


def random_stimulus(seed: int, names: List[str], widths: List[int],
                    cycles: int) -> List[dict]:
    """Deterministic random input vectors, one dict per cycle."""
    rng = random.Random(seed ^ 0x5EED)
    return [{name: rng.randrange(1 << width)
             for name, width in zip(names, widths)}
            for _ in range(cycles)]
