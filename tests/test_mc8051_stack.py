"""Tests for the stack/subroutine ISA extension (PUSH/POP/LCALL/RET/ADDC)."""

import pytest

from repro.hdl import NetlistSim
from repro.mc8051 import Iss, assemble, build_mc8051, sum_of_squares
from repro.mc8051.isa import OPCODES

from test_mc8051_cpu import TERMINAL, assert_equivalent, run_iss


class TestIssStack:
    def test_push_increments_sp_then_stores(self):
        iss = run_iss("MOV A,#0x42\nPUSH 0xE0\n" + TERMINAL)
        assert iss.sp == 0x08
        assert iss.iram[0x08] == 0x42

    def test_pop_loads_then_decrements(self):
        iss = run_iss("MOV A,#0x42\nPUSH 0xE0\nCLR A\nPOP 0xF0\n" + TERMINAL)
        assert iss.sp == 0x07
        assert iss.b == 0x42

    def test_push_pop_direct_iram(self):
        iss = run_iss("MOV 0x40,#9\nPUSH 0x40\nPOP 0x41\n" + TERMINAL)
        assert iss.iram[0x41] == 9

    def test_pop_to_psw_restores_flags(self):
        iss = run_iss("SETB C\nPUSH 0xD0\nCLR C\nPOP 0xD0\n" + TERMINAL)
        assert iss.cy == 1

    def test_lcall_pushes_return_address(self):
        iss = run_iss("LCALL sub\ndone: SJMP done\nsub: RET\n")
        # Return address (3 = the byte after LCALL) was on the stack.
        assert iss.pc == 3  # settled in the terminal loop at 'done'
        assert iss.sp == 0x07  # balanced

    def test_nested_calls(self):
        iss = run_iss("""
        MOV A,#1
        LCALL outer
        MOV 0x90,A
done:   SJMP done
outer:  ADD A,#10
        LCALL inner
        ADD A,#10
        RET
inner:  ADD A,#100
        RET
""")
        assert iss.p1 == 121
        assert iss.sp == 0x07

    def test_addc_uses_carry(self):
        iss = run_iss("MOV A,#0xFF\nADD A,#1\nMOV A,#0\nADDC A,#0\n"
                      + TERMINAL)
        assert iss.acc == 1  # the carry from the first ADD rolled in

    def test_addc_register_form(self):
        iss = run_iss("SETB C\nMOV R4,#7\nMOV A,#2\nADDC A,R4\n" + TERMINAL)
        assert iss.acc == 10

    def test_cycle_counts(self):
        assert OPCODES[0xC0].cycles() == 6   # PUSH direct
        assert OPCODES[0xD0].cycles() == 6   # POP direct
        assert OPCODES[0x12].cycles() == 7   # LCALL
        assert OPCODES[0x22].cycles() == 5   # RET


class TestRtlStack:
    @pytest.mark.parametrize("source", [
        "MOV A,#0x42\nPUSH 0xE0\nCLR A\nPOP 0xF0\n" + TERMINAL,
        "MOV 0x40,#9\nPUSH 0x40\nPOP 0x41\n" + TERMINAL,
        "SETB C\nPUSH 0xD0\nCLR C\nPOP 0xD0\nMOV A,#0\nADDC A,#0\n"
        + TERMINAL,
        "LCALL sub\ndone: SJMP done\nsub: MOV A,#3\nRET\n",
        "MOV A,#0xF0\nADD A,#0x20\nMOV A,#1\nADDC A,#1\nMOV R7,A\n"
        + TERMINAL,
    ])
    def test_directed_equivalence(self, source):
        assert_equivalent(source)

    def test_nested_calls_equivalence(self):
        assert_equivalent("""
        MOV A,#1
        LCALL outer
        MOV 0x90,A
done:   SJMP done
outer:  ADD A,#10
        LCALL inner
        ADD A,#10
        RET
inner:  ADD A,#100
        RET
""")

    def test_pop_to_sfr_equivalence(self):
        assert_equivalent("MOV A,#0x5A\nPUSH 0xE0\nCLR A\nPOP 0x90\n"
                          + TERMINAL)

    def test_cycle_exactness_through_calls(self):
        source = "LCALL sub\nMOV 0x90,A\ndone: SJMP done\nsub: INC A\nRET\n"
        rom = assemble(source)
        iss = Iss(rom)
        iss.run_until_idle()
        sim = NetlistSim(build_mc8051(rom).netlist)
        sim.reset()
        for _ in range(iss.cycles + 1):
            sim.step()
        assert sim.peek("acc") == iss.acc
        assert sim.peek("p1") == iss.p1
        assert sim.peek("sp") == iss.sp


class TestSumOfSquaresWorkload:
    def test_oracle(self):
        workload = sum_of_squares([3, 4, 5])
        iss = Iss(workload.rom)
        iss.run_until_idle()
        assert [v for _c, v in iss.p1_writes] == workload.expected_p1
        assert iss.sp == 0x07  # stack balanced at the end

    def test_rtl_runs_it(self):
        workload = sum_of_squares([2, 3])
        iss = Iss(workload.rom)
        iss.run_until_idle()
        sim = NetlistSim(build_mc8051(workload.rom).netlist)
        sim.reset()
        for _ in range(iss.cycles + 1):
            sim.step()
        assert sim.peek("p1") == (4 + 9) & 0xFF

    def test_stack_region_faults_break_return_addresses(self):
        # A bit-flip in the stack region while a call is live corrupts
        # the return address — a failure mode Bubblesort cannot exhibit.
        from repro.core import (Fault, FaultModel, Outcome, Target,
                                TargetKind, build_fades)
        workload = sum_of_squares([5, 6, 7])
        iss = Iss(workload.rom)
        iss.run_until_idle()
        fades = build_fades(build_mc8051(workload.rom).netlist, seed=5)
        mem_index = fades.locmap.memory("iram")
        outcomes = set()
        # IRAM 0x08 holds the pushed low return-address byte while a call
        # is live; flips during the squaring loops divert the RET.
        for start in (120, 210, 300, 390):
            fault = Fault(
                FaultModel.BITFLIP,
                Target(TargetKind.MEMORY_BIT, mem_index, addr=0x08, bit=1),
                start)
            outcomes.add(
                fades.run_experiment(fault, iss.cycles + 4).outcome)
        assert Outcome.FAILURE in outcomes


class TestDptrAndMovc:
    @pytest.mark.parametrize("source", [
        "MOV DPTR,#0x0123\nMOV A,0x82\nMOV R1,A\nMOV A,0x83\n" + TERMINAL,
        "MOV DPTR,#0x00FF\nINC DPTR\nMOV A,0x83\n" + TERMINAL,
        "MOV DPTR,#tab\nMOV A,#1\nMOVC A,@A+DPTR\nMOV 0x90,A\n"
        "done: SJMP done\ntab: DB 5, 9, 13\n",
    ])
    def test_directed_equivalence(self, source):
        assert_equivalent(source)

    def test_dptr_load_and_readback(self):
        iss = run_iss("MOV DPTR,#0x0456\n" + TERMINAL)
        assert (iss.dph, iss.dpl) == (0x04, 0x56)

    def test_inc_dptr_carries(self):
        iss = run_iss("MOV DPTR,#0x01FF\nINC DPTR\n" + TERMINAL)
        assert (iss.dph, iss.dpl) == (0x02, 0x00)

    def test_movc_indexes_with_acc(self):
        iss = run_iss("MOV DPTR,#tab\nMOV A,#3\nMOVC A,@A+DPTR\n"
                      "done: SJMP done\ntab: DB 11, 22, 33, 44\n")
        assert iss.acc == 44

    def test_table_lookup_workload(self):
        from repro.mc8051 import table_lookup
        workload = table_lookup([3, 18, 7])
        iss = Iss(workload.rom)
        iss.run_until_idle()
        assert [v for _c, v in iss.p1_writes] == workload.expected_p1 \
            == [9, 4, 49]

    def test_table_lookup_rtl(self):
        from repro.mc8051 import table_lookup
        workload = table_lookup([5, 12])
        iss = Iss(workload.rom)
        iss.run_until_idle()
        sim = NetlistSim(build_mc8051(workload.rom).netlist)
        sim.reset()
        for _ in range(iss.cycles + 1):
            sim.step()
        assert sim.peek("p1") == workload.expected_p1[-1]

    def test_rom_fault_corrupts_table_lookup(self):
        # A bit-flip in the ROM block's table region changes the emitted
        # transform — the location class this workload exists to expose.
        from repro.core import (Fault, FaultModel, Outcome, Target,
                                TargetKind, build_fades)
        from repro.mc8051 import table_lookup
        workload = table_lookup([3, 3, 3])
        iss = Iss(workload.rom)
        iss.run_until_idle()
        fades = build_fades(build_mc8051(workload.rom).netlist, seed=3)
        rom_index = fades.locmap.memory("rom")
        table_addr = workload.rom.index(bytes([0, 1, 4, 9])) + 3
        fault = Fault(
            FaultModel.BITFLIP,
            Target(TargetKind.MEMORY_BIT, rom_index, addr=table_addr,
                   bit=1), 2)
        result = fades.run_experiment(fault, iss.cycles + 4)
        assert result.outcome is Outcome.FAILURE
