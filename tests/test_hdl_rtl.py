"""Unit tests for the RTL builder and the binary netlist simulator."""

import pytest

from repro.errors import ElaborationError
from repro.hdl import NetlistSim, Rtl

from helpers import build_accumulator, build_alu4, build_counter


class TestCombinational:
    def _run_comb(self, netlist, inputs):
        sim = NetlistSim(netlist)
        sim.reset()
        return sim.step(inputs)

    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (9, 9), (15, 1),
                                     (7, 12), (15, 15)])
    def test_adder_matches_python(self, a, b):
        outputs = self._run_comb(build_alu4(), {"a": a, "b": b, "op": 0})
        assert outputs["result"] == (a + b) & 0xF
        assert outputs["flag"] == ((a + b) >> 4)

    @pytest.mark.parametrize("a,b", [(0, 0), (5, 3), (3, 5), (0, 15),
                                     (15, 15), (8, 9)])
    def test_subtractor_matches_python(self, a, b):
        outputs = self._run_comb(build_alu4(), {"a": a, "b": b, "op": 1})
        assert outputs["result"] == (a - b) & 0xF
        assert outputs["flag"] == (1 if a < b else 0)

    def test_logic_ops(self):
        outputs = self._run_comb(build_alu4(), {"a": 0b1100, "b": 0b1010,
                                                "op": 2})
        assert outputs["result"] == 0b1000
        outputs = self._run_comb(build_alu4(), {"a": 0b1100, "b": 0b1010,
                                                "op": 3})
        assert outputs["result"] == 0b0110

    def test_table_implements_arbitrary_function(self):
        rtl = Rtl()
        x = rtl.input("x", 5)
        rtl.output("y", rtl.table(x, 3, lambda v: (v * 3 + 1) % 8))
        netlist = rtl.build()
        sim = NetlistSim(netlist)
        for value in range(32):
            assert sim.step({"x": value})["y"] == (value * 3 + 1) % 8

    def test_select_with_default(self):
        rtl = Rtl()
        s = rtl.input("s", 2)
        a = rtl.input("a", 4)
        rtl.output("y", rtl.select(s, [a, rtl.not_(a)], default=rtl.const(9, 4)))
        sim = NetlistSim(rtl.build())
        assert sim.step({"s": 0, "a": 5})["y"] == 5
        assert sim.step({"s": 1})["y"] == 0xA
        assert sim.step({"s": 2})["y"] == 9
        assert sim.step({"s": 3})["y"] == 9

    def test_eq_and_is_zero(self):
        rtl = Rtl()
        a = rtl.input("a", 6)
        b = rtl.input("b", 6)
        rtl.output("eq", rtl.eq(a, b))
        rtl.output("z", rtl.is_zero(a))
        sim = NetlistSim(rtl.build())
        assert sim.step({"a": 33, "b": 33}) == {"eq": 1, "z": 0}
        assert sim.step({"a": 0, "b": 61}) == {"eq": 0, "z": 1}

    def test_parity_via_reduce_xor(self):
        rtl = Rtl()
        a = rtl.input("a", 8)
        rtl.output("p", rtl.reduce_xor(a))
        sim = NetlistSim(rtl.build())
        for value in (0, 1, 3, 0xFF, 0xA5, 0x80):
            expected = bin(value).count("1") & 1
            assert sim.step({"a": value})["p"] == expected


class TestSequential:
    def test_counter_counts_and_wraps(self):
        sim = NetlistSim(build_counter(4))
        sim.reset()
        for expected in range(20):
            outputs = sim.step({"en": 1})
            assert outputs["value"] == expected % 16
            assert outputs["tc"] == (1 if expected % 16 == 15 else 0)

    def test_counter_enable_holds_value(self):
        sim = NetlistSim(build_counter(4))
        sim.reset()
        sim.run(5, {"en": 1})
        held = sim.step({"en": 0})["value"]
        for _ in range(3):
            assert sim.step()["value"] == held

    def test_register_init_value(self):
        rtl = Rtl()
        reg = rtl.register("r", 8, init=0xC3)
        reg.drive(rtl.inc(reg.q))
        rtl.output("q", reg.q)
        sim = NetlistSim(rtl.build())
        sim.reset()
        assert sim.step()["q"] == 0xC3
        assert sim.step()["q"] == 0xC4
        sim.reset()
        assert sim.step()["q"] == 0xC3

    def test_memory_registered_read(self):
        sim = NetlistSim(build_accumulator())
        sim.reset()
        # Cycle 0 presents addr 2; the read data arrives (registered) on
        # cycle 1 and is accumulated into acc, visible on cycle 2.
        sim.step({"addr": 2, "load": 1})
        sim.step({"addr": 2})
        assert sim.step({"addr": 2})["acc_out"] == 7  # mem[2] = 3*2+1

    def test_memory_write_read_roundtrip(self):
        rtl = Rtl()
        waddr = rtl.input("waddr", 3)
        raddr = rtl.input("raddr", 3)
        wdata = rtl.input("wdata", 8)
        we = rtl.input("we", 1)
        mem = rtl.memory("m", depth=8, width=8)
        mem.connect(raddr=raddr, waddr=waddr, wdata=wdata, we=we)
        rtl.output("rdata", mem.rdata)
        sim = NetlistSim(rtl.build())
        sim.reset()
        sim.step({"waddr": 5, "wdata": 0x5A, "we": 1, "raddr": 5})
        sim.step({"we": 0})
        assert sim.step()["rdata"] == 0x5A
        assert sim.mem_state("m")[5] == 0x5A

    def test_read_first_semantics(self):
        rtl = Rtl()
        addr = rtl.input("addr", 2)
        wdata = rtl.input("wdata", 4)
        we = rtl.input("we", 1)
        mem = rtl.memory("m", depth=4, width=4, init=[1, 2, 3, 4])
        mem.connect(raddr=addr, waddr=addr, wdata=wdata, we=we)
        rtl.output("rdata", mem.rdata)
        sim = NetlistSim(rtl.build())
        sim.reset()
        # Write and read the same address on the same edge: the read must
        # return the OLD contents (read-first).
        sim.step({"addr": 1, "wdata": 9, "we": 1})
        assert sim.step({"we": 0})["rdata"] == 2
        assert sim.step()["rdata"] == 9


class TestBuilderErrors:
    def test_width_mismatch_rejected(self):
        rtl = Rtl()
        a = rtl.input("a", 4)
        b = rtl.input("b", 5)
        with pytest.raises(ElaborationError):
            rtl.and_(a, b)

    def test_undriven_register_rejected(self):
        rtl = Rtl()
        rtl.register("r", 2)
        with pytest.raises(ElaborationError):
            rtl.build()

    def test_double_drive_rejected(self):
        rtl = Rtl()
        reg = rtl.register("r", 1)
        reg.drive(rtl.const(0, 1))
        with pytest.raises(ElaborationError):
            reg.drive(rtl.const(1, 1))

    def test_duplicate_names_rejected(self):
        rtl = Rtl()
        rtl.input("a", 1)
        with pytest.raises(ElaborationError):
            rtl.input("a", 2)

    def test_rom_write_rejected(self):
        rtl = Rtl()
        addr = rtl.input("addr", 2)
        mem = rtl.memory("rom", depth=4, width=4, init=[1, 2, 3], rom=True)
        with pytest.raises(ElaborationError):
            mem.connect(raddr=addr, we=rtl.const(1, 1))

    def test_unconnected_memory_rejected(self):
        rtl = Rtl()
        rtl.memory("m", depth=4, width=4)
        with pytest.raises(ElaborationError):
            rtl.build()

    def test_constant_too_wide_rejected(self):
        rtl = Rtl()
        with pytest.raises(ElaborationError):
            rtl.const(16, 4)


class TestConstantFolding:
    def test_and_with_constants_emits_no_gates(self):
        rtl = Rtl()
        a = rtl.input("a", 4)
        rtl.output("y", rtl.and_(a, rtl.const(0xF, 4)))
        rtl.output("z", rtl.and_(a, rtl.const(0x0, 4)))
        netlist = rtl.build()
        assert len(netlist.gates) == 0

    def test_xor_self_cancels(self):
        rtl = Rtl()
        a = rtl.input("a", 4)
        rtl.output("y", rtl.xor_(a, a))
        assert len(rtl.build().gates) == 0

    def test_unit_tags_recorded(self):
        netlist = build_alu4()
        units = {gate.unit for gate in netlist.gates}
        assert units == {"ALU"}
