"""Tests for repro.sfa — static fault analysis.

Covers the structural graph, observability reasoning, ATPG-style fault
collapsing, the netlist lint gate, and — the part with teeth — the
campaign-pruning guarantee: a ``prune_silent`` campaign must produce a
report table identical to the unpruned run, with every statically
resolved fault provably Silent under the reference simulator.
"""

import json

import pytest

from repro.analysis import Evaluation
from repro.core import (Fault, FaultLoadSpec, FaultModel, Outcome, Target,
                        TargetKind, generate_faultload, row_from_campaign)
from repro.errors import ReproError
from repro.hdl import Rtl
from repro.runtime import (CampaignJobSpec, read_journal, resume_campaign,
                           run_campaign)
from repro.sfa import (FaultClass, LintReport, ObservabilityAnalysis,
                       StructuralGraph, activation_window,
                       behavioral_signature, collapse_faultload,
                       lint_bundled, lint_design, rng_free,
                       sequential_depth)
from repro.synth import synthesize
from repro import designs

from test_core_injector import make_campaign


# ---------------------------------------------------------------------------
# structural graph
# ---------------------------------------------------------------------------
class TestStructuralGraph:
    def _counter_graph(self):
        mapped = synthesize(designs.counter(4)).mapped
        return mapped, StructuralGraph.from_design(mapped)

    def test_state_nets_are_level_zero(self):
        mapped, graph = self._counter_graph()
        levels = graph.levels()
        for ff in mapped.ffs:
            assert levels[ff.q] == 0
        for lut in mapped.luts:
            assert levels[lut.out] >= 1

    def test_counter_is_loop_free_and_clean(self):
        _mapped, graph = self._counter_graph()
        assert graph.combinational_loops() == []
        assert graph.dead_cells() == []
        assert graph.floating_inputs() == []

    def test_every_counter_ff_is_observable(self):
        # The count register drives the `value` output directly.
        mapped, graph = self._counter_graph()
        observable = graph.observable_nets()
        for ff in mapped.ffs:
            assert ff.q in observable

    def test_feedback_keeps_influence_alive(self):
        # A counter bit feeds itself: its influence set never dies out.
        _mapped, graph = self._counter_graph()
        assert sequential_depth(graph, 0, limit=64) is None

    def test_comb_loop_detected_and_blocks_postdominators(self):
        graph = StructuralGraph(
            n_nets=4, cells=[(2, (3,)), (3, (2,))], ff_pairs=[],
            bram_port_nets=[], bram_rdata_nets=[],
            input_nets=set(), output_nets={2})
        loops = graph.combinational_loops()
        assert len(loops) == 1
        assert sorted(loops[0]) == [2, 3]
        with pytest.raises(ValueError):
            graph.immediate_post_dominators()

    def test_postdominator_on_a_chain(self):
        # in(2) -> cell(3) -> cell(4) -> output: 4 post-dominates 3.
        # (Nets 0 and 1 are the reserved constants.)
        graph = StructuralGraph(
            n_nets=5, cells=[(3, (2,)), (4, (3,))], ff_pairs=[],
            bram_port_nets=[], bram_rdata_nets=[],
            input_nets={2}, output_nets={4})
        ipdom = graph.immediate_post_dominators()
        assert ipdom[3] == 4
        assert ipdom[4] is None


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------
class TestObservability:
    def _analysis(self, inputs=None):
        mapped = synthesize(designs.counter(4)).mapped
        graph = StructuralGraph.from_design(mapped)
        return mapped, ObservabilityAnalysis(mapped, graph,
                                             assume_inputs=inputs)

    def test_reachable_mask_covers_padded_entries(self):
        mapped, analysis = self._analysis()
        for index in range(len(mapped.luts)):
            mask = analysis.reachable_mask(index)
            assert 0 < mask < (1 << 16) or mask == (1 << 16) - 1

    def test_identity_rewrite_is_invisible(self):
        mapped, analysis = self._analysis()
        for index, lut in enumerate(mapped.luts):
            assert analysis.lut_change_invisible(index, lut.padded_tt())

    def test_output_inversion_is_visible_somewhere(self):
        mapped, analysis = self._analysis()
        visible = [index for index, lut in enumerate(mapped.luts)
                   if not analysis.lut_change_invisible(
                       index, lut.padded_tt() ^ 0xFFFF)]
        assert visible  # inverting every entry must matter for some LUT

    def test_tied_input_kills_entries(self):
        # With `en` assumed constant 1, the entries where the enable
        # line reads 0 become unreachable on the LUTs that sample it.
        mapped, free = self._analysis()
        _mapped, tied = self._analysis(inputs={"en": 1})
        assert any(tied.reachable_mask(i) != free.reachable_mask(i)
                   or tied.dead_entry_lines(i) != free.dead_entry_lines(i)
                   for i in range(len(mapped.luts)))


# ---------------------------------------------------------------------------
# fault collapsing
# ---------------------------------------------------------------------------
class TestCollapse:
    def test_ff_flips_collapse_across_mechanism_and_duration(self):
        faults = [
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 3), 10,
                  duration_cycles=1.0, mechanism="lsr"),
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 3), 10,
                  duration_cycles=7.5, mechanism="gsr"),
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 3), 11),
        ]
        classes = collapse_faultload(faults, cycles=100)
        assert len(classes) == 2
        merged = next(cls for cls in classes if len(cls.members) == 2)
        assert merged.representative == 0
        assert merged.collapsed == (1,)

    def test_randomised_faults_stay_singletons(self):
        faults = [
            Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 0), 5),
            Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 0), 5),
        ]
        assert all(behavioral_signature(f, 100) is None for f in faults)
        classes = collapse_faultload(faults, cycles=100)
        assert len(classes) == 2
        assert all(len(cls.members) == 1 for cls in classes)

    def test_start_clamp_merges_overshooting_faults(self):
        # Both flips land on the last emulated cycle after clamping.
        faults = [
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 1), 99),
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 1), 2500),
        ]
        classes = collapse_faultload(faults, cycles=100)
        assert len(classes) == 1

    def test_activation_window_rules(self):
        base = dict(model=FaultModel.PULSE,
                    target=Target(TargetKind.LUT, 0, line=-1),
                    start_cycle=4)
        assert activation_window(
            Fault(duration_cycles=0.5, phase=0.1, **base)) == 0
        assert activation_window(
            Fault(duration_cycles=0.5, phase=0.7, **base)) == 1
        assert activation_window(
            Fault(duration_cycles=2.5, phase=0.2, **base)) == 2

    def test_rng_free_predicate(self):
        ff = Target(TargetKind.FF, 0)
        assert rng_free(Fault(FaultModel.BITFLIP, ff, 1))
        assert rng_free(Fault(FaultModel.INDETERMINATION, ff, 1, value=1))
        assert not rng_free(Fault(FaultModel.INDETERMINATION, ff, 1))
        assert not rng_free(Fault(FaultModel.INDETERMINATION, ff, 1,
                                  value=1, oscillate=True,
                                  duration_cycles=4.0))

    def test_collapsible_signatures_are_rng_free(self):
        # The serial campaign relies on this: any fault the planner may
        # skip must not consume injector randomness.
        ff = Target(TargetKind.FF, 0)
        samples = [
            Fault(FaultModel.BITFLIP, ff, 1),
            Fault(FaultModel.INDETERMINATION, ff, 1),
            Fault(FaultModel.INDETERMINATION, ff, 1, value=0),
            Fault(FaultModel.INDETERMINATION, ff, 1, value=0,
                  oscillate=True, duration_cycles=3.0),
            Fault(FaultModel.PULSE, Target(TargetKind.LUT, 0, line=-1), 1),
        ]
        for fault in samples:
            if behavioral_signature(fault, 100) is not None:
                assert rng_free(fault)


# ---------------------------------------------------------------------------
# lint
# ---------------------------------------------------------------------------
class TestLint:
    def test_bundled_designs_have_no_errors(self):
        for report in lint_bundled(["counter", "fir", "uart"]):
            assert not report.fails("error"), report.render()

    def test_unknown_design_rejected(self):
        with pytest.raises(ReproError, match="unknown design"):
            lint_bundled(["no_such_design"])

    def test_invariant_violation_is_an_error(self):
        mapped = synthesize(designs.counter(4)).mapped
        mapped.ffs.append(mapped.ffs[0])  # duplicate driver
        report = lint_design(mapped, "broken")
        assert report.worst() == "error"
        assert report.findings[0].check == "invariants"

    def test_structural_warnings_and_infos(self):
        rtl = Rtl("linty")
        a = rtl.input("a", 1)
        b = rtl.input("b", 1)
        rtl.input("unused", 1)
        rtl.xor_(a, b)                    # dangling gate: dead logic
        rtl.output("o", rtl.and_(a, b))   # comb input-to-output path
        report = lint_design(rtl.build())
        checks = {finding.check for finding in report.findings}
        assert {"floating-input", "dead-logic",
                "unregistered-output"} <= checks
        assert report.worst() == "warning"
        assert report.fails("warning")
        assert not report.fails("error")

    def test_report_json_round_trip(self):
        report = lint_design(designs.counter(4), "counter")
        data = json.loads(report.to_json())
        assert data["design"] == "counter"
        assert set(data["counts"]) == {"info", "warning", "error"}

    def test_empty_report_never_fails(self):
        assert not LintReport(design="x").fails("info")


# ---------------------------------------------------------------------------
# prune plan on a small design
# ---------------------------------------------------------------------------
class TestPrunePlan:
    @pytest.fixture()
    def campaign(self):
        return make_campaign(designs.counter(4), inputs={"en": 1})

    def test_window0_pulse_pruned(self, campaign):
        fault = Fault(FaultModel.PULSE, Target(TargetKind.LUT, 0, line=-1),
                      5, duration_cycles=0.3, phase=0.1)
        plan = campaign.static_plan([fault], cycles=20)
        assert plan.pruned == {0: "window0-noop"}
        assert plan.survivors() == []

    def test_sub_cycle_ff_indetermination_not_pruned_as_noop(self, campaign):
        # Asserting LSR forces the state even in a window-0 transient.
        fault = Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 0),
                      5, duration_cycles=0.3, phase=0.1, value=1)
        plan = campaign.static_plan([fault], cycles=20)
        assert plan.pruned.get(0) != "window0-noop"

    def test_tiny_fanout_delay_absorbed_by_slack(self, campaign):
        net = campaign.locmap.mapped.ffs[0].q
        fault = Fault(FaultModel.DELAY, Target(TargetKind.NET, net), 5,
                      magnitude_ns=0.01, mechanism="fanout")
        plan = campaign.static_plan([fault], cycles=20)
        assert plan.pruned == {0: "delay-slack"}

    def test_plan_partitions_the_faultload(self, campaign):
        spec = FaultLoadSpec(model=FaultModel.BITFLIP, pool="ffs",
                             count=16, workload_cycles=20)
        faults = generate_faultload(spec, campaign.locmap, seed=7)
        plan = campaign.static_plan(faults, cycles=20)
        survivors = set(plan.survivors())
        pruned = set(plan.pruned)
        collapsed = set(plan.collapsed)
        assert survivors | pruned | collapsed == set(range(len(faults)))
        assert not survivors & pruned
        assert not survivors & collapsed
        assert not pruned & collapsed
        stats = plan.stats()
        assert stats["faults"] == len(faults)
        assert stats["pruned"] == len(pruned)

    def test_pruned_verdict_extends_to_class_members(self):
        plan_cls = FaultClass(("ff-flip", 0, 5), 0, (0, 2))
        assert plan_cls.collapsed == (2,)


# ---------------------------------------------------------------------------
# the pruning guarantee: identical report tables on bundled designs
# ---------------------------------------------------------------------------
class TestPruneSilentIdenticalTables:
    DESIGNS = [
        ("counter", lambda: designs.counter(4), {"en": 1}),
        ("fir", lambda: designs.fir_filter(), {"sample": 5, "valid": 1}),
        ("uart", lambda: designs.uart_tx(), {"data": 0x5A, "send": 1}),
    ]
    SPECS = [
        FaultLoadSpec(model=FaultModel.BITFLIP, pool="ffs", count=10,
                      workload_cycles=40),
        FaultLoadSpec(model=FaultModel.PULSE, pool="luts", count=10,
                      duration_range=(0.1, 0.9), workload_cycles=40),
    ]

    @pytest.mark.parametrize("name,builder,inputs", DESIGNS,
                             ids=[d[0] for d in DESIGNS])
    def test_tables_identical(self, name, builder, inputs):
        netlist = builder()
        baseline = make_campaign(netlist, inputs=inputs)
        pruned = make_campaign(netlist, inputs=inputs, prune_silent=True)
        resolved = 0
        for spec in self.SPECS:
            ref = baseline.run(spec, seed=2006)
            opt = pruned.run(spec, seed=2006)
            assert [e.outcome for e in opt.experiments] \
                == [e.outcome for e in ref.experiments]
            ref_row = row_from_campaign(ref, spec.model.value, name, "b")
            opt_row = row_from_campaign(opt, spec.model.value, name, "b")
            assert opt_row.failure_pct == ref_row.failure_pct
            assert opt_row.latent_pct == ref_row.latent_pct
            assert opt_row.silent_pct == ref_row.silent_pct
            assert opt_row.n_faults == ref_row.n_faults
            resolved += opt.pruned_count() + opt.collapsed_count()
            for experiment in opt.experiments:
                if experiment.pruned:
                    assert experiment.outcome is Outcome.SILENT
                    assert experiment.cost.transactions == 0
        assert resolved > 0, f"{name}: nothing statically resolved"


# ---------------------------------------------------------------------------
# acceptance: mc8051 bit-flip campaign, >= 10% statically resolved
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def evaluation():
    return Evaluation()


@pytest.fixture(scope="module")
def bitflip_spec(evaluation):
    return evaluation.spec(FaultModel.BITFLIP, "ffs", 1, count=12)


@pytest.fixture(scope="module")
def bitflip_runs(evaluation, bitflip_spec):
    baseline = evaluation.run_fades(bitflip_spec)
    pruned = Evaluation(prune_silent=True).run_fades(bitflip_spec)
    return baseline, pruned


class TestMc8051Acceptance:
    def test_prunes_at_least_ten_percent(self, bitflip_runs):
        _baseline, pruned = bitflip_runs
        total = len(pruned.experiments)
        assert pruned.pruned_count() >= max(1, total // 10)

    def test_zero_classification_differences(self, bitflip_runs):
        baseline, pruned = bitflip_runs
        assert [e.outcome for e in pruned.experiments] \
            == [e.outcome for e in baseline.experiments]

    def test_every_pruned_fault_is_silent_under_reference(self, bitflip_runs):
        baseline, pruned = bitflip_runs
        flagged = [index for index, e in enumerate(pruned.experiments)
                   if e.pruned]
        assert flagged
        for index in flagged:
            assert baseline.experiments[index].outcome is Outcome.SILENT
            assert pruned.experiments[index].outcome is Outcome.SILENT

    def test_emulation_time_counts_emulated_faults_only(self, bitflip_runs):
        _baseline, pruned = bitflip_runs
        for experiment in pruned.experiments:
            if experiment.pruned or experiment.collapsed_from is not None:
                assert experiment.cost.transactions == 0
        emulated = [e for e in pruned.experiments
                    if not e.pruned and e.collapsed_from is None]
        total = sum(e.cost.total_s for e in emulated)
        assert pruned.total_emulation_s == pytest.approx(total)


# ---------------------------------------------------------------------------
# engine + journal integration
# ---------------------------------------------------------------------------
class TestEngineJournalMarkers:
    def test_markers_survive_journal_and_resume(self, tmp_path, evaluation,
                                                bitflip_spec):
        jobspec = CampaignJobSpec.from_evaluation(
            Evaluation(prune_silent=True), bitflip_spec)
        journal = str(tmp_path / "sfa.jsonl")
        result = run_campaign(jobspec, journal=journal)
        assert result.pruned_count() >= 1

        with open(journal, "r", encoding="utf-8") as handle:
            entries = [json.loads(line) for line in handle]
        records = [e for e in entries if e.get("type") == "record"]
        flagged = [r for r in records if r.get("pruned")]
        assert len(flagged) == result.pruned_count()
        for record in flagged:
            assert record["outcome"] == "silent"
            assert record["cost"]["transactions"] == 0

        resumed = resume_campaign(journal)
        assert [e.outcome for e in resumed.experiments] \
            == [e.outcome for e in result.experiments]
        assert resumed.pruned_count() == result.pruned_count()
        assert resumed.collapsed_count() == result.collapsed_count()

    def test_engine_agrees_with_serial_path(self, bitflip_runs, evaluation,
                                            bitflip_spec):
        _baseline, serial = bitflip_runs
        jobspec = CampaignJobSpec.from_evaluation(
            Evaluation(prune_silent=True), bitflip_spec)
        engine = run_campaign(jobspec)
        assert [e.outcome for e in engine.experiments] \
            == [e.outcome for e in serial.experiments]

    def test_jobspec_serialisation_compatibility(self, evaluation,
                                                 bitflip_spec):
        plain = CampaignJobSpec.from_evaluation(evaluation, bitflip_spec)
        assert "prune_silent" not in plain.to_dict()  # old journals resume
        assert not CampaignJobSpec.from_dict(plain.to_dict()).prune_silent
        pruning = CampaignJobSpec.from_evaluation(
            Evaluation(prune_silent=True), bitflip_spec)
        assert pruning.to_dict()["prune_silent"] is True
        assert CampaignJobSpec.from_dict(pruning.to_dict()).prune_silent

    def test_journal_reader_accepts_marker_records(self, tmp_path, evaluation,
                                                   bitflip_spec):
        jobspec = CampaignJobSpec.from_evaluation(
            Evaluation(prune_silent=True), bitflip_spec)
        journal = str(tmp_path / "sfa2.jsonl")
        run_campaign(jobspec, journal=journal)
        state = read_journal(journal)
        assert len(state.records) == bitflip_spec.count
