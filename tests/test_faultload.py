"""Tests for the statistical campaign planner (:mod:`repro.faultload`).

Covers the three planner pillars — the stratified sampler, the
sequential stopping controller, and the engine's incremental dispatch —
plus the compatibility contract: a campaign with none of the new knobs
set must behave (and serialise) exactly as it always has, and journals
written before the planner existed must keep resuming as fixed-budget
campaigns.
"""

import json
import multiprocessing
from dataclasses import replace

import pytest

from repro.analysis import Evaluation
from repro.analysis.stats import wilson, z_value
from repro.core import FaultModel, generate_faultload
from repro.core.classify import OutcomeCounts
from repro.core.config import FaultLoadSpec, candidate_targets
from repro.faultload import (FaultStream, SequentialController, Stratum,
                             StratifiedSampler, partition_strata,
                             plan_checkpoints, summarize_strata,
                             tally_prefix)
from repro.runtime import (CampaignJobSpec, CampaignMetrics, read_journal,
                           resume_campaign, run_campaign)

from helpers import build_counter
from test_core_injector import make_campaign

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


@pytest.fixture(scope="module")
def campaign():
    return make_campaign(build_counter(4), inputs={"en": 1})


@pytest.fixture(scope="module")
def spec():
    return FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=24,
                         workload_cycles=50)


# ---------------------------------------------------------------------------
# Check schedule
# ---------------------------------------------------------------------------
class TestCheckpoints:
    def test_schedule_ends_exactly_at_budget(self):
        points = plan_checkpoints(3000)
        assert points[-1] == 3000
        assert points[0] == 100
        assert points == sorted(set(points))

    def test_growth_is_geometric(self):
        points = plan_checkpoints(1000, initial=100, growth=1.5)
        assert points == [100, 150, 225, 337, 506, 759, 1000]

    def test_small_budget_is_a_single_look(self):
        assert plan_checkpoints(12) == [12]
        assert plan_checkpoints(100) == [100]
        assert plan_checkpoints(1) == [1]

    def test_budget_between_marks_is_appended(self):
        assert plan_checkpoints(120) == [100, 120]

    def test_slow_growth_still_terminates(self):
        points = plan_checkpoints(40, initial=1, growth=1.0)
        assert points[-1] == 40
        assert len(points) == 40  # falls back to +1 steps

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            plan_checkpoints(0)


class TestController:
    def test_validates_epsilon_and_confidence(self):
        with pytest.raises(ValueError):
            SequentialController(epsilon=0.0, budget=100)
        with pytest.raises(ValueError):
            SequentialController(epsilon=1.0, budget=100)
        with pytest.raises(ValueError):
            SequentialController(epsilon=0.1, budget=100, confidence=1.0)

    def test_bonferroni_decision_confidence(self):
        controller = SequentialController(epsilon=0.05, budget=1000,
                                          confidence=0.95)
        k = len(controller.checkpoints())
        assert controller.decision_confidence == \
            pytest.approx(1.0 - 0.05 / k)
        assert controller.decision_confidence > 0.95

    def test_converged_when_intervals_are_narrow(self):
        controller = SequentialController(epsilon=0.2, budget=1000)
        decision = controller.check(
            OutcomeCounts(failure=30, latent=35, silent=35), 100)
        assert decision.stop and decision.reason == "converged"
        assert decision.n == 100
        assert decision.half_width <= 0.2

    def test_budget_exhaustion_stops_with_wide_intervals(self):
        controller = SequentialController(epsilon=0.01, budget=100)
        decision = controller.check(
            OutcomeCounts(failure=30, latent=35, silent=35), 100)
        assert decision.stop and decision.reason == "budget"

    def test_keeps_sampling_otherwise(self):
        controller = SequentialController(epsilon=0.01, budget=1000)
        decision = controller.check(
            OutcomeCounts(failure=30, latent=35, silent=35), 100)
        assert not decision.stop and decision.reason == ""
        assert controller.checks == 1

    def test_reported_intervals_use_plain_confidence(self):
        controller = SequentialController(epsilon=0.2, budget=1000,
                                          confidence=0.95)
        decision = controller.check(
            OutcomeCounts(failure=30, latent=35, silent=35), 100)
        interval = wilson(30, 100, 0.95)
        assert decision.intervals["failure"][:2] == [30, 100]
        assert decision.intervals["failure"][2] == \
            pytest.approx(interval.low, abs=1e-6)
        assert decision.intervals["failure"][3] == \
            pytest.approx(interval.high, abs=1e-6)

    def test_to_dict_is_json_ready(self):
        controller = SequentialController(epsilon=0.2, budget=1000)
        decision = controller.check(
            OutcomeCounts(failure=30, latent=35, silent=35), 100)
        data = json.loads(json.dumps(decision.to_dict()))
        assert data["reason"] == "converged"
        assert set(data["intervals"]) == {"failure", "latent", "silent"}

    def test_tally_prefix_requires_a_complete_prefix(self):
        records = {0: {"outcome": "failure"}, 1: {"outcome": "silent"},
                   3: {"outcome": "latent"}}
        counts = tally_prefix(records, 2)
        assert (counts.failure, counts.latent, counts.silent) == (1, 0, 1)
        assert tally_prefix(records, 4) is None  # index 2 missing


# ---------------------------------------------------------------------------
# Strata and samplers
# ---------------------------------------------------------------------------
class TestStrata:
    def test_partition_covers_the_pool_exactly(self, campaign, spec):
        strata = partition_strata(spec, campaign.locmap)
        members = [t for s in strata for t in s.targets]
        assert set(members) == set(candidate_targets(spec, campaign.locmap))
        assert len(set(members)) == len(members)
        for stratum in strata:
            model, kind, _group = stratum.key.split("/")
            assert model == "bitflip" and kind == "ff"
            assert stratum.weight == len(stratum.targets)

    def test_uniform_stream_matches_generate_faultload(self, campaign,
                                                       spec):
        stream = FaultStream(spec, campaign.locmap, seed=5)
        stream.ensure(24)
        assert stream.faults == generate_faultload(spec, campaign.locmap,
                                                   seed=5)
        # Extending the stream never rewrites what was already issued.
        prefix = list(stream.faults[:10])
        stream.ensure(40)
        assert stream.faults[:10] == prefix

    def test_stratified_stream_is_seed_deterministic(self, campaign,
                                                     spec):
        first = FaultStream(spec, campaign.locmap, seed=5,
                            strategy="stratified")
        second = FaultStream(spec, campaign.locmap, seed=5,
                             strategy="stratified")
        assert first.ensure(30) == second.ensure(30)
        assert first.tags == second.tags
        other = FaultStream(spec, campaign.locmap, seed=6,
                            strategy="stratified")
        assert other.ensure(30) != first.faults

    def test_allocation_tracks_weights_within_one_draw(self, spec):
        targets = candidate_targets(
            spec, make_campaign(build_counter(4), inputs={"en": 1}).locmap)
        strata = [Stratum("a", tuple(targets), 3.0),
                  Stratum("b", tuple(targets), 1.0)]
        sampler = StratifiedSampler(spec, strata, seed=0)
        tags = [next(sampler)[1] for _ in range(40)]
        for n in range(1, 41):
            drawn = tags[:n].count("a")
            assert abs(drawn - 0.75 * n) <= 1.0

    def test_importance_strategy_samples_heavy_cones_more(self, campaign,
                                                          spec):
        stream = FaultStream(spec, campaign.locmap, seed=5,
                             strategy="importance")
        stream.ensure(30)
        assert len(stream.faults) == 30
        assert all(tag in {s.key for s in stream.strata}
                   for tag in stream.tags)

    def test_unknown_strategy_is_rejected(self, campaign, spec):
        with pytest.raises(ValueError):
            FaultStream(spec, campaign.locmap, strategy="sorcery")
        with pytest.raises(ValueError):
            StratifiedSampler(spec, [], seed=0)

    def test_summarize_strata_skips_unexecuted_indices(self):
        tags = ["a", "b", "a", "b"]
        outcomes = {0: "failure", 1: "silent", 2: "silent"}
        table = summarize_strata(tags, outcomes)
        assert [row["stratum"] for row in table] == ["a", "b"]
        a, b = table
        assert a["n"] == 2 and b["n"] == 1
        assert a["rates"]["failure"][0] == pytest.approx(50.0)
        assert b["rates"]["silent"][0] == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# Job spec serialisation compatibility
# ---------------------------------------------------------------------------
class TestJobSpecCompat:
    def base(self, spec, **kwargs):
        return CampaignJobSpec(spec=spec, **kwargs)

    def test_default_spec_serialises_without_planner_keys(self, spec):
        data = self.base(spec).to_dict()
        for key in ("strategy", "confidence", "epsilon", "budget"):
            assert key not in data

    def test_adaptive_fields_round_trip(self, spec):
        jobspec = self.base(spec, strategy="stratified", confidence=0.99,
                            epsilon=0.05, budget=500)
        clone = CampaignJobSpec.from_dict(
            json.loads(json.dumps(jobspec.to_dict())))
        assert clone == jobspec
        assert clone.adaptive
        assert clone.effective_budget() == 500

    def test_pre_planner_header_means_fixed_budget(self, spec):
        data = self.base(spec).to_dict()  # no planner keys at all
        clone = CampaignJobSpec.from_dict(data)
        assert not clone.adaptive
        assert clone.strategy == "uniform"
        assert clone.epsilon is None and clone.budget is None
        assert clone.effective_budget() == spec.count

    def test_budget_only_spec_is_adaptive(self, spec):
        jobspec = self.base(spec, budget=10)
        assert jobspec.adaptive
        assert jobspec.effective_budget() == 10
        clone = CampaignJobSpec.from_dict(jobspec.to_dict())
        assert clone.budget == 10 and clone.strategy == "uniform"


# ---------------------------------------------------------------------------
# Progress rendering for dynamic budgets (satellite of the planner)
# ---------------------------------------------------------------------------
class TestDynamicBudgetMetrics:
    def test_upper_bound_total_renders_as_bound_without_eta(self):
        clock = iter([0.0, 10.0, 10.0]).__next__
        metrics = CampaignMetrics(clock=clock)
        metrics.set_total(400, exact=False)
        metrics.record({"cost": {}})
        snapshot = metrics.snapshot()
        assert snapshot.eta_s is None
        assert "[1/<=400]" in snapshot.render()
        assert "eta --:--" in snapshot.render()

    def test_resolving_the_total_restores_exact_rendering(self):
        clock = iter([0.0] + [10.0] * 8).__next__
        metrics = CampaignMetrics(clock=clock)
        metrics.set_total(400, exact=False)
        metrics.record({"cost": {}})
        metrics.resolve_total(150)
        snapshot = metrics.snapshot()
        assert snapshot.total == 150 and snapshot.total_exact
        assert "[1/150]" in snapshot.render()
        assert snapshot.eta_s is not None

    def test_exact_totals_are_unchanged(self):
        clock = iter([0.0] + [10.0] * 8).__next__
        metrics = CampaignMetrics(clock=clock)
        metrics.set_total(40)
        metrics.record({"cost": {}})
        snapshot = metrics.snapshot()
        assert "[1/40]" in snapshot.render()
        assert snapshot.eta_s == pytest.approx(390.0)


# ---------------------------------------------------------------------------
# z-values (satellite: stats now uses the exact normal quantile)
# ---------------------------------------------------------------------------
class TestZValue:
    def test_documented_levels_are_bit_identical(self):
        assert z_value(0.90) == 1.6449
        assert z_value(0.95) == 1.9600
        assert z_value(0.99) == 2.5758

    def test_other_levels_use_the_exact_quantile(self):
        from statistics import NormalDist
        assert z_value(0.951) == NormalDist().inv_cdf(0.5 + 0.951 / 2)
        assert 1.9600 < z_value(0.951) < 2.5758

    def test_monotone_in_confidence(self):
        levels = [0.5, 0.8, 0.9, 0.95, 0.975, 0.99, 0.999]
        values = [z_value(level) for level in levels]
        assert values == sorted(values)

    def test_rejects_degenerate_levels(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                z_value(bad)


# ---------------------------------------------------------------------------
# End-to-end determinism of adaptive campaigns
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def evaluation():
    return Evaluation(backend="compiled")


@pytest.fixture(scope="module")
def adaptive_jobspec(evaluation):
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, 24)
    base = CampaignJobSpec.from_evaluation(evaluation, spec,
                                           faultload_seed=evaluation.seed)
    return replace(base, epsilon=0.1, budget=400)


@pytest.fixture(scope="module")
def adaptive_serial(adaptive_jobspec):
    return run_campaign(adaptive_jobspec)


def outcomes(result):
    return [experiment.outcome for experiment in result.experiments]


class TestAdaptiveEngine:
    def test_stops_before_the_budget(self, adaptive_serial):
        assert adaptive_serial.stop is not None
        assert adaptive_serial.stop["reason"] == "converged"
        assert adaptive_serial.stop["n"] < 400
        assert len(adaptive_serial.experiments) == \
            adaptive_serial.stop["n"]
        assert adaptive_serial.strata  # per-stratum table present
        assert sum(row["n"] for row in adaptive_serial.strata) == \
            adaptive_serial.stop["n"]

    def test_half_width_met_at_stop(self, adaptive_serial):
        assert adaptive_serial.stop["half_width"] <= 0.1

    def test_budget_cap_reports_budget_reason(self, evaluation):
        spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, 24)
        base = CampaignJobSpec.from_evaluation(
            evaluation, spec, faultload_seed=evaluation.seed)
        jobspec = replace(base, epsilon=0.005, budget=120)
        result = run_campaign(jobspec)
        assert result.stop["reason"] == "budget"
        assert result.stop["n"] == 120
        assert result.stop["checks"] == 2  # looks at 100 and 120

    @pytest.mark.skipif(not HAS_FORK, reason="needs fork start method")
    def test_parallel_pool_stops_identically(self, adaptive_jobspec,
                                             adaptive_serial):
        parallel = run_campaign(adaptive_jobspec, workers=2)
        assert outcomes(parallel) == outcomes(adaptive_serial)
        assert parallel.stop == adaptive_serial.stop
        assert parallel.strata == adaptive_serial.strata

    def test_resume_replays_the_same_stop(self, adaptive_jobspec,
                                          adaptive_serial, tmp_path):
        journal = tmp_path / "adaptive.jsonl"
        run_campaign(adaptive_jobspec, journal=str(journal))
        lines = journal.read_text().splitlines()
        # Simulate a crash mid-campaign: header plus 40 records.
        truncated = tmp_path / "crash.jsonl"
        truncated.write_text("\n".join(lines[:41]) + "\n")
        resumed = resume_campaign(str(truncated))
        assert outcomes(resumed) == outcomes(adaptive_serial)
        assert resumed.stop == adaptive_serial.stop

    def test_journal_records_the_stop_line(self, adaptive_jobspec,
                                           adaptive_serial, tmp_path):
        journal = tmp_path / "stopline.jsonl"
        run_campaign(adaptive_jobspec, journal=str(journal))
        state = read_journal(str(journal))
        assert state.stop is not None
        assert state.stop["reason"] == "converged"
        assert state.stop["n"] == adaptive_serial.stop["n"]

    def test_fixed_budget_campaign_records_no_stop(self, evaluation,
                                                   tmp_path):
        spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, 12)
        jobspec = CampaignJobSpec.from_evaluation(
            evaluation, spec, faultload_seed=evaluation.seed)
        journal = tmp_path / "fixed.jsonl"
        result = run_campaign(jobspec, journal=str(journal))
        assert result.stop is None
        assert len(result.experiments) == 12
        header = json.loads(journal.read_text().splitlines()[0])
        for key in ("strategy", "confidence", "epsilon", "budget"):
            assert key not in header["jobspec"]
        assert read_journal(str(journal)).stop is None
