"""Tests for the 8051-subset assembler and disassembler."""

import pytest

from repro.errors import WorkloadError
from repro.mc8051 import OPCODES, assemble, disassemble
from repro.mc8051.asm import parse_number


class TestNumbers:
    def test_decimal(self):
        assert parse_number("42") == 42

    def test_hex_prefix(self):
        assert parse_number("0x2A") == 42

    def test_hex_suffix(self):
        assert parse_number("2Ah") == 42

    def test_symbols(self):
        assert parse_number("P1", {"P1": 0x90}) == 0x90

    def test_garbage_rejected(self):
        with pytest.raises(WorkloadError):
            parse_number("zz9")


class TestEncodings:
    @pytest.mark.parametrize("source,expected", [
        ("NOP", b"\x00"),
        ("MOV A,#0x42", b"\x74\x42"),
        ("MOV R3,#7", b"\x7b\x07"),
        ("MOV A,R5", b"\xed"),
        ("MOV R2,A", b"\xfa"),
        ("MOV A,@R1", b"\xe7"),
        ("MOV @R0,A", b"\xf6"),
        ("MOV @R1,#9", b"\x77\x09"),
        ("MOV A,0x30", b"\xe5\x30"),
        ("MOV 0x90,A", b"\xf5\x90"),
        ("MOV 0x31,#0xAB", b"\x75\x31\xab"),
        ("ADD A,#1", b"\x24\x01"),
        ("ADD A,R0", b"\x28"),
        ("SUBB A,@R0", b"\x96"),
        ("ANL A,#0x0F", b"\x54\x0f"),
        ("ORL A,R7", b"\x4f"),
        ("XRL A,0x40", b"\x65\x40"),
        ("INC A", b"\x04"),
        ("DEC R4", b"\x1c"),
        ("INC @R1", b"\x07"),
        ("CLR A", b"\xe4"),
        ("CPL A", b"\xf4"),
        ("RL A", b"\x23"),
        ("RR A", b"\x03"),
        ("CLR C", b"\xc3"),
        ("SETB C", b"\xd3"),
        ("CPL C", b"\xb3"),
        ("XCH A,R1", b"\xc9"),
        ("XCH A,@R0", b"\xc6"),
        ("LJMP 0x123", b"\x02\x01\x23"),
    ])
    def test_single_instruction(self, source, expected):
        assert assemble(source) == expected

    def test_relative_branches(self):
        code = assemble("here: SJMP here")
        assert code == b"\x80\xfe"
        code = assemble("JZ skip\nNOP\nskip: NOP")
        assert code == b"\x60\x01\x00\x00"

    def test_cjne_and_djnz(self):
        code = assemble("loop: CJNE A,#5,loop")
        assert code == b"\xb4\x05\xfd"
        code = assemble("loop: DJNZ R2,loop")
        assert code == b"\xda\xfe"
        code = assemble("loop: DJNZ 0x40,loop")
        assert code == b"\xd5\x40\xfd"

    def test_forward_reference(self):
        code = assemble("SJMP target\nNOP\nNOP\ntarget: NOP")
        assert code[0] == 0x80
        assert code[1] == 0x02

    def test_branch_out_of_range_rejected(self):
        source = "SJMP far\n" + "NOP\n" * 200 + "far: NOP"
        with pytest.raises(WorkloadError):
            assemble(source)

    def test_db_org_equ(self):
        code = assemble("""
P1 EQU 0x90
    ORG 0x10
    MOV P1,A
    DB 1, 2, 0xFF
""")
        assert code[0x10:0x12] == b"\xf5\x90"
        assert code[0x12:0x15] == b"\x01\x02\xff"

    def test_unknown_instruction_rejected(self):
        with pytest.raises(WorkloadError):
            assemble("FROB A,#1")

    def test_unknown_operand_combo_rejected(self):
        with pytest.raises(WorkloadError):
            assemble("RL R3")


class TestDisassembler:
    def test_roundtrip_every_opcode(self):
        # Build a one-instruction image per opcode and check the
        # disassembler renders the right mnemonic and length.
        for code, spec in OPCODES.items():
            image = bytes([code, 0x10, 0x20][:spec.length])
            listing = disassemble(image)
            assert len(listing) == 1
            addr, text = listing[0]
            assert addr == 0
            assert text.split()[0] == spec.mnemonic

    def test_relative_target_rendering(self):
        listing = disassemble(b"\x80\xfe")
        assert "0x0000" in listing[0][1]

    def test_linear_sweep(self):
        image = assemble("MOV A,#1\nADD A,#2\ndone: SJMP done")
        listing = disassemble(image)
        assert [text.split()[0] for _a, text in listing] == [
            "MOV", "ADD", "SJMP"]
