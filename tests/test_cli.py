"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign", "--model", "pulse"])
        assert args.tool == "fades"
        assert args.pool == "ffs"
        assert args.band == 1

    def test_values_parsing(self):
        args = build_parser().parse_args(
            ["--values", "1,0x20,300", "info"])
        assert args.values == (1, 0x20, 300 & 0xFF)

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--model", "gremlin"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["--values", "7,2,5", "info"]) == 0
        out = capsys.readouterr().out
        assert "workload" in out
        assert "virtex1000-like" in out
        assert "unit ALU" in out

    def test_campaign_fades(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--model", "bitflip",
                     "--pool", "ffs", "--count", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FADES | bitflip @ ffs" in out
        assert "n=3" in out
        assert "s/fault" in out

    def test_campaign_vfit(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--tool", "vfit",
                     "--model", "indetermination", "--count", "3"])
        assert code == 0
        assert "VFIT" in capsys.readouterr().out

    def test_campaign_vfit_delay_fails_cleanly(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--tool", "vfit",
                     "--model", "delay", "--pool", "nets:seq",
                     "--count", "2"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_seu(self, capsys):
        code = main(["--values", "7,2,5", "seu", "--count", "5",
                     "--occupied"])
        assert code == 0
        out = capsys.readouterr().out
        assert "essential" in out

    def test_bad_pool_reports_error(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--model", "pulse",
                     "--pool", "nonsense", "--count", "2"])
        assert code == 1
        assert "error" in capsys.readouterr().err
