"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign", "--model", "pulse"])
        assert args.tool == "fades"
        assert args.pool == "ffs"
        assert args.band == 1

    def test_values_parsing(self):
        args = build_parser().parse_args(
            ["--values", "1,0x20,300", "info"])
        assert args.values == (1, 0x20, 300 & 0xFF)

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--model", "gremlin"])

    def test_campaign_runtime_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--model", "bitflip", "--workers", "4",
             "--journal", "out.jsonl"])
        assert args.workers == 4
        assert args.journal == "out.jsonl"

    def test_resume_defaults(self):
        args = build_parser().parse_args(["resume", "out.jsonl"])
        assert args.journal == "out.jsonl"
        assert args.workers == 0

    def test_report_workers(self):
        args = build_parser().parse_args(["report", "--workers", "2"])
        assert args.workers == 2


class TestCommands:
    def test_info(self, capsys):
        assert main(["--values", "7,2,5", "info"]) == 0
        out = capsys.readouterr().out
        assert "workload" in out
        assert "virtex1000-like" in out
        assert "unit ALU" in out

    def test_campaign_fades(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--model", "bitflip",
                     "--pool", "ffs", "--count", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FADES | bitflip @ ffs" in out
        assert "n=3" in out
        assert "s/fault" in out

    def test_campaign_vfit(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--tool", "vfit",
                     "--model", "indetermination", "--count", "3"])
        assert code == 0
        assert "VFIT" in capsys.readouterr().out

    def test_campaign_vfit_delay_fails_cleanly(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--tool", "vfit",
                     "--model", "delay", "--pool", "nets:seq",
                     "--count", "2"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_seu(self, capsys):
        code = main(["--values", "7,2,5", "seu", "--count", "5",
                     "--occupied"])
        assert code == 0
        out = capsys.readouterr().out
        assert "essential" in out

    def test_bad_pool_reports_error(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--model", "pulse",
                     "--pool", "nonsense", "--count", "2"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_campaign_workers_journal_then_resume(self, capsys, tmp_path):
        journal = str(tmp_path / "campaign.jsonl")
        code = main(["--values", "7,2,5", "campaign", "--model", "bitflip",
                     "--count", "4", "--workers", "2",
                     "--journal", journal])
        assert code == 0
        out = capsys.readouterr().out
        assert "n=4" in out
        code = main(["resume", journal])
        assert code == 0
        captured = capsys.readouterr()
        # The resume banner is diagnostic: it logs to stderr, keeping
        # stdout to the result tally alone.
        assert "4 journaled, 0 pending" in captured.err
        assert "failure" in captured.out

    def test_campaign_workers_rejects_vfit(self, capsys):
        code = main(["--values", "7,2,5", "campaign", "--tool", "vfit",
                     "--model", "bitflip", "--count", "2",
                     "--workers", "2"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_resume_missing_journal_fails_cleanly(self, capsys, tmp_path):
        code = main(["resume", str(tmp_path / "nope.jsonl")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_screen_threads_the_cli_seed(self, capsys, monkeypatch):
        from repro.core.campaign import FadesCampaign
        seen = {}

        def fake_screen(self, cycles, samples_per_ff=2, seed=None):
            seen["seed"] = seed
            return []

        monkeypatch.setattr(FadesCampaign, "screen_sensitive_ffs",
                            fake_screen)
        code = main(["--values", "7,2,5", "--seed", "99", "screen"])
        assert code == 0
        assert seen["seed"] == 99
