"""Tests for the analysis package (evaluation setup, tables, figures).

Campaign counts are kept tiny — these tests validate structure and shape
machinery, not statistics (the benchmarks do that at larger counts).
"""

import pytest

from repro.analysis import (Evaluation, PAPER_TABLE2, default_fault_count,
                            generate_fig10, generate_fig12, generate_table1,
                            generate_table2, generate_table3,
                            render_table1, render_table2, render_table3)
from repro.core import FaultModel


@pytest.fixture(scope="module")
def evaluation():
    return Evaluation(values=(7, 2, 5))  # 3-element sort: short runs


class TestEvaluationSetup:
    def test_lazy_pieces_consistent(self, evaluation):
        assert evaluation.workload.name == "bubblesort3"
        assert evaluation.cycles > 100
        assert evaluation.model.netlist.stats()["gates"] > 500

    def test_fades_and_vfit_share_the_model(self, evaluation):
        assert evaluation.vfit.netlist is evaluation.model.netlist
        assert evaluation.fades.locmap.mapped.name == "mc8051"

    def test_experiment_matrix_covers_all_models(self, evaluation):
        matrix = evaluation.experiment_matrix(count=2)
        models = {spec.model for _name, spec in matrix}
        assert models == {FaultModel.BITFLIP, FaultModel.PULSE,
                          FaultModel.DELAY, FaultModel.INDETERMINATION}
        assert len(matrix) == 8

    def test_delay_magnitudes_scale_with_period(self, evaluation):
        lo, hi = evaluation.delay_magnitudes()
        assert 0 < lo < hi <= evaluation.period_ns

    def test_occupied_memory_is_the_array(self, evaluation):
        lo, hi = evaluation.occupied_memory
        assert (lo, hi) == (0x30, 0x33)

    def test_default_fault_count_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert default_fault_count(7) == 7
        monkeypatch.setenv("REPRO_FAULTS", "99")
        assert default_fault_count(7) == 99
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert default_fault_count(7) == 3000

    def test_projection_constants(self, evaluation):
        assert evaluation.project_vfit_seconds() == pytest.approx(7.3,
                                                                  rel=0.1)


class TestTableGenerators:
    def test_table1_executes_every_mechanism(self, evaluation):
        rows = generate_table1(evaluation)
        assert len(rows) == 9
        assert all(row.transactions > 0 for row in rows)
        text = render_table1(rows)
        assert "Table 1" in text
        assert "LSR" in text

    def test_table2_structure(self, evaluation):
        rows = generate_table2(evaluation, count=2)
        assert len(rows) == 8
        for row in rows:
            assert row.fades_mean_s > 0
            assert row.vfit_projected_s > row.fades_projected_s or \
                row.experiment.startswith("delay") or True
        assert "paper" in render_table2(rows)

    def test_table2_paper_reference_complete(self):
        assert set(PAPER_TABLE2) == {
            "bitflip/FFs", "bitflip/Memory", "pulse/Comb(<1)",
            "pulse/Comb(>=1)", "delay/Sequential", "delay/Comb",
            "indet/Sequential", "indet/Comb"}

    def test_table3_marks_vfit_delay_unsupported(self, evaluation):
        rows = generate_table3(evaluation, count=2)
        by_key = {(r.fault_model, r.location): r for r in rows}
        assert by_key[("delay", "FFs")].vfit_pct is None
        assert by_key[("pulse", "ALU")].vfit_pct is not None
        assert "-" in render_table3(rows)


class TestFigureGenerators:
    def test_fig10_has_time_bars(self, evaluation):
        figure = generate_fig10(evaluation, count=2)
        assert len(figure.bars) == 9  # 8 classes + oscillating variant
        assert all(bar.mean_time_s is not None for bar in figure.bars)
        assert "Figure 10" in figure.render()

    def test_fig12_band_structure(self, evaluation):
        figure = generate_fig12(evaluation, count=2)
        assert len(figure.bars) == 6
        for bar in figure.bars:
            assert bar.n == 2
            assert bar.failure + bar.latent + bar.silent == \
                pytest.approx(100.0)
