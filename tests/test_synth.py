"""Tests for optimisation, technology mapping and the location map."""

import pytest

from repro.errors import LocationError, SynthesisError
from repro.hdl import NetlistSim, Rtl
from repro.synth import (LUT_INPUTS, MappedSim, optimize, synthesize,
                         techmap)
from repro.synth.mapped import Lut

from helpers import (build_accumulator, build_alu4, build_counter,
                     random_netlist, random_stimulus)


def assert_equivalent(netlist, cycles=30, seed=1):
    """Source netlist and synthesised implementation behave identically."""
    result = synthesize(netlist)
    ref = NetlistSim(netlist)
    impl = MappedSim(result.mapped)
    ref.reset()
    impl.reset()
    names = list(netlist.inputs)
    widths = [len(netlist.inputs[name]) for name in names]
    for vector in random_stimulus(seed, names, widths, cycles):
        assert ref.step(vector) == impl.step(vector)


class TestOptimize:
    def test_dedup_merges_identical_gates(self):
        rtl = Rtl()
        a = rtl.input("a", 1)
        b = rtl.input("b", 1)
        x = rtl.and_(a, b)
        y = rtl.and_(a, b)
        rtl.output("o1", x)
        rtl.output("o2", y)
        result = optimize(rtl.build())
        assert result.stats["merged"] >= 1
        assert len(result.netlist.gates) == 1

    def test_dead_logic_removed(self):
        rtl = Rtl()
        a = rtl.input("a", 1)
        b = rtl.input("b", 1)
        rtl.xor_(a, b)          # dangling
        rtl.output("o", rtl.and_(a, b))
        result = optimize(rtl.build())
        assert result.stats["dead_gates"] == 1
        assert len(result.netlist.gates) == 1

    def test_dead_ff_removed_and_reported(self):
        rtl = Rtl()
        a = rtl.input("a", 1)
        reg = rtl.register("unused", 1)
        reg.drive(a)
        rtl.output("o", a)
        result = optimize(rtl.build())
        assert result.stats["dead_ffs"] == 1
        assert result.net_map[reg.q.nets[0]] is None

    def test_dead_ff_kept_when_requested(self):
        rtl = Rtl()
        a = rtl.input("a", 1)
        reg = rtl.register("unused", 1)
        reg.drive(a)
        rtl.output("o", a)
        result = optimize(rtl.build(), remove_dead_ffs=False)
        assert result.stats["dead_ffs"] == 0
        assert len(result.netlist.dffs) == 1

    def test_feedback_ff_chain_kept_alive(self):
        # r0 -> r1 -> output; both must survive.
        rtl = Rtl()
        r0 = rtl.register("r0", 1, init=1)
        r1 = rtl.register("r1", 1)
        r0.drive(rtl.not_(r0.q))
        r1.drive(r0.q)
        rtl.output("o", r1.q)
        result = optimize(rtl.build())
        assert len(result.netlist.dffs) == 2

    def test_optimized_netlist_still_simulates(self):
        netlist = build_alu4()
        result = optimize(netlist)
        ref = NetlistSim(netlist)
        opt = NetlistSim(result.netlist)
        for vector in random_stimulus(7, ["a", "b", "op"], [4, 4, 2], 40):
            assert ref.step(vector) == opt.step(vector)


class TestTechmap:
    @pytest.mark.parametrize("builder", [build_counter, build_alu4,
                                         build_accumulator])
    def test_known_designs_equivalent(self, builder):
        assert_equivalent(builder())

    @pytest.mark.parametrize("seed", range(12))
    def test_random_designs_equivalent(self, seed):
        assert_equivalent(random_netlist(seed), cycles=25, seed=seed)

    def test_lut_input_bound(self):
        result = synthesize(build_alu4())
        assert result.mapped.luts
        for lut in result.mapped.luts:
            assert 1 <= len(lut.ins) <= LUT_INPUTS

    def test_mapping_reduces_node_count(self):
        netlist = build_alu4()
        opt = optimize(netlist)
        mapped = techmap(opt.netlist)
        assert len(mapped.luts) < len(opt.netlist.gates)

    def test_padded_tt_ignores_unused_inputs(self):
        result = synthesize(build_counter())
        for lut in result.mapped.luts:
            padded = lut.padded_tt()
            mask = (1 << len(lut.ins)) - 1
            for index in range(16):
                assert (padded >> index) & 1 == (lut.tt >> (index & mask)) & 1

    def test_units_propagate_to_luts(self):
        result = synthesize(build_alu4())
        assert any(lut.unit == "ALU" for lut in result.mapped.luts)


class TestMappedCheck:
    """Structural invariants rejected by MappedNetlist.check()."""

    def _mapped(self):
        return synthesize(build_counter()).mapped

    def test_synthesized_design_passes(self):
        self._mapped().check()

    def test_truth_table_wider_than_arity_rejected(self):
        mapped = self._mapped()
        lut = mapped.luts[0]
        lut.tt = 1 << (1 << len(lut.ins))  # one bit past the arity
        with pytest.raises(SynthesisError, match="truth table"):
            mapped.check()

    def test_negative_truth_table_rejected(self):
        mapped = self._mapped()
        mapped.luts[0].tt = -1
        with pytest.raises(SynthesisError, match="truth table"):
            mapped.check()

    def test_maximal_truth_table_accepted(self):
        mapped = self._mapped()
        lut = mapped.luts[0]
        lut.tt = (1 << (1 << len(lut.ins))) - 1  # constant-one: legal
        mapped.check()

    def test_lut_redriving_ff_output_rejected(self):
        mapped = self._mapped()
        victim = mapped.ffs[0].q
        mapped.luts.append(Lut(out=victim, ins=(victim,), tt=0b01))
        with pytest.raises(SynthesisError, match="driven twice"):
            mapped.check()

    def test_duplicate_ff_driver_rejected(self):
        mapped = self._mapped()
        mapped.ffs.append(mapped.ffs[0])
        with pytest.raises(SynthesisError, match="driven twice"):
            mapped.check()

    def test_input_shadowing_ff_rejected(self):
        mapped = self._mapped()
        mapped.inputs["en"] = [mapped.ffs[0].q]
        with pytest.raises(SynthesisError, match="driven twice"):
            mapped.check()


class TestLocationMap:
    def test_register_bits_map_to_ffs(self):
        result = synthesize(build_counter())
        location = result.locmap.require_targetable("count")
        assert all(bit.kind == "ff" for bit in location.bits)
        assert len(location.bits) == 4

    def test_output_signal_maps_to_luts(self):
        result = synthesize(build_alu4())
        location = result.locmap.signal("result")
        assert all(bit.kind in ("lut", "ff", "input") for bit in location.bits)

    def test_memory_located(self):
        result = synthesize(build_accumulator())
        assert result.locmap.memory("scratch") == 0
        with pytest.raises(LocationError):
            result.locmap.memory("nonexistent")

    def test_removed_signal_reported(self):
        rtl = Rtl()
        a = rtl.input("a", 1)
        reg = rtl.register("vanishes", 2)
        reg.drive(rtl.cat(a, a))
        rtl.output("o", a)
        result = synthesize(rtl.build())
        location = result.locmap.signal("vanishes")
        assert not location.fully_targetable
        assert location.lost_bits == [0, 1]
        with pytest.raises(LocationError):
            result.locmap.require_targetable("vanishes")

    def test_unknown_signal_raises(self):
        result = synthesize(build_counter())
        with pytest.raises(LocationError):
            result.locmap.signal("no_such_signal")

    def test_unit_partitions(self):
        result = synthesize(build_alu4())
        assert "ALU" in result.locmap.units()
        assert result.locmap.luts_in_unit("ALU")

    def test_constant_bit_detected(self):
        rtl = Rtl()
        a = rtl.input("a", 1)
        word = rtl.cat(a, rtl.const(1, 1))
        rtl.signal("padded", word)
        rtl.output("o", word)
        result = synthesize(rtl.build())
        location = result.locmap.signal("padded")
        assert location.bits[1].kind == "const"
        assert location.bits[1].index == 1


class TestPlacementAnnotations:
    def test_site_of_resolves_registers(self):
        from repro.fpga import implement
        result = synthesize(build_counter())
        impl = implement(result.mapped)
        result.locmap.attach_placement(impl.placement)
        site = result.locmap.site_of("count", 2)
        bit = result.locmap.signal("count").bits[2]
        assert site == impl.placement.site_of_ff[bit.index]

    def test_site_of_requires_placement(self):
        result = synthesize(build_counter())
        with pytest.raises(LocationError):
            result.locmap.site_of("count", 0)

    def test_describe_signal(self):
        from repro.fpga import implement
        result = synthesize(build_counter())
        impl = implement(result.mapped)
        result.locmap.attach_placement(impl.placement)
        text = result.locmap.describe_signal("count")
        assert "ff #" in text
        assert "@CB(" in text

    def test_campaign_attaches_placement(self):
        from test_core_injector import make_campaign
        campaign = make_campaign(build_counter(), inputs={"en": 1})
        assert campaign.locmap.placement is campaign.impl.placement
