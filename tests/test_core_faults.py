"""Unit tests for fault descriptors and classification."""

import pytest

from repro.core import (Fault, FaultModel, Outcome, OutcomeCounts, Target,
                        TargetKind, band_label, classify)
from repro.hdl.trace import Trace


class TestFaultDescriptors:
    def test_transient_property(self):
        assert FaultModel.PULSE.transient
        assert FaultModel.DELAY.transient
        assert FaultModel.INDETERMINATION.transient
        assert not FaultModel.BITFLIP.transient
        assert not FaultModel.STUCK_AT.transient

    def test_whole_cycles(self):
        fault = Fault(FaultModel.PULSE, Target(TargetKind.LUT, 0), 10,
                      duration_cycles=7.6)
        assert fault.whole_cycles == 7

    @pytest.mark.parametrize("phase,duration,expected", [
        (0.0, 0.5, False),
        (0.6, 0.5, True),
        (0.5, 0.5, True),
        (0.0, 0.99, False),
        (0.99, 0.05, True),
        (0.2, 2.0, True),
    ])
    def test_straddles_edge(self, phase, duration, expected):
        fault = Fault(FaultModel.PULSE, Target(TargetKind.LUT, 0), 10,
                      duration_cycles=duration, phase=phase)
        assert fault.straddles_edge is expected

    def test_band_labels(self):
        assert band_label(0.3) == "<1"
        assert band_label(1.0) == "1-10"
        assert band_label(10.0) == "1-10"
        assert band_label(11.0) == "11-20"

    def test_describe_mentions_location(self):
        fault = Fault(FaultModel.BITFLIP,
                      Target(TargetKind.MEMORY_BIT, 0, addr=5, bit=3), 2)
        assert "memory[0]" in fault.describe()
        assert "(5,3)" in fault.describe()


def make_trace(samples, state):
    trace = Trace(("out",))
    trace.samples = [(s,) for s in samples]
    trace.final_state = state
    return trace


class TestClassification:
    def test_failure_when_outputs_differ(self):
        golden = make_trace([1, 2, 3], ("s",))
        faulty = make_trace([1, 9, 3], ("s",))
        assert classify(golden, faulty) is Outcome.FAILURE

    def test_latent_when_only_state_differs(self):
        golden = make_trace([1, 2, 3], ("s",))
        faulty = make_trace([1, 2, 3], ("t",))
        assert classify(golden, faulty) is Outcome.LATENT

    def test_silent_when_identical(self):
        golden = make_trace([1, 2, 3], ("s",))
        faulty = make_trace([1, 2, 3], ("s",))
        assert classify(golden, faulty) is Outcome.SILENT

    def test_unknown_output_is_failure(self):
        # An X on a system output never matches a known golden value.
        golden = make_trace([1, 2, 3], ("s",))
        faulty = make_trace([1, None, 3], ("s",))
        assert classify(golden, faulty) is Outcome.FAILURE

    def test_counts_and_percentages(self):
        counts = OutcomeCounts()
        for outcome in (Outcome.FAILURE, Outcome.FAILURE, Outcome.LATENT,
                        Outcome.SILENT):
            counts.add(outcome)
        assert counts.total == 4
        assert counts.percent(Outcome.FAILURE) == 50.0
        assert counts.as_dict()["latent"] == 25.0

    def test_empty_counts(self):
        counts = OutcomeCounts()
        assert counts.percent(Outcome.FAILURE) == 0.0

    def test_first_divergence(self):
        golden = make_trace([1, 2, 3], ("s",))
        faulty = make_trace([1, 9, 3], ("s",))
        assert faulty.first_divergence(golden) == 1
        assert golden.first_divergence(golden) is None
