"""Coverage for the smaller utility modules: traces, board, result tables."""

import pytest

from repro.core import ResultRow, render_table
from repro.fpga.board import Board, BoardParams
from repro.hdl import NetlistSim, Trace, capture_run

from helpers import build_counter


class TestTraceModule:
    def test_capture_run_records_every_cycle(self):
        sim = NetlistSim(build_counter(4))
        sim.reset()
        trace = capture_run(sim, 10, ["value", "tc"], inputs={"en": 1})
        assert len(trace.samples) == 10
        assert trace.cycles == 10
        assert trace.output_names == ("value", "tc")
        assert trace.samples[3][0] == 3

    def test_capture_run_decimated_sampling(self):
        sim = NetlistSim(build_counter(4))
        sim.reset()
        trace = capture_run(sim, 12, ["value"], inputs={"en": 1},
                            sample_every=4)
        assert len(trace.samples) == 3
        assert trace.cycles == 12

    def test_first_divergence_prefix_semantics(self):
        a = Trace(("o",))
        a.samples = [(1,), (2,)]
        b = Trace(("o",))
        b.samples = [(1,), (2,), (3,)]
        assert a.first_divergence(b) == 2
        assert b.first_divergence(a) == 2

    def test_same_state_compares_final_snapshots(self):
        a = Trace(("o",))
        b = Trace(("o",))
        a.final_state = ("x",)
        b.final_state = ("y",)
        assert not a.same_state(b)
        b.final_state = ("x",)
        assert a.same_state(b)


class TestBoardModule:
    def test_transaction_cost_formula(self):
        board = Board(BoardParams(latency_s=0.1,
                                  bandwidth_bytes_per_s=1000.0))
        seconds = board.transaction("write", "cb", 500)
        assert seconds == pytest.approx(0.1 + 0.5)
        assert board.total_seconds == pytest.approx(0.6)
        assert board.total_bytes == 500

    def test_snapshot_since(self):
        board = Board()
        marker = board.snapshot()
        board.transaction("read", "cb", 100)
        board.transaction("write", "cb", 100)
        count, seconds = board.since(marker)
        assert count == 2
        assert seconds == pytest.approx(board.total_seconds)

    def test_labels_and_clear(self):
        board = Board()
        board.set_label("alpha")
        board.transaction("read", "cb", 10)
        board.set_label("beta")
        board.transaction("read", "cb", 10)
        assert set(board.seconds_by_label()) == {"alpha", "beta"}
        board.clear()
        assert board.total_seconds == 0.0
        assert board.transactions == []

    def test_workload_seconds_uses_clock(self):
        board = Board(BoardParams(clock_hz=1e6))
        assert board.workload_seconds(2_000_000) == pytest.approx(2.0)


class TestResultTables:
    def _row(self):
        return ResultRow(fault_model="pulse", location="ALU",
                         duration_band="1-10", failure_pct=12.5,
                         latent_pct=25.0, silent_pct=62.5,
                         mean_emulation_s=0.3, n_faults=8)

    def test_row_render(self):
        text = self._row().render()
        assert "pulse" in text
        assert "12.5%" in text
        assert "n=8" in text

    def test_render_table_with_note(self):
        text = render_table("My table", [self._row()], note="footnote")
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert lines[1] == "=" * len("My table")
        assert lines[-1] == "footnote"

    def test_row_from_campaign(self):
        from repro.core import (FaultLoadSpec, FaultModel,
                                row_from_campaign)
        from test_core_injector import make_campaign
        campaign = make_campaign(build_counter(4), inputs={"en": 1})
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=4,
                             workload_cycles=20)
        result = campaign.run(spec, seed=1)
        row = row_from_campaign(result, "bitflip", "FFs", "1-10")
        assert row.n_faults == 4
        assert row.failure_pct + row.latent_pct + row.silent_pct == \
            pytest.approx(100.0)
