"""End-to-end integration: the 8051 through the full implementation flow.

The reproduction's central equivalence claim: the VHDL-level model (run by
the netlist simulator, as VFIT does) and the placed-and-routed FPGA device
(executing from configuration memory, as FADES does) behave identically in
the absence of faults.
"""

import pytest

from repro.fpga import Device, implement
from repro.hdl import NetlistSim
from repro.mc8051 import Iss, build_mc8051, quick_bubblesort
from repro.synth import synthesize


@pytest.fixture(scope="module")
def flow():
    workload = quick_bubblesort()
    iss = Iss(workload.rom)
    iss.run_until_idle()
    model = build_mc8051(workload.rom)
    result = synthesize(model.netlist)
    impl = implement(result.mapped)
    return workload, iss, model, result, impl


def test_rtl_and_device_traces_identical(flow):
    workload, iss, model, _result, impl = flow
    device = Device(impl)
    device.reset_system()
    ref = NetlistSim(model.netlist)
    ref.reset()
    for _ in range(iss.cycles + 2):
        assert ref.step() == device.step()


def test_device_sorts_correctly(flow):
    workload, iss, _model, _result, impl = flow
    device = Device(impl)
    device.reset_system()
    device.run(iss.cycles + 2)
    iram_index = next(i for i, b in enumerate(device.mapped.brams)
                      if b.name == "iram")
    n = len(workload.expected_p1)
    contents = device.mem_words(iram_index)[0x30:0x30 + n]
    assert list(contents) == workload.expected_p1
    assert device.peek("p1") == workload.expected_p1[-1]


def test_unit_partition_covers_paper_locations(flow):
    # The paper confines faults to registers, RAM, the ALU, the memory
    # control and the FSM module (section 6.1) — all must exist.
    _workload, _iss, _model, result, _impl = flow
    units = result.locmap.units()
    for unit in ("REG", "ALU", "MEM", "FSM"):
        assert unit in units, f"unit {unit} missing from implementation"
    assert result.locmap.memory("iram") is not None
    assert result.locmap.luts_in_unit("ALU")
    assert result.locmap.luts_in_unit("FSM")
    assert result.locmap.ffs_in_unit("REG")


def test_gsr_reset_reproduces_golden_run(flow):
    workload, iss, _model, _result, impl = flow
    device = Device(impl)
    device.reset_system()
    first = [device.step()["p1_out"] for _ in range(200)]
    device.reset_system()
    second = [device.step()["p1_out"] for _ in range(200)]
    assert first == second


def test_design_fits_paper_class_device(flow):
    _workload, _iss, _model, result, impl = flow
    stats = result.mapped.stats()
    assert stats["luts"] <= impl.arch.n_cbs
    assert stats["ffs"] <= impl.arch.n_cbs
    util = impl.placement.utilisation()
    assert util["cbs"] < 0.2  # paper: 8051 uses a small fraction of XCV1000
