"""Tests for the ISS semantics and ISS-vs-RTL equivalence."""

import random

import pytest

from repro.hdl import NetlistSim
from repro.mc8051 import (Iss, assemble, build_mc8051, array_sum,
                          bubblesort, fibonacci, multiply,
                          quick_bubblesort)
from repro.mc8051.isa import OPCODES

TERMINAL = "done: SJMP done\n"


def run_iss(source_or_bytes, max_cycles=100_000):
    rom = (source_or_bytes if isinstance(source_or_bytes, bytes)
           else assemble(source_or_bytes))
    iss = Iss(rom)
    iss.run_until_idle(max_cycles)
    return iss


def run_rtl(rom: bytes, cycles: int):
    model = build_mc8051(rom)
    sim = NetlistSim(model.netlist)
    sim.reset()
    p1_changes = []
    last = 0
    for _ in range(cycles):
        out = sim.step()
        if out["p1_out"] != last:
            last = out["p1_out"]
            p1_changes.append(last)
    return sim, p1_changes


def assert_equivalent(source: str):
    """ISS and RTL agree on IRAM, ACC and the P1 change sequence.

    One extra settle cycle is run so that ``peek`` (which reflects the
    evaluation phase, one capture behind the stored state) observes the
    post-workload values; the program is in its terminal self-loop by
    then, so nothing changes architecturally.
    """
    rom = assemble(source)
    iss = run_iss(rom)
    sim, p1_changes = run_rtl(rom, iss.cycles + 1)
    assert tuple(iss.iram) == sim.mem_state("iram")
    assert sim.peek("acc") == iss.acc
    assert sim.peek("p1") == iss.p1
    iss_changes = []
    last = 0
    for _cycle, value in iss.p1_writes:
        if value != last:
            last = value
            iss_changes.append(value)
    assert p1_changes == iss_changes


class TestIssSemantics:
    def test_add_sets_carry_and_ov(self):
        iss = run_iss("MOV A,#0x90\nADD A,#0x90\n" + TERMINAL)
        assert iss.acc == 0x20
        assert iss.cy == 1
        assert iss.ov == 1  # -112 + -112 overflows signed

    def test_add_aux_carry(self):
        iss = run_iss("MOV A,#0x0F\nADD A,#0x01\n" + TERMINAL)
        assert iss.acc == 0x10
        assert iss.ac == 1
        assert iss.cy == 0

    def test_subb_borrow_chain(self):
        iss = run_iss("CLR C\nMOV A,#5\nSUBB A,#7\n" + TERMINAL)
        assert iss.acc == 0xFE
        assert iss.cy == 1
        iss = run_iss("SETB C\nMOV A,#5\nSUBB A,#2\n" + TERMINAL)
        assert iss.acc == 2  # 5 - 2 - 1

    def test_cjne_sets_carry_on_less(self):
        iss = run_iss("MOV A,#3\nCJNE A,#9,skip\nskip: NOP\n" + TERMINAL)
        assert iss.cy == 1
        iss = run_iss("MOV A,#9\nCJNE A,#3,skip\nskip: NOP\n" + TERMINAL)
        assert iss.cy == 0

    def test_djnz_loops_exact_count(self):
        iss = run_iss("MOV R2,#5\nMOV A,#0\nloop: INC A\nDJNZ R2,loop\n"
                      + TERMINAL)
        assert iss.acc == 5

    def test_xch_swaps(self):
        iss = run_iss("MOV A,#1\nMOV R3,#9\nXCH A,R3\n" + TERMINAL)
        assert iss.acc == 9
        assert iss.iram[3] == 1

    def test_indirect_addressing(self):
        iss = run_iss("MOV R0,#0x40\nMOV @R0,#0x5A\nMOV A,@R0\n" + TERMINAL)
        assert iss.acc == 0x5A
        assert iss.iram[0x40] == 0x5A

    def test_bank_switching_via_psw(self):
        iss = run_iss("MOV R0,#0x11\nMOV 0xD0,#0x08\nMOV R0,#0x22\n"
                      "MOV 0xD0,#0x00\n" + TERMINAL)
        assert iss.iram[0] == 0x11   # bank 0 R0
        assert iss.iram[8] == 0x22   # bank 1 R0

    def test_parity_in_psw(self):
        iss = run_iss("MOV A,#0x03\n" + TERMINAL)
        assert iss.psw & 1 == 0      # two ones -> even parity bit 0
        iss = run_iss("MOV A,#0x07\n" + TERMINAL)
        assert iss.psw & 1 == 1

    def test_sfr_readback(self):
        iss = run_iss("MOV 0x81,#0x55\nMOV A,0x81\n" + TERMINAL)
        assert iss.acc == 0x55
        assert iss.sp == 0x55

    def test_rotate_ops(self):
        iss = run_iss("MOV A,#0x81\nRL A\n" + TERMINAL)
        assert iss.acc == 0x03
        iss = run_iss("MOV A,#0x81\nRR A\n" + TERMINAL)
        assert iss.acc == 0xC0

    def test_cycles_match_spec(self):
        source = "MOV A,#1\nADD A,#2\nMOV 0x30,A\n" + TERMINAL
        iss = Iss(assemble(source))
        counts = [iss.step_instruction() for _ in range(3)]
        assert counts[0] == OPCODES[0x74].cycles()
        assert counts[1] == OPCODES[0x24].cycles()
        assert counts[2] == OPCODES[0xF5].cycles()


class TestRtlEquivalence:
    @pytest.mark.parametrize("source", [
        "MOV A,#0x42\nMOV 0x30,A\n" + TERMINAL,
        "MOV R0,#0x40\nMOV @R0,#7\nINC @R0\nMOV A,@R0\n" + TERMINAL,
        "MOV A,#0x90\nADD A,#0x90\nMOV 0x31,A\n" + TERMINAL,
        "CLR C\nMOV A,#5\nSUBB A,#7\nMOV R6,A\n" + TERMINAL,
        "MOV R2,#5\nMOV A,#0\nloop: INC A\nDJNZ R2,loop\n" + TERMINAL,
        "MOV A,#1\nMOV R3,#9\nXCH A,R3\n" + TERMINAL,
        "MOV A,#0x81\nRL A\nRR A\nRR A\n" + TERMINAL,
        "MOV 0xD0,#0x08\nMOV R0,#0x22\nMOV 0xD0,#0\nMOV A,R0\n" + TERMINAL,
        "MOV 0x90,#0xAA\nMOV A,0x90\nCPL A\nMOV 0xA0,A\n" + TERMINAL,
    ])
    def test_directed_programs(self, source):
        assert_equivalent(source)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_straightline_programs(self, seed):
        rng = random.Random(seed)
        lines = ["MOV R0,#0x30", "MOV R1,#0x40"]
        safe_ops = [
            lambda: f"MOV A,#{rng.randrange(256)}",
            lambda: f"MOV R{rng.randrange(8)},#{rng.randrange(256)}",
            lambda: f"MOV A,R{rng.randrange(8)}",
            lambda: f"MOV R{rng.randrange(8)},A",
            lambda: f"ADD A,#{rng.randrange(256)}",
            lambda: f"ADD A,R{rng.randrange(8)}",
            lambda: f"SUBB A,#{rng.randrange(256)}",
            lambda: f"ANL A,#{rng.randrange(256)}",
            lambda: f"ORL A,R{rng.randrange(8)}",
            lambda: f"XRL A,#{rng.randrange(256)}",
            lambda: "INC A",
            lambda: "DEC A",
            lambda: f"INC R{rng.randrange(8)}",
            lambda: "CLR C",
            lambda: "SETB C",
            lambda: "CPL A",
            lambda: "RL A",
            lambda: "RR A",
            lambda: f"MOV 0x{rng.randrange(0x30, 0x60):02x},A",
            lambda: f"MOV A,0x{rng.randrange(0x30, 0x60):02x}",
            lambda: "MOV A,@R0",
            lambda: "MOV @R0,A",
            lambda: f"XCH A,R{rng.randrange(8)}",
            lambda: "MOV 0x90,A",
        ]
        for _ in range(40):
            lines.append(rng.choice(safe_ops)())
        source = "\n".join(lines) + "\n" + TERMINAL
        assert_equivalent(source)


class TestWorkloads:
    @pytest.mark.parametrize("workload", [
        quick_bubblesort(),
        bubblesort([5, 4, 3, 2, 1]),
        bubblesort([1, 2, 3]),
        array_sum([10, 20, 30, 40]),
        fibonacci(8),
        multiply(13, 11),
        multiply(255, 255),
        multiply(0, 77),
    ], ids=lambda wl: wl.name)
    def test_iss_produces_expected_outputs(self, workload):
        iss = Iss(workload.rom)
        iss.run_until_idle()
        assert [value for _c, value in iss.p1_writes] == workload.expected_p1
        assert workload.terminal_loop

    def test_bubblesort_sorts_in_iram(self):
        workload = quick_bubblesort()
        iss = Iss(workload.rom)
        iss.run_until_idle()
        n = len(workload.expected_p1)
        assert iss.iram[0x30:0x30 + n] == workload.expected_p1

    def test_rtl_runs_bubblesort(self):
        workload = quick_bubblesort()
        iss = Iss(workload.rom)
        iss.run_until_idle()
        sim, p1_changes = run_rtl(workload.rom, iss.cycles)
        assert p1_changes[-len(workload.expected_p1):] == \
            workload.expected_p1 or p1_changes == list(workload.expected_p1)

    def test_rtl_runs_multiply(self):
        assert_equivalent("""
        MOV R1,#13
        MOV R2,#0
        MOV R3,#11
        MOV R4,#0
        MOV R5,#0
        MOV R6,#8
loop:   MOV A,R3
        ANL A,#1
        JZ skip
        MOV A,R4
        ADD A,R1
        MOV R4,A
        MOV A,R5
        JNC nocarry
        INC A
nocarry: ADD A,R2
        MOV R5,A
skip:   MOV A,R3
        RR A
        MOV R3,A
        MOV A,R1
        ADD A,R1
        MOV R1,A
        MOV A,R2
        JNC nc2
        ADD A,R2
        INC A
        SJMP sh2
nc2:    ADD A,R2
sh2:    MOV R2,A
        DJNZ R6,loop
        MOV A,R4
        MOV 0x90,A
""" + TERMINAL)
