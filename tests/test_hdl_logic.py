"""Unit tests for the four-valued logic primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.hdl import logic

VALUES = (logic.ZERO, logic.ONE, logic.X, logic.Z)
binary = st.integers(min_value=0, max_value=1)
fourval = st.sampled_from(VALUES)


class TestCharConversion:
    def test_roundtrip(self):
        for value in VALUES:
            assert logic.from_char(logic.to_char(value)) == value

    def test_lowercase_accepted(self):
        assert logic.from_char("x") == logic.X
        assert logic.from_char("z") == logic.Z

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            logic.from_char("q")


class TestGateSemantics:
    @given(binary, binary)
    def test_binary_inputs_match_python(self, a, b):
        assert logic.and4(a, b) == (a & b)
        assert logic.or4(a, b) == (a | b)
        assert logic.xor4(a, b) == (a ^ b)
        assert logic.not4(a) == 1 - a

    def test_dominant_values_override_x(self):
        assert logic.and4(logic.ZERO, logic.X) == logic.ZERO
        assert logic.and4(logic.X, logic.ZERO) == logic.ZERO
        assert logic.or4(logic.ONE, logic.X) == logic.ONE
        assert logic.or4(logic.X, logic.ONE) == logic.ONE

    def test_x_poisons_otherwise(self):
        assert logic.and4(logic.ONE, logic.X) == logic.X
        assert logic.or4(logic.ZERO, logic.X) == logic.X
        assert logic.xor4(logic.ONE, logic.X) == logic.X
        assert logic.not4(logic.X) == logic.X
        assert logic.not4(logic.Z) == logic.X

    @given(fourval, fourval)
    def test_commutativity(self, a, b):
        assert logic.and4(a, b) == logic.and4(b, a)
        assert logic.or4(a, b) == logic.or4(b, a)
        assert logic.xor4(a, b) == logic.xor4(b, a)

    def test_mux_known_select(self):
        assert logic.mux4(logic.ZERO, 1, 0) == 1
        assert logic.mux4(logic.ONE, 1, 0) == 0

    def test_mux_unknown_select_optimistic(self):
        # Agreeing data inputs survive an unknown select.
        assert logic.mux4(logic.X, 1, 1) == 1
        assert logic.mux4(logic.X, 0, 1) == logic.X

    def test_resolution(self):
        assert logic.resolve(logic.Z, logic.ONE) == logic.ONE
        assert logic.resolve(logic.ZERO, logic.Z) == logic.ZERO
        assert logic.resolve(logic.ONE, logic.ONE) == logic.ONE
        assert logic.resolve(logic.ONE, logic.ZERO) == logic.X


class TestWordHelpers:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_int_word_roundtrip(self, value):
        assert logic.word_to_int(logic.int_to_word(value, 16)) == value

    def test_word_to_int_rejects_x(self):
        with pytest.raises(ValueError):
            logic.word_to_int([1, logic.X, 0])

    def test_word_to_int_or_none(self):
        assert logic.word_to_int_or_none([1, 0, 1]) == 5
        assert logic.word_to_int_or_none([1, logic.X]) is None

    def test_negative_values_wrap(self):
        assert logic.int_to_word(-1, 4) == [1, 1, 1, 1]

    def test_word_to_str_msb_first(self):
        assert logic.word_to_str([1, 0, logic.X]) == "X01"

    @given(st.integers(min_value=0, max_value=255))
    def test_parity_counts_ones(self, value):
        assert logic.parity(value) == bin(value).count("1") % 2

    def test_any_unknown(self):
        assert logic.any_unknown([0, 1, logic.X])
        assert logic.any_unknown([logic.Z])
        assert not logic.any_unknown([0, 1, 1])

    def test_is_known(self):
        assert logic.is_known(0) and logic.is_known(1)
        assert not logic.is_known(logic.X)
        assert not logic.is_known(logic.Z)
