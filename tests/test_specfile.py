"""Tests for declarative campaign spec files."""

import json

import pytest

from repro.analysis import load_spec, run_spec, run_spec_file
from repro.errors import WorkloadError


def write_spec(tmp_path, spec):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    return str(path)


BASIC = {
    "workload": {"type": "bubblesort", "values": [7, 2, 5]},
    "seed": 3,
    "experiments": [
        {"name": "flips", "model": "bitflip", "pool": "ffs", "count": 3},
    ],
}


class TestLoading:
    def test_valid_spec_loads(self, tmp_path):
        spec = load_spec(write_spec(tmp_path, BASIC))
        assert spec["experiments"][0]["model"] == "bitflip"

    def test_missing_experiments_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_spec(write_spec(tmp_path, {"workload": {}}))

    def test_empty_experiments_rejected(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_spec(write_spec(tmp_path, {"experiments": []}))

    def test_unknown_model_rejected(self, tmp_path):
        bad = dict(BASIC, experiments=[{"model": "gremlin"}])
        with pytest.raises(ValueError):
            load_spec(write_spec(tmp_path, bad))

    def test_unknown_workload_rejected(self, tmp_path):
        bad = dict(BASIC, workload={"type": "quicksort"})
        with pytest.raises(WorkloadError):
            load_spec(write_spec(tmp_path, bad))


class TestRunning:
    def test_report_structure(self, tmp_path):
        report = run_spec_file(write_spec(tmp_path, BASIC))
        assert report["workload"] == "bubblesort3"
        assert len(report["experiments"]) == 1
        record = report["experiments"][0]
        assert record["failure"] + record["latent"] + record["silent"] == 3
        assert 0 <= record["failure_pct"] <= 100
        low, high = record["failure_ci_pct"]
        assert 0 <= low <= record["failure_pct"] <= high <= 100
        assert record["mean_emulation_s"] > 0

    def test_output_file_written(self, tmp_path):
        out = tmp_path / "report.json"
        run_spec_file(write_spec(tmp_path, BASIC), str(out))
        loaded = json.loads(out.read_text())
        assert loaded["experiments"][0]["name"] == "flips"

    def test_unsupported_experiment_recorded_not_fatal(self, tmp_path):
        spec = dict(BASIC, experiments=[
            {"name": "bad", "tool": "vfit", "model": "delay",
             "pool": "nets:seq", "count": 2},
            {"name": "good", "model": "bitflip", "pool": "ffs", "count": 2},
        ])
        report = run_spec(load_spec(write_spec(tmp_path, spec)))
        assert "error" in report["experiments"][0]
        assert "failure" in report["experiments"][1]

    def test_alternate_workload(self, tmp_path):
        spec = {
            "workload": {"type": "fibonacci", "terms": 6},
            "experiments": [
                {"model": "bitflip", "pool": "ffs", "count": 2}],
        }
        report = run_spec(load_spec(write_spec(tmp_path, spec)))
        assert report["workload"] == "fibonacci6"

    def test_cli_run_spec(self, tmp_path, capsys):
        from repro.cli import main
        path = write_spec(tmp_path, BASIC)
        out = tmp_path / "report.json"
        assert main(["run-spec", path, "-o", str(out)]) == 0
        assert out.exists()
        assert "experiments" in capsys.readouterr().out

    def test_cli_run_spec_missing_file(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["run-spec", str(tmp_path / "nope.json")]) == 1
        assert "error" in capsys.readouterr().err
