"""Tests for placement, routing, timing and device-vs-model equivalence."""

import pytest

from repro.errors import PlacementError
from repro.fpga import Device, demo_device, implement
from repro.fpga.placement import place
from repro.fpga.routing import route
from repro.hdl import NetlistSim
from repro.synth import synthesize

from helpers import (build_accumulator, build_alu4, build_counter,
                     random_netlist, random_stimulus)


def implement_design(netlist, arch=None):
    result = synthesize(netlist)
    return result, implement(result.mapped, arch=arch)


class TestPlacement:
    def test_every_resource_placed_once(self):
        result, impl = implement_design(build_alu4())
        placement = impl.placement
        assert set(placement.site_of_lut) == set(
            range(len(result.mapped.luts)))
        assert set(placement.site_of_ff) == set(
            range(len(result.mapped.ffs)))
        # No site hosts two LUTs or two FFs.
        assert len(set(placement.site_of_lut.values())) == len(
            placement.site_of_lut)

    def test_ff_packed_with_driving_lut_when_possible(self):
        result, impl = implement_design(build_counter())
        packed = [cb for cb in impl.placement.sites.values() if cb.packed]
        assert packed, "counter FFs should pack with their next-state LUTs"
        for cb in packed:
            lut = result.mapped.luts[cb.lut]
            ff = result.mapped.ffs[cb.ff]
            assert ff.d == lut.out

    def test_design_too_big_rejected(self):
        result = synthesize(build_alu4())
        tiny = demo_device(rows=2, cols=2)
        with pytest.raises(PlacementError):
            place(result.mapped, tiny)

    def test_memory_depth_checked(self):
        from repro.fpga.architecture import Architecture, MemBlockGeometry
        result = synthesize(build_accumulator())
        shallow = Architecture("shallow", 16, 16, 4,
                               MemBlockGeometry(depth=8, width=8))
        with pytest.raises(PlacementError):
            place(result.mapped, shallow)

    def test_utilisation_fractions(self):
        _result, impl = implement_design(build_counter())
        util = impl.placement.utilisation()
        assert 0.0 < util["cbs"] <= 1.0


class TestRouting:
    def test_pass_transistors_unique(self):
        _result, impl = implement_design(build_alu4())
        seen = set()
        for net_route in impl.routing.routes.values():
            for bit in net_route.pass_transistors():
                assert bit not in seen, "pass transistor double-booked"
                seen.add(bit)

    def test_trunk_sharing(self):
        # A multi-sink net claims at most one pass transistor per PM.
        _result, impl = implement_design(build_alu4())
        for net_route in impl.routing.routes.values():
            per_pm = {}
            for bit in net_route.pass_transistors():
                per_pm.setdefault((bit[0], bit[1]), []).append(bit[2])
            for indices in per_pm.values():
                assert len(indices) == len(set(indices))

    def test_route_stats_consistent(self):
        _result, impl = implement_design(build_counter())
        stats = impl.routing.stats()
        assert stats["nets"] == len(impl.routing.routes)
        assert stats["pass_transistors"] > 0

    def test_bitstream_contains_routing_bits(self):
        _result, impl = implement_design(build_counter())
        total = sum(
            impl.golden_bitstream.pm_used_count(row, col)
            for (row, col) in impl.routing.pm_used)
        assert total == impl.routing.stats()["pass_transistors"]


class TestTiming:
    def test_positive_slack_at_nominal_period(self):
        _result, impl = implement_design(build_alu4())
        assert impl.timing.violating_ffs() == set()
        assert impl.timing.period >= impl.timing.critical_path()

    def test_injected_delay_creates_violation(self):
        result, impl = implement_design(build_counter())
        # Delay a routed net that feeds sequential logic: the counter FFs'
        # Q outputs drive the increment LUTs through the fabric.
        target = result.mapped.ffs[0].q
        assert impl.routing.is_routed(target)
        impl.timing.inject_delay(target, impl.timing.period + 5.0)
        assert impl.timing.violating_ffs()
        impl.timing.remove_delay(target)
        assert impl.timing.violating_ffs() == set()

    def test_fanout_load_increases_delay(self):
        result, impl = implement_design(build_alu4())
        routed = next(iter(impl.routing.routes))
        before = impl.timing.net_delay(routed)
        impl.routing.add_extra_load(routed)
        impl.timing.refresh_routing()
        after = impl.timing.net_delay(routed)
        assert after == pytest.approx(
            before + impl.timing.params.t_load)

    def test_detour_increases_delay(self):
        _result, impl = implement_design(build_alu4())
        routed = next(iter(impl.routing.routes))
        before = impl.timing.net_delay(routed)
        impl.routing.set_detour(routed, 10)
        impl.timing.refresh_routing()
        assert impl.timing.net_delay(routed) == pytest.approx(
            before + 10 * impl.timing.params.t_hop)


class TestDeviceEquivalence:
    @pytest.mark.parametrize("builder", [build_counter, build_alu4,
                                         build_accumulator])
    def test_known_designs(self, builder):
        netlist = builder()
        _result, impl = implement_design(netlist)
        device = Device(impl)
        ref = NetlistSim(netlist)
        ref.reset()
        device.reset_system()
        names = list(netlist.inputs)
        widths = [len(netlist.inputs[n]) for n in names]
        for vector in random_stimulus(3, names, widths, 40):
            assert ref.step(vector) == device.step(vector)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_designs(self, seed):
        netlist = random_netlist(seed, n_gates=25)
        _result, impl = implement_design(netlist)
        device = Device(impl)
        ref = NetlistSim(netlist)
        ref.reset()
        device.reset_system()
        names = list(netlist.inputs)
        widths = [len(netlist.inputs[n]) for n in names]
        for vector in random_stimulus(seed, names, widths, 30):
            assert ref.step(vector) == device.step(vector)

    def test_reset_system_restores_memory(self):
        netlist = build_accumulator()
        _result, impl = implement_design(netlist)
        device = Device(impl)
        device.reset_system()
        device.run(10, {"addr": 3, "load": 1})
        state_after_run = device.state_snapshot()
        device.reset_system()
        assert device.state_snapshot() != state_after_run
        ref = NetlistSim(netlist)
        ref.reset()
        assert device.step({"addr": 0, "load": 0}) == ref.step(
            {"addr": 0, "load": 0})
