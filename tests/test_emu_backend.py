"""Tests for repro.emu: compiler, lane engine, and backend equivalence.

The load-bearing property is *lane-0 equivalence*: for any seeded
faultload, the compiled backend must produce the same golden trace and
the same Failure/Latent/Silent classification as the reference device
simulator.  The property tests here sweep every supported fault model
over the tier-1 designs (counter, FIR, UART) and an mc8051 smoke
program.
"""

import random

import pytest

from repro.core import (FaultLoadSpec, FaultModel, build_fades,
                        generate_faultload)
from repro.core.faults import Fault, Target, TargetKind
from repro.designs import counter, fir_filter, uart_tx
from repro.emu import compile_design, lane_width, supports_fault
from repro.emu.compiler import bool_expr, tt_function
from repro.errors import SimulationError
from repro.hdl import BACKENDS, NetlistSim, check_backend, make_sim
from repro.hdl.simulator import FourValuedSim
from repro.obs.metrics import REGISTRY

from helpers import (build_accumulator, build_alu4, build_counter,
                     random_netlist)
from test_core_injector import make_campaign


# ---------------------------------------------------------------------------
# Compiler unit level
# ---------------------------------------------------------------------------
class TestBoolExpr:
    def test_exhaustive_three_vars(self):
        """Every 3-input truth table evaluates correctly on every input."""
        names = ("a", "b", "c")
        for tt in range(256):
            expr = bool_expr(tt, names)
            fn = eval(f"lambda a, b, c, M: {expr}")  # noqa: S307
            for index in range(8):
                a, b, c = index & 1, (index >> 1) & 1, (index >> 2) & 1
                expected = (tt >> index) & 1
                assert fn(a, b, c, 1) == expected, (tt, index, expr)

    def test_lane_masked_constants(self):
        # The all-ones table must produce the full lane mask, per lane.
        fn = tt_function(0xFFFF)
        assert fn(0, 0, 0, 0, 0b1011) == 0b1011

    def test_tt_function_cached(self):
        assert tt_function(0x8000) is tt_function(0x8000)


class TestCompileCaching:
    def test_design_compiled_once(self):
        campaign = make_campaign(build_counter(4), inputs={"en": 1})
        first = compile_design(campaign.impl.mapped)
        second = compile_design(campaign.impl.mapped)
        assert first is second
        assert first.step is not None and first.step_hooked is not None


# ---------------------------------------------------------------------------
# CompiledSim: drop-in simulator equivalence
# ---------------------------------------------------------------------------
def _assert_sim_equivalent(netlist, steps=40, seed=1):
    reference = NetlistSim(netlist)
    compiled = make_sim(netlist, backend="compiled")
    reference.reset()
    compiled.reset()
    rng = random.Random(seed)
    names = list(netlist.inputs)
    widths = [len(netlist.inputs[name]) for name in names]
    for cycle in range(steps):
        stimulus = {name: rng.randrange(1 << width)
                    for name, width in zip(names, widths)}
        assert reference.step(stimulus) == compiled.step(stimulus), cycle
    assert reference.state_snapshot() == compiled.state_snapshot()


class TestCompiledSim:
    @pytest.mark.parametrize("build", [
        build_counter, build_alu4, build_accumulator,
        counter, fir_filter, uart_tx,
    ])
    def test_matches_reference(self, build):
        _assert_sim_equivalent(build())

    @pytest.mark.parametrize("seed", range(8))
    def test_random_netlists(self, seed):
        _assert_sim_equivalent(random_netlist(seed), steps=30, seed=seed)

    def test_reset_restarts_run(self):
        netlist = counter()
        sim = make_sim(netlist, backend="compiled")
        first = [sim.step({"en": 1} if cycle == 0 else None)
                 for cycle in range(12)]
        sim.reset()
        second = [sim.step({"en": 1} if cycle == 0 else None)
                  for cycle in range(12)]
        assert first == second


# ---------------------------------------------------------------------------
# The seam itself
# ---------------------------------------------------------------------------
class TestBackendSeam:
    def test_backends_listed(self):
        assert BACKENDS == ("reference", "compiled")

    def test_make_sim_types(self):
        netlist = build_counter(4)
        assert type(make_sim(netlist)) is NetlistSim
        assert isinstance(make_sim(netlist, backend="compiled"), NetlistSim)
        assert type(make_sim(netlist, backend="compiled")) is not NetlistSim
        assert not isinstance(make_sim(netlist), FourValuedSim)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            check_backend("verilator")
        with pytest.raises(SimulationError):
            make_campaign(build_counter(4), backend="verilator")

    def test_golden_key_includes_backend(self):
        reference = make_campaign(build_counter(4), inputs={"en": 1})
        compiled = make_campaign(build_counter(4), inputs={"en": 1},
                                 backend="compiled")
        assert reference._golden_key(20) != compiled._golden_key(20)
        assert reference._golden_key(20)[:2] == compiled._golden_key(20)[:2]

    def test_injections_metric_carries_backend_label(self):
        campaign = make_campaign(build_counter(4), inputs={"en": 1},
                                 backend="compiled")
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=3,
                             workload_cycles=15)
        campaign.run(spec, seed=4)
        metric = REGISTRY.get("injections_total")
        assert any(dict(labels).get("sim_backend") == "compiled"
                   for labels in metric.series())

    def test_lane_width_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMU_LANES", "8")
        assert lane_width() == 8
        monkeypatch.setenv("REPRO_EMU_LANES", "1")
        assert lane_width() == 2  # floor: golden lane + one experiment

    def test_supports_fault(self):
        assert supports_fault(
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0),
                  start_cycle=1))
        assert not supports_fault(
            Fault(FaultModel.STUCK_AT, Target(TargetKind.FF, 0),
                  start_cycle=1, value=0))
        assert not supports_fault(
            Fault(FaultModel.CONFIG_SEU, Target(TargetKind.CONFIG_BIT, 0),
                  start_cycle=1))


# ---------------------------------------------------------------------------
# Campaign-level lane-0 equivalence (the tentpole property)
# ---------------------------------------------------------------------------
def _assert_campaigns_equivalent(reference, compiled, faults, cycles):
    golden_ref = reference.golden_run(cycles)
    golden_emu = compiled.golden_run(cycles)
    assert golden_ref.samples == golden_emu.samples
    assert golden_ref.final_state == golden_emu.final_state
    a = reference.run_faults(faults, cycles).experiments
    b = compiled.run_faults(faults, cycles).experiments
    assert len(a) == len(b) == len(faults)
    for ref_exp, emu_exp in zip(a, b):
        assert ref_exp.outcome == emu_exp.outcome, ref_exp.fault
        assert ref_exp.first_divergence == emu_exp.first_divergence, \
            ref_exp.fault
        assert ref_exp.cost.transactions == emu_exp.cost.transactions, \
            ref_exp.fault
        assert ref_exp.cost.transfer_s == pytest.approx(
            emu_exp.cost.transfer_s), ref_exp.fault


DESIGNS = {
    "counter": (counter, {"en": 1}),
    "fir": (fir_filter, {"sample": 55, "valid": 1}),
    "uart": (uart_tx, {"data": 0xA5, "send": 1}),
}

MODEL_SPECS = [
    ("bitflip-ffs", dict(model=FaultModel.BITFLIP, pool="ffs")),
    ("pulse-luts", dict(model=FaultModel.PULSE, pool="luts")),
    ("pulse-sub", dict(model=FaultModel.PULSE, pool="luts",
                       duration_range=(0.2, 0.9))),
    ("delay-seq", dict(model=FaultModel.DELAY, pool="nets:seq",
                       magnitude_range_ns=(1.0, 8.0))),
    ("indet-ffs", dict(model=FaultModel.INDETERMINATION, pool="ffs",
                       oscillate=True)),
    ("indet-luts", dict(model=FaultModel.INDETERMINATION, pool="luts")),
]


class TestCampaignEquivalence:
    @pytest.mark.parametrize("design", sorted(DESIGNS))
    @pytest.mark.parametrize("label,kwargs",
                             MODEL_SPECS, ids=[m[0] for m in MODEL_SPECS])
    def test_tier1_designs(self, design, label, kwargs):
        build, inputs = DESIGNS[design]
        reference = make_campaign(build(), inputs=inputs, seed=3)
        compiled = make_campaign(build(), inputs=inputs, seed=3,
                                 backend="compiled")
        spec = FaultLoadSpec(count=8, workload_cycles=40, **kwargs)
        faults = generate_faultload(
            spec, reference.locmap, seed=11,
            routed_nets=reference.impl.routing.is_routed)
        _assert_campaigns_equivalent(reference, compiled, faults, 40)

    def test_memory_bitflips(self):
        reference = make_campaign(build_accumulator(),
                                  inputs={"addr": 3, "load": 1}, seed=3)
        compiled = make_campaign(build_accumulator(),
                                 inputs={"addr": 3, "load": 1}, seed=3,
                                 backend="compiled")
        spec = FaultLoadSpec(FaultModel.BITFLIP, "memory:scratch",
                             count=10, workload_cycles=30)
        faults = generate_faultload(
            spec, reference.locmap, seed=11,
            routed_nets=reference.impl.routing.is_routed)
        _assert_campaigns_equivalent(reference, compiled, faults, 30)

    def test_unsupported_faults_fall_back(self):
        """Permanent models interleave through the reference path."""
        reference = make_campaign(build_counter(4), inputs={"en": 1},
                                  seed=3)
        compiled = make_campaign(build_counter(4), inputs={"en": 1},
                                 seed=3, backend="compiled")
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=6,
                             workload_cycles=25)
        faults = list(generate_faultload(
            spec, reference.locmap, seed=11,
            routed_nets=reference.impl.routing.is_routed))
        faults.insert(3, Fault(FaultModel.STUCK_AT,
                               Target(TargetKind.FF, 0),
                               start_cycle=4, value=0))
        assert not supports_fault(faults[3])
        _assert_campaigns_equivalent(reference, compiled, faults, 25)

    def test_narrow_lanes_split_batches(self, monkeypatch):
        """Results are batch-size independent (forces multiple flushes)."""
        monkeypatch.setenv("REPRO_EMU_LANES", "3")
        reference = make_campaign(build_counter(4), inputs={"en": 1},
                                  seed=3)
        compiled = make_campaign(build_counter(4), inputs={"en": 1},
                                 seed=3, backend="compiled")
        spec = FaultLoadSpec(FaultModel.INDETERMINATION, "ffs", count=9,
                             workload_cycles=30, oscillate=True)
        faults = generate_faultload(
            spec, reference.locmap, seed=11,
            routed_nets=reference.impl.routing.is_routed)
        _assert_campaigns_equivalent(reference, compiled, faults, 30)


class TestMc8051Smoke:
    @pytest.fixture(scope="class")
    def evaluations(self):
        from repro.analysis.experiments import Evaluation
        return (Evaluation(backend="reference"),
                Evaluation(backend="compiled"))

    @pytest.mark.parametrize("model,pool", [
        (FaultModel.BITFLIP, "ffs"),
        (FaultModel.PULSE, "luts"),
    ])
    def test_mc8051_equivalence(self, evaluations, model, pool):
        reference, compiled = evaluations
        spec = reference.spec(model, pool, count=4)
        a = reference.run_fades(spec)
        b = compiled.run_fades(spec)
        assert a.golden.samples == b.golden.samples
        assert a.golden.final_state == b.golden.final_state
        assert ([e.outcome for e in a.experiments]
                == [e.outcome for e in b.experiments])
        assert ([e.first_divergence for e in a.experiments]
                == [e.first_divergence for e in b.experiments])


# ---------------------------------------------------------------------------
# Runtime integration
# ---------------------------------------------------------------------------
class TestRuntimeIntegration:
    def test_jobspec_backend_roundtrip(self):
        from repro.runtime import CampaignJobSpec
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=4,
                             workload_cycles=20)
        jobspec = CampaignJobSpec(spec=spec, backend="compiled")
        assert CampaignJobSpec.from_dict(jobspec.to_dict()).backend \
            == "compiled"
        # Old journals (no backend key) default to the reference path.
        data = jobspec.to_dict()
        del data["backend"]
        assert CampaignJobSpec.from_dict(data).backend == "reference"

    def test_engine_matches_serial_compiled(self, tmp_path):
        """Engine (workers=0, journaled) == serial run, compiled backend."""
        from repro.analysis.experiments import Evaluation
        from repro.runtime import CampaignJobSpec, run_campaign

        evaluation = Evaluation(backend="compiled")
        spec = evaluation.spec(FaultModel.BITFLIP, "ffs", count=6)
        serial = evaluation.run_fades(spec)

        jobspec = CampaignJobSpec.from_evaluation(evaluation, spec)
        assert jobspec.backend == "compiled"
        journal = tmp_path / "compiled.jsonl"
        engine = run_campaign(jobspec, workers=0, journal=str(journal))
        assert ([e.outcome for e in engine.experiments]
                == [e.outcome for e in serial.experiments])
        assert engine.total_emulation_s == pytest.approx(
            serial.total_emulation_s)
