"""Tests for the deterministic chaos harness (:mod:`repro.chaos`) and
the runtime's failure handling under injected infrastructure faults.

The contract under test is the robustness counterpart of the runtime's
determinism contract: whatever the chaos plan does to the *machinery*
(crashed workers, hung workers, torn journal writes, failing compiles),
the campaign's *results* stay bit-identical to an undisturbed serial
run — with the single, explicitly journaled exception of quarantined
poison faults.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro import chaos
from repro.chaos import ChaosPlan
from repro.analysis import Evaluation
from repro.core import FaultModel
from repro.core.classify import Outcome
from repro.errors import CampaignInterrupted, ChaosError, JournalError
from repro.obs.metrics import REGISTRY
from repro.runtime import (CampaignJobSpec, read_journal, repair_journal,
                           resume_campaign, run_campaign, scan_journal)

COUNT = 8

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="worker pool requires the fork start method")


@pytest.fixture(scope="module")
def evaluation():
    return Evaluation()


@pytest.fixture(scope="module")
def jobspec(evaluation):
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, COUNT)
    return CampaignJobSpec.from_evaluation(evaluation, spec,
                                           faultload_seed=evaluation.seed)


@pytest.fixture(scope="module")
def serial_result(jobspec):
    return run_campaign(jobspec)


@pytest.fixture(autouse=True)
def clean_chaos():
    chaos.clear()
    yield
    chaos.clear()


def outcomes(result):
    return [experiment.outcome for experiment in result.experiments]


def counter_total(name):
    metric = REGISTRY.get(name)
    return metric.total() if metric is not None else 0.0


# ---------------------------------------------------------------------------
# plan semantics
# ---------------------------------------------------------------------------
class TestChaosPlan:
    def test_spec_roundtrip_is_canonical(self):
        plan = ChaosPlan.from_spec(
            "worker_hang:index=5;seed=7;worker_crash:p=0.25:always")
        spec = plan.to_spec()
        assert spec.startswith("seed=7;")
        assert ChaosPlan.from_spec(spec).to_spec() == spec

    def test_bad_specs_are_refused(self):
        with pytest.raises(ChaosError):
            ChaosPlan.from_spec("seed=7")  # no fault points
        with pytest.raises(ChaosError):
            ChaosPlan.from_spec("no_such_point")
        with pytest.raises(ChaosError):
            ChaosPlan.from_spec("worker_crash:p=2.0")

    def test_decisions_are_stateless_and_attempt_zero_only(self):
        plan = ChaosPlan.from_spec("seed=3;worker_crash:index=4")
        assert plan.should_fire("worker_crash", key=4, attempt=0)
        # Self-clearing, like the transient faults campaigns inject:
        # the retry of the same work must succeed.
        assert not plan.should_fire("worker_crash", key=4, attempt=1)
        assert not plan.should_fire("worker_crash", key=5, attempt=0)
        # `always` opts a rule out of self-clearing (poison simulation).
        poison = ChaosPlan.from_spec("seed=3;worker_crash:index=4:always")
        assert all(poison.should_fire("worker_crash", key=4, attempt=a)
                   for a in range(4))

    def test_probabilistic_decisions_are_reproducible(self):
        first = ChaosPlan.from_spec("seed=11;torn_write:p=0.5")
        second = ChaosPlan.from_spec("seed=11;torn_write:p=0.5")
        draws = [first.should_fire("torn_write", key=k) for k in range(64)]
        assert draws == [second.should_fire("torn_write", key=k)
                         for k in range(64)]
        assert any(draws) and not all(draws)

    def test_env_var_activation(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "seed=5;slow_result:p=0.0")
        chaos.clear()
        plan = chaos.active()
        assert plan is not None and plan.seed == 5
        # An explicit install (even of nothing) outranks the env.
        chaos.install(None)
        assert chaos.active() is None


# ---------------------------------------------------------------------------
# crash / hang recovery: parallel == serial under chaos
# ---------------------------------------------------------------------------
@needs_fork
class TestCrashAndHang:
    def test_worker_crash_is_retried_to_identity(self, jobspec,
                                                 serial_result):
        chaos.install(ChaosPlan.from_spec(
            "seed=2;worker_crash:index=2"))
        result = run_campaign(jobspec, workers=2)
        assert outcomes(result) == outcomes(serial_result)
        assert result.counts().quarantined == 0

    def test_worker_hang_watchdog_respawns(self, jobspec, serial_result):
        chaos.install(ChaosPlan.from_spec("seed=2;worker_hang:index=1"))
        hangs_before = counter_total("worker_hangs_total")
        started = time.monotonic()
        result = run_campaign(jobspec, workers=2, shard_timeout=1.0)
        elapsed = time.monotonic() - started
        assert outcomes(result) == outcomes(serial_result)
        assert counter_total("worker_hangs_total") > hangs_before
        # The hang must be detected within the deadline's order of
        # magnitude, not sat out until some larger default.
        assert elapsed < 25.0

    def test_serial_parallel_identity_under_combined_chaos(
            self, jobspec, serial_result):
        chaos.install(ChaosPlan.from_spec(
            "seed=9;worker_crash:p=0.3;worker_hang:index=3;"
            "slow_result:p=0.2:s=0.05"))
        result = run_campaign(jobspec, workers=3, shard_timeout=1.0)
        assert outcomes(result) == outcomes(serial_result)


# ---------------------------------------------------------------------------
# poison-fault quarantine
# ---------------------------------------------------------------------------
@needs_fork
class TestQuarantine:
    def test_poison_fault_is_bisected_and_journalled(
            self, jobspec, serial_result, tmp_path):
        journal = str(tmp_path / "quarantine.jsonl")
        # `always` makes index 3 kill its worker on every attempt:
        # retries cannot clear it, so bisection must isolate it.
        chaos.install(ChaosPlan.from_spec(
            "seed=4;worker_crash:index=3:always"))
        result = run_campaign(jobspec, workers=2, max_retries=1,
                              journal=journal)
        assert result.experiments[3].quarantined
        assert result.experiments[3].outcome is Outcome.QUARANTINED
        others = [outcome for index, outcome in enumerate(outcomes(result))
                  if index != 3]
        assert others == [outcome for index, outcome
                          in enumerate(outcomes(serial_result))
                          if index != 3]
        counts = result.counts()
        assert counts.quarantined == 1
        assert counts.total == COUNT - 1  # excluded from denominators

        state = read_journal(journal)
        record = state.records[3]
        assert record["quarantined"] is True
        assert record["outcome"] == "quarantined"
        assert record["error"]

        # Resume replays the quarantine record instead of retrying the
        # poison fault (no chaos active anymore — the record stands).
        chaos.clear()
        resumed = resume_campaign(journal)
        assert outcomes(resumed) == outcomes(result)
        assert resumed.experiments[3].quarantined


# ---------------------------------------------------------------------------
# journal integrity: torn writes, bit-rot, fsck
# ---------------------------------------------------------------------------
class TestJournalIntegrity:
    def test_torn_write_leaves_recoverable_tail(self, jobspec,
                                                serial_result, tmp_path):
        journal = str(tmp_path / "torn.jsonl")
        chaos.install(ChaosPlan.from_spec("seed=1;torn_write:index=2"))
        with pytest.raises(ChaosError):
            run_campaign(jobspec, journal=journal)
        scan = scan_journal(journal)
        assert scan.verdict() == "torn-tail"
        # The crash signature is recoverable without repair: rerun
        # completes and tallies exactly like the undisturbed run.
        result = run_campaign(jobspec, journal=journal)
        assert outcomes(result) == outcomes(serial_result)
        assert scan_journal(journal).verdict() == "clean"

    def test_corrupt_record_is_interior_damage(self, jobspec,
                                               serial_result, tmp_path):
        journal = str(tmp_path / "rot.jsonl")
        chaos.install(ChaosPlan.from_spec(
            "seed=1;corrupt_record:index=2"))
        run_campaign(jobspec, journal=journal)
        chaos.clear()
        scan = scan_journal(journal)
        assert scan.verdict() == "corrupt"
        assert [issue.kind for issue in scan.interior] == ["corrupt"]
        # Reading refuses with a diagnosis instead of resuming over
        # provably damaged history.
        with pytest.raises(JournalError, match="fsck"):
            read_journal(journal)
        # Repair truncates to the verifiable prefix; the dropped
        # experiments simply re-run.
        _scan, dropped = repair_journal(journal)
        assert dropped > 0
        assert scan_journal(journal).verdict() == "clean"
        result = run_campaign(jobspec, journal=journal)
        assert outcomes(result) == outcomes(serial_result)

    def test_fsck_is_clean_on_undisturbed_journal(self, jobspec,
                                                  tmp_path):
        journal = str(tmp_path / "clean.jsonl")
        run_campaign(jobspec, journal=journal)
        scan = scan_journal(journal)
        assert scan.verdict() == "clean"
        assert scan.checked == scan.lines
        assert scan.legacy == 0


# ---------------------------------------------------------------------------
# graceful interruption
# ---------------------------------------------------------------------------
class TestInterrupt:
    def test_sigint_drains_journals_and_resumes(self, jobspec,
                                                serial_result, tmp_path):
        journal = str(tmp_path / "interrupted.jsonl")
        fired = []

        def interrupt_midway(snapshot):
            if snapshot.completed >= 3 and not fired:
                fired.append(True)
                os.kill(os.getpid(), signal.SIGINT)

        with pytest.raises(CampaignInterrupted):
            run_campaign(jobspec, journal=journal,
                         progress=interrupt_midway)
        state = read_journal(journal)
        assert state.stop is not None
        assert state.stop["reason"] == "interrupted"
        done = len(state.done_indices(COUNT))
        assert 3 <= done < COUNT  # drained, then stopped
        assert scan_journal(journal).verdict() == "clean"

        resumed = resume_campaign(journal)
        assert outcomes(resumed) == outcomes(serial_result)


# ---------------------------------------------------------------------------
# compiled-backend degradation
# ---------------------------------------------------------------------------
class TestCompileFallback:
    def test_compile_fail_degrades_to_reference(self, jobspec,
                                                serial_result):
        import dataclasses
        chaos.install(ChaosPlan.from_spec("seed=6;compile_fail"))
        fallbacks_before = counter_total("emu_backend_fallbacks_total")
        result = run_campaign(dataclasses.replace(jobspec,
                                                  backend="compiled"))
        assert counter_total("emu_backend_fallbacks_total") \
            > fallbacks_before
        assert outcomes(result) == outcomes(serial_result)


# ---------------------------------------------------------------------------
# reaping: terminate -> kill escalation
# ---------------------------------------------------------------------------
def _ignore_sigterm_forever():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.05)


@needs_fork
def test_reap_escalates_to_sigkill():
    from repro.runtime.scheduler import _Worker

    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=_ignore_sigterm_forever, daemon=True)
    process.start()
    conn, child_conn = ctx.Pipe()
    child_conn.close()
    handle = object.__new__(_Worker)
    handle.process = process
    handle.conn = conn
    try:
        _Worker.reap(handle, timeout=0.2)
        assert not process.is_alive()
    finally:
        if process.is_alive():
            process.kill()
            process.join(1.0)
