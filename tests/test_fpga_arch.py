"""Tests for the generic FPGA architecture and configuration bitstream."""

import pytest

from repro.errors import BitstreamError
from repro.fpga import (Bitstream, CbConfig, FrameAddr, demo_device,
                        virtex1000_like)
from repro.fpga.architecture import CB_BYTES, PM_BYTES, PM_PASS_TRANSISTORS


class TestArchitecture:
    def test_virtex1000_matches_paper_counts(self):
        # Paper section 7.1: 24576 FFs and 24576 LUTs available.
        arch = virtex1000_like()
        assert arch.n_cbs == 24576
        # Full configuration in the same league as the real ~766 KiB file.
        assert 600_000 < arch.full_config_bytes < 900_000

    def test_frame_sizes(self):
        arch = demo_device(rows=8, cols=4, mem_blocks=2)
        assert arch.frame_size(FrameAddr("cb", 0)) == 8 * CB_BYTES
        assert arch.frame_size(FrameAddr("route", 3)) == 8 * PM_BYTES
        assert arch.frame_size(FrameAddr("bram", 1)) == 512
        assert arch.frame_size(FrameAddr("state", 0)) == 1
        assert arch.frame_size(FrameAddr("cmd", 0)) == 4

    def test_out_of_range_frames_rejected(self):
        arch = demo_device(rows=8, cols=4, mem_blocks=2)
        with pytest.raises(BitstreamError):
            arch.frame_size(FrameAddr("cb", 4))
        with pytest.raises(BitstreamError):
            arch.frame_size(FrameAddr("bram", 2))
        with pytest.raises(BitstreamError):
            arch.frame_size(FrameAddr("nonsense", 0))

    def test_bram_bit_addressing(self):
        arch = demo_device()
        addr, byte_off, bit_off = arch.bram_bit(1, 10, 3)
        assert addr == FrameAddr("bram", 1)
        assert byte_off == (10 * 8 + 3) // 8
        assert bit_off == (10 * 8 + 3) % 8
        with pytest.raises(BitstreamError):
            arch.bram_bit(0, 512, 0)

    def test_site_checking(self):
        arch = demo_device(rows=4, cols=4)
        with pytest.raises(BitstreamError):
            arch.check_site(4, 0)
        arch.check_site(3, 3)


class TestCbConfig:
    def test_pack_unpack_roundtrip(self):
        config = CbConfig(tt=0xBEEF, use_ff=True, ff_d_external=True,
                          invert_ffin=True, invert_lsr=False, srval=1,
                          latch_mode=True)
        assert CbConfig.unpack(config.pack()) == config

    def test_default_is_all_zero(self):
        assert CbConfig().pack() == bytes(CB_BYTES)

    def test_short_word_rejected(self):
        with pytest.raises(BitstreamError):
            CbConfig.unpack(b"\x00\x01")


class TestBitstream:
    def test_cb_roundtrip_through_frames(self):
        image = Bitstream(demo_device())
        config = CbConfig(tt=0x1234, use_ff=True, srval=1)
        image.set_cb(5, 7, config)
        assert image.get_cb(5, 7) == config
        assert image.get_cb(5, 6) == CbConfig()

    def test_pass_transistor_bits(self):
        image = Bitstream(demo_device())
        assert image.get_pass_transistor(2, 3, 17) == 0
        image.set_pass_transistor(2, 3, 17, 1)
        assert image.get_pass_transistor(2, 3, 17) == 1
        assert image.pm_used_count(2, 3) == 1
        image.set_pass_transistor(2, 3, 17, 0)
        assert image.pm_used_count(2, 3) == 0

    def test_bram_word_roundtrip(self):
        image = Bitstream(demo_device())
        image.set_bram_word(1, 100, 0xA7)
        assert image.get_bram_word(1, 100) == 0xA7
        assert image.get_bram_bit(1, 100, 0) == 1
        assert image.get_bram_bit(1, 100, 7) == 1
        assert image.get_bram_bit(1, 100, 3) == 0

    def test_frame_write_length_checked(self):
        image = Bitstream(demo_device())
        with pytest.raises(BitstreamError):
            image.set_frame(FrameAddr("cb", 0), b"\x00")

    def test_copy_is_deep(self):
        image = Bitstream(demo_device())
        clone = image.copy()
        image.set_bram_word(0, 0, 0xFF)
        assert clone.get_bram_word(0, 0) == 0

    def test_diff_frames(self):
        image = Bitstream(demo_device())
        clone = image.copy()
        assert image.diff_frames(clone) == []
        clone.set_cb(0, 2, CbConfig(tt=1))
        assert image.diff_frames(clone) == [FrameAddr("cb", 2)]

    def test_total_bytes_matches_arch(self):
        arch = demo_device()
        assert Bitstream(arch).total_bytes() == arch.full_config_bytes

    def test_pm_capacity_constant(self):
        assert PM_PASS_TRANSISTORS == PM_BYTES * 8


class TestBitstreamFiles:
    def _image(self):
        image = Bitstream(demo_device())
        image.set_cb(2, 3, CbConfig(tt=0x1357, use_ff=True, srval=1))
        image.set_pass_transistor(4, 5, 99, 1)
        image.set_bram_word(0, 17, 0xC4)
        return image

    def test_save_load_roundtrip(self, tmp_path):
        image = self._image()
        path = str(tmp_path / "design.bit")
        image.save(path)
        loaded = Bitstream.load(path, demo_device())
        assert loaded.diff_frames(image) == []
        assert loaded.get_cb(2, 3).tt == 0x1357

    def test_crc_detects_corruption(self, tmp_path):
        path = str(tmp_path / "design.bit")
        self._image().save(path)
        blob = bytearray(open(path, "rb").read())
        blob[100] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(BitstreamError):
            Bitstream.load(path, demo_device())

    def test_wrong_device_rejected(self, tmp_path):
        path = str(tmp_path / "design.bit")
        self._image().save(path)
        with pytest.raises(BitstreamError):
            Bitstream.load(path, virtex1000_like())

    def test_truncated_file_rejected(self, tmp_path):
        path = str(tmp_path / "design.bit")
        (tmp_path / "design.bit").write_bytes(b"RPRO")
        with pytest.raises(BitstreamError):
            Bitstream.load(path, demo_device())

    def test_not_a_bitstream_rejected(self, tmp_path):
        import struct, zlib
        path = tmp_path / "design.bit"
        body = b"GARBAGE!" + bytes(100)
        path.write_bytes(body + struct.pack("<I", zlib.crc32(body)))
        with pytest.raises(BitstreamError):
            Bitstream.load(str(path), demo_device())
