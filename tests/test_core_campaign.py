"""Tests for campaign orchestration, faultload generation and cost model."""

import pytest

from repro.core import (FaultLoadSpec, FaultModel, Outcome, generate_faultload,
                        pool_size)
from repro.core.faults import Fault, Target, TargetKind
from repro.errors import InjectionError, LocationError

from helpers import build_accumulator, build_counter
from test_core_injector import make_campaign


@pytest.fixture(scope="module")
def campaign():
    return make_campaign(build_counter(4), inputs={"en": 1})


@pytest.fixture(scope="module")
def accum():
    return make_campaign(build_accumulator(), inputs={"addr": 3, "load": 1})


class TestFaultloadGeneration:
    def test_counts_and_determinism(self, campaign):
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=20,
                             workload_cycles=50)
        first = generate_faultload(spec, campaign.locmap, seed=5)
        second = generate_faultload(spec, campaign.locmap, seed=5)
        assert len(first) == 20
        assert first == second
        assert generate_faultload(spec, campaign.locmap, seed=6) != first

    def test_injection_instants_within_workload(self, campaign):
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=50,
                             workload_cycles=80)
        for fault in generate_faultload(spec, campaign.locmap, seed=1):
            assert 0 <= fault.start_cycle < 80

    def test_durations_within_band(self, campaign):
        spec = FaultLoadSpec(FaultModel.PULSE, "luts", count=30,
                             workload_cycles=50, duration_range=(11, 20))
        for fault in generate_faultload(spec, campaign.locmap, seed=1):
            assert 11 <= fault.duration_cycles <= 20

    def test_memory_pool_respects_range(self, accum):
        spec = FaultLoadSpec(FaultModel.BITFLIP, "memory:scratch", count=30,
                             workload_cycles=20, mem_addr_range=(4, 8))
        for fault in generate_faultload(spec, accum.locmap, seed=2):
            assert 4 <= fault.target.addr < 8

    def test_unit_pool(self, campaign):
        # The counter has no units, so a unit pool must be empty.
        spec = FaultLoadSpec(FaultModel.PULSE, "luts:ALU", count=3,
                             workload_cycles=20)
        with pytest.raises(LocationError):
            generate_faultload(spec, campaign.locmap, seed=0)

    def test_unknown_pool_rejected(self, campaign):
        spec = FaultLoadSpec(FaultModel.PULSE, "bogus", count=1,
                             workload_cycles=10)
        with pytest.raises(InjectionError):
            generate_faultload(spec, campaign.locmap, seed=0)

    def test_pool_size_matches_resources(self, campaign):
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=1,
                             workload_cycles=10)
        assert pool_size(spec, campaign.locmap) == len(
            campaign.locmap.mapped.ffs)

    def test_indetermination_values_assigned(self, campaign):
        spec = FaultLoadSpec(FaultModel.INDETERMINATION, "ffs", count=20,
                             workload_cycles=30)
        values = {fault.value for fault in
                  generate_faultload(spec, campaign.locmap, seed=3)}
        assert values <= {0, 1}
        assert len(values) == 2  # both levels appear


class TestCampaignInvariants:
    def test_golden_run_cached(self, campaign):
        first = campaign.golden_run(30)
        second = campaign.golden_run(30)
        assert first is second

    def test_golden_run_reproducible_after_experiments(self, campaign):
        golden = campaign.golden_run(30)
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=5,
                             workload_cycles=30)
        campaign.run(spec, seed=4)
        campaign._golden.clear()
        again = campaign.golden_run(30)
        assert golden.samples == again.samples
        assert golden.final_state == again.final_state

    def test_configuration_restored_after_every_model(self, campaign):
        golden = campaign.impl.golden_bitstream
        for model, pool in [(FaultModel.BITFLIP, "ffs"),
                            (FaultModel.PULSE, "luts"),
                            (FaultModel.INDETERMINATION, "ffs"),
                            (FaultModel.DELAY, "nets:seq")]:
            spec = FaultLoadSpec(model, pool, count=3, workload_cycles=25,
                                 magnitude_range_ns=(5.0, 40.0))
            campaign.run(spec, seed=8)
            assert campaign.device.config.diff_frames(golden) == []

    def test_run_aggregates_costs(self, campaign):
        spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=4,
                             workload_cycles=25)
        result = campaign.run(spec, seed=9)
        assert len(result.experiments) == 4
        assert result.total_emulation_s == pytest.approx(
            sum(e.cost.total_s for e in result.experiments))
        assert result.mean_emulation_s == pytest.approx(
            result.total_emulation_s / 4)

    def test_late_start_cycle_clamped(self, campaign):
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0),
                      start_cycle=10_000)
        result = campaign.run_experiment(fault, 20)
        assert result.cost.transactions == 3  # still injected at the end

    def test_locate_cost_scales_with_pool(self, campaign):
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 3)
        small = campaign.run_experiment(fault, 20, pool=10)
        large = campaign.run_experiment(fault, 20, pool=5000)
        assert large.cost.locate_s > small.cost.locate_s

    def test_screening_finds_sensitive_ffs(self, campaign):
        sensitive = campaign.screen_sensitive_ffs(25, samples_per_ff=2)
        # Counter bits feed the outputs directly: most FFs are sensitive.
        assert sensitive
        assert all(0 <= index < len(campaign.locmap.mapped.ffs)
                   for index in sensitive)


class TestOutcomeSanity:
    def test_memory_occupied_vs_unused(self, accum):
        used = FaultLoadSpec(FaultModel.BITFLIP, "memory:scratch", count=12,
                             workload_cycles=20, mem_addr_range=(0, 4))
        unused = FaultLoadSpec(FaultModel.BITFLIP, "memory:scratch",
                               count=12, workload_cycles=20,
                               mem_addr_range=(8, 16))
        used_result = accum.run(used, seed=3)
        unused_result = accum.run(unused, seed=3)
        assert used_result.failure_percent() > \
            unused_result.failure_percent()

    def test_failure_rate_grows_with_pulse_duration(self, campaign):
        pcts = []
        for band in [(0.05, 0.95), (11.0, 20.0)]:
            spec = FaultLoadSpec(FaultModel.PULSE, "luts", count=20,
                                 workload_cycles=40, duration_range=band)
            pcts.append(campaign.run(spec, seed=6).failure_percent())
        assert pcts[1] >= pcts[0]


class TestCheckpointing:
    """The fast-forward optimisation must be behaviourally invisible."""

    def _pair(self):
        from repro.fpga import Board, implement
        from repro.synth import synthesize
        from helpers import build_accumulator
        from repro.core.campaign import FadesCampaign
        campaigns = []
        for interval in (0, 8):
            result = synthesize(build_accumulator())
            impl = implement(result.mapped)
            campaigns.append(FadesCampaign(
                impl, result.locmap, board=Board(),
                inputs={"addr": 3, "load": 1},
                checkpoint_interval=interval))
        return campaigns

    def test_golden_runs_identical(self):
        plain, fast = self._pair()
        a = plain.golden_run(40)
        b = fast.golden_run(40)
        assert a.samples == b.samples
        assert a.final_state == b.final_state
        assert fast._checkpoints  # snapshots actually recorded

    def test_every_fault_model_identical(self):
        from repro.core import FaultLoadSpec, FaultModel, generate_faultload
        plain, fast = self._pair()
        cycles = 40
        for model, pool in [(FaultModel.BITFLIP, "ffs"),
                            (FaultModel.BITFLIP, "memory:scratch"),
                            (FaultModel.PULSE, "luts"),
                            (FaultModel.INDETERMINATION, "ffs"),
                            (FaultModel.DELAY, "nets:seq")]:
            spec = FaultLoadSpec(model, pool, count=6,
                                 workload_cycles=cycles,
                                 magnitude_range_ns=(5.0, 80.0))
            faults = generate_faultload(spec, plain.locmap, seed=11)
            a = plain.run_faults(faults, cycles)
            b = fast.run_faults(faults, cycles)
            for x, y in zip(a.experiments, b.experiments):
                assert x.outcome == y.outcome, (model, x.fault)
                assert x.first_divergence == y.first_divergence

    def test_emulated_costs_unchanged(self):
        # Fast-forwarding is host-side only: the emulated per-fault cost
        # must not depend on it.
        from repro.core.faults import Fault, FaultModel, Target, TargetKind
        plain, fast = self._pair()
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 30)
        plain.golden_run(40)
        fast.golden_run(40)
        a = plain.run_experiment(fault, 40)
        b = fast.run_experiment(fault, 40)
        assert a.cost.total_s == pytest.approx(b.cost.total_s)
