"""Tests for the configuration-memory SEU extension.

Covers the three configuration planes (CB, routing, memory), the device's
routing-plane decode (broken nets / phantom loads), and the campaign-level
essential-bits accounting.
"""

import random

import pytest

from repro.core import (ConfigBit, config_seu_fault, plane_bits,
                        random_config_bit, run_config_seu_campaign,
                        used_route_bit, Outcome)
from repro.core.config_seu import occupied_frames
from repro.fpga.architecture import CB_BYTES, CB_FLAGS, CB_TT_LO, PM_BYTES, \
    FrameAddr

from helpers import build_counter
from test_core_injector import make_campaign


@pytest.fixture()
def campaign():
    return make_campaign(build_counter(4), inputs={"en": 1})


class TestSampling:
    def test_plane_bit_totals(self, campaign):
        arch = campaign.device.arch
        assert plane_bits(arch, "cb") == arch.cols * arch.rows * CB_BYTES * 8
        assert plane_bits(arch, "route") == \
            arch.cols * arch.rows * PM_BYTES * 8
        assert plane_bits(arch, "bram") > 0

    def test_draw_respects_planes(self, campaign):
        rng = random.Random(1)
        arch = campaign.device.arch
        for _ in range(20):
            bit = random_config_bit(arch, rng, planes=("cb",))
            assert bit.addr.kind == "cb"
            assert bit.byte_off < arch.frame_size(bit.addr)

    def test_draw_is_plane_size_weighted(self, campaign):
        rng = random.Random(2)
        arch = campaign.device.arch
        kinds = [random_config_bit(arch, rng).addr.kind for _ in range(300)]
        # The routing plane is 4x the CB plane: it must dominate.
        assert kinds.count("route") > kinds.count("cb")

    def test_occupied_frames_subset(self, campaign):
        frames = occupied_frames(campaign)
        assert frames
        all_frames = set(campaign.device.arch.config_frames())
        assert set(frames) <= all_frames

    def test_used_route_bit_is_allocated(self, campaign):
        rng = random.Random(3)
        bit = used_route_bit(campaign, rng)
        index = (bit.byte_off % PM_BYTES) * 8 + bit.bit_off
        row = bit.byte_off // PM_BYTES
        assert campaign.device.config.get_pass_transistor(
            row, bit.addr.major, index) == 1


class TestCbPlaneUpsets:
    def _cb_bit(self, campaign, ff_index, flag_bit):
        row, col = campaign.impl.placement.site_of_ff[ff_index]
        return ConfigBit(FrameAddr("cb", col),
                         byte_off=row * CB_BYTES + CB_FLAGS,
                         bit_off=flag_bit)

    def test_lut_bit_upset_changes_logic(self, campaign):
        # Flip truth-table bits of a packed next-state LUT: at least one
        # of the visited table entries must change observable behaviour
        # (entries the counter never visits stay silent — also checked).
        lut_index = next(
            index for index, site in
            campaign.impl.placement.site_of_lut.items()
            if campaign.impl.placement.sites[site].packed)
        row, col = campaign.impl.placement.site_of_lut[lut_index]
        outcomes = set()
        for tt_bit in range(8):
            bit = ConfigBit(FrameAddr("cb", col),
                            byte_off=row * CB_BYTES + CB_TT_LO,
                            bit_off=tt_bit)
            result = campaign.run_experiment(config_seu_fault(bit, 3), 20)
            outcomes.add(result.outcome)
        assert Outcome.FAILURE in outcomes or Outcome.LATENT in outcomes

    def test_invert_lsr_upset_forces_ff(self, campaign):
        from repro.fpga.architecture import CB_FLAG_INVERT_LSR
        bit = self._cb_bit(campaign, 0, CB_FLAG_INVERT_LSR)
        result = campaign.run_experiment(config_seu_fault(bit, 4), 20)
        # Counter bit 0 pinned at srval: counting breaks.
        assert result.outcome is Outcome.FAILURE

    def test_unused_cb_upset_is_silent(self, campaign):
        arch = campaign.device.arch
        # Find an unoccupied site.
        occupied = set(campaign.impl.placement.sites)
        free = next((r, c) for r in range(arch.rows)
                    for c in range(arch.cols) if (r, c) not in occupied)
        bit = ConfigBit(FrameAddr("cb", free[1]),
                        byte_off=free[0] * CB_BYTES + CB_TT_LO, bit_off=3)
        result = campaign.run_experiment(config_seu_fault(bit, 3), 20)
        assert result.outcome is Outcome.SILENT


class TestRoutePlaneUpsets:
    def test_breaking_allocated_pt_fails(self, campaign):
        rng = random.Random(7)
        # Break a pass transistor of a net feeding the outputs.
        failures = 0
        for seed in range(5):
            bit = used_route_bit(campaign, random.Random(seed))
            result = campaign.run_experiment(config_seu_fault(bit, 2), 20)
            if result.outcome is not Outcome.SILENT:
                failures += 1
        assert failures >= 3  # most broken lines are observable here

    def test_broken_net_detected_and_cleared(self, campaign):
        device = campaign.device
        bit = used_route_bit(campaign, random.Random(1))
        campaign.run_experiment(config_seu_fault(bit, 2), 15)
        # After restoration, no anomaly survives.
        assert device._broken_nets == set()
        assert device.impl.timing.seu_extra == {}
        assert device.config.diff_frames(campaign.impl.golden_bitstream) \
            == []

    def test_unused_pt_upset_adds_phantom_load(self, campaign):
        device = campaign.device
        routing = campaign.impl.routing
        net = next(iter(routing.routes))
        pm = routing.route_of(net).pms[0]
        # Find an index beyond the allocated ones.
        index = 150
        assert device.config.get_pass_transistor(pm[0], pm[1], index) == 0
        frame = bytearray(device.read_frame(FrameAddr("route", pm[1])))
        frame[pm[0] * PM_BYTES + index // 8] |= 1 << (index % 8)
        device.write_frame(FrameAddr("route", pm[1]), bytes(frame))
        device.step({"en": 1})  # settles lazy timing refresh
        assert device.impl.timing.seu_extra  # phantom load registered
        assert device._broken_nets == set()
        # Restore.
        device.write_frame(
            FrameAddr("route", pm[1]),
            campaign.impl.golden_bitstream.get_frame(
                FrameAddr("route", pm[1])))
        device.step()
        assert device.impl.timing.seu_extra == {}


class TestCampaignLevel:
    def test_memory_plane_upset_behaves_like_bitflip(self):
        from helpers import build_accumulator
        campaign = make_campaign(build_accumulator(),
                                 inputs={"addr": 2, "load": 1})
        block = campaign.impl.placement.block_of_bram[0]
        # Bit 0 of word 2 (value 7) in the memory plane.
        bit = ConfigBit(FrameAddr("bram", block), byte_off=2, bit_off=0)
        result = campaign.run_experiment(config_seu_fault(bit, 1), 16)
        assert result.outcome is Outcome.FAILURE

    def test_campaign_reports_by_plane(self, campaign):
        report = run_config_seu_campaign(campaign, count=10, cycles=15,
                                         seed=5)
        assert report.result.counts().total == 10
        assert sum(sum(t.values()) for t in report.by_plane.values()) == 10
        assert 0.0 <= report.essential_fraction <= 1.0
        assert "essential" in report.render()

    def test_seu_cost_is_one_rmw(self, campaign):
        bit = used_route_bit(campaign, random.Random(2))
        result = campaign.run_experiment(config_seu_fault(bit, 2), 15)
        assert result.cost.transactions == 2  # frame read + frame write
