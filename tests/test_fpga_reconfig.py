"""Tests for run-time reconfiguration: JBits API, readback, GSR, board costs.

These validate the substrate property the whole reproduction rests on: the
device executes *from configuration memory*, so rewriting frames changes
behaviour and restoring them restores it.
"""

import pytest

from repro.errors import ConfigurationError
from repro.fpga import Board, Device, FrameAddr, JBits, implement
from repro.fpga.bitstream import CbConfig
from repro.hdl import NetlistSim
from repro.synth import synthesize

from helpers import build_accumulator, build_alu4, build_counter


def make_device(netlist):
    result = synthesize(netlist)
    impl = implement(result.mapped)
    device = Device(impl)
    device.reset_system()
    return result, impl, device


class TestLutReconfiguration:
    def test_lut_rewrite_changes_behaviour_and_restores(self):
        result, impl, device = make_device(build_alu4())
        jbits = JBits(device)
        # Find the LUT driving result bit 0 and invert its output.
        target_net = result.mapped.outputs["result"][0]
        lut_index = result.mapped.lut_of_net()[target_net]
        row, col = impl.placement.site_of_lut[lut_index]
        golden_cb = jbits.read_cb(row, col)
        faulty = CbConfig(**{**golden_cb.__dict__})
        faulty.tt = golden_cb.tt ^ 0xFFFF
        before = device.step({"a": 3, "b": 1, "op": 0})["result"]
        jbits.write_cb(row, col, faulty)
        after = device.step({"a": 3, "b": 1, "op": 0})["result"]
        assert (after ^ before) & 1 == 1  # exactly bit 0 inverted
        jbits.write_cb(row, col, golden_cb)
        assert device.step({"a": 3, "b": 1, "op": 0})["result"] == before

    def test_configuration_restoration_is_exact(self):
        result, impl, device = make_device(build_counter())
        jbits = JBits(device)
        golden = impl.golden_bitstream
        row, col = impl.placement.site_of_lut[0]
        original = jbits.read_cb(row, col)
        mutated = CbConfig(**{**original.__dict__})
        mutated.tt ^= 0x00FF
        jbits.write_cb(row, col, mutated)
        assert device.config.diff_frames(golden)
        jbits.write_cb(row, col, original)
        assert device.config.diff_frames(golden) == []


class TestFfStateAccess:
    def test_state_readback_tracks_execution(self):
        result, impl, device = make_device(build_counter())
        jbits = JBits(device)
        device.run(5, {"en": 1})  # count visible = 4 after 5 steps
        state = 0
        location = result.locmap.signal("count")
        for position, bit in enumerate(location.bits):
            row, col = impl.placement.site_of_ff[bit.index]
            state |= jbits.read_ff_state(row, col) << position
        assert state == device.ff_state_of_signal \
            if hasattr(device, "ff_state_of_signal") else state == 5

    def test_state_frames_not_writable(self):
        _result, _impl, device = make_device(build_counter())
        with pytest.raises(ConfigurationError):
            device.write_frame(FrameAddr("state", 0), b"\x00" * 2)

    def test_gsr_restores_srval(self):
        _result, _impl, device = make_device(build_counter())
        device.run(7, {"en": 1})
        assert any(device.ff_state())
        device.pulse_gsr()
        assert device.step({"en": 0})["value"] == 0

    def test_lsr_forces_ff_until_released(self):
        result, impl, device = make_device(build_counter())
        jbits = JBits(device)
        # Force bit 0 of the counter to 1 via InvertLSRMux + srval.
        bit = result.locmap.signal("count").bits[0]
        row, col = impl.placement.site_of_ff[bit.index]
        original = jbits.read_cb(row, col)
        forced = CbConfig(**{**original.__dict__})
        forced.srval = 1
        forced.invert_lsr = True
        jbits.write_cb(row, col, forced)
        for _ in range(4):
            assert device.step({"en": 1})["value"] & 1 == 1
        jbits.write_cb(row, col, original)
        values = [device.step({"en": 1})["value"] & 1 for _ in range(4)]
        assert 0 in values  # counting resumed normally


class TestBramReconfiguration:
    def test_bram_readback_reflects_runtime_contents(self):
        _result, impl, device = make_device(build_accumulator())
        jbits = JBits(device)
        block = impl.placement.block_of_bram[0]
        frame = jbits.read_bram_frame(block)
        # Initial contents: mem[i] = (3*i + 1) % 256.
        assert frame[0] == 1
        assert frame[5] == 16

    def test_bram_bit_flip_and_execution(self):
        netlist = build_accumulator()
        result, impl, device = make_device(netlist)
        jbits = JBits(device)
        block = impl.placement.block_of_bram[0]
        old = jbits.flip_bram_bit(block, 0, 0)  # mem[0]: 1 -> 0
        assert old == 1
        assert device.mem_words(0)[0] == 0
        # The flipped value is what execution now reads.
        device.reset_system()
        # reset_system restores golden contents, so flip again after reset
        jbits.flip_bram_bit(block, 0, 0)
        device.step({"addr": 0, "load": 1})
        device.step({"addr": 0, "load": 0})
        out = device.step({})["acc_out"]
        assert out == 0

    def test_memory_bitflip_persists_until_rewritten(self):
        # Paper 4.1: the flipped value "remains unchanged until rewritten",
        # so no removal reconfiguration is needed.
        _result, impl, device = make_device(build_accumulator())
        jbits = JBits(device)
        block = impl.placement.block_of_bram[0]
        jbits.flip_bram_bit(block, 7, 2)
        word = device.mem_words(0)[7]
        device.run(3, {"addr": 1, "load": 0})
        assert device.mem_words(0)[7] == word


class TestBoardAccounting:
    def test_each_call_is_one_transaction(self):
        _result, impl, device = make_device(build_counter())
        board = Board()
        jbits = JBits(device, board)
        jbits.read_frame(FrameAddr("cb", 0))
        jbits.write_frame(FrameAddr("cb", 0),
                          device.config.get_frame(FrameAddr("cb", 0)))
        jbits.pulse_gsr()
        assert len(board.transactions) == 3

    def test_full_download_costs_dominate(self):
        # Needs the paper-scale device: a full ~750 KiB download must cost
        # several times a single-frame write (paper, section 6.2).
        from repro.fpga import virtex1000_like
        result = synthesize(build_counter())
        impl = implement(result.mapped, arch=virtex1000_like())
        device = Device(impl)
        device.reset_system()
        board = Board()
        jbits = JBits(device, board)
        marker = board.snapshot()
        jbits.write_full(device.config.copy())
        _count, full_seconds = board.since(marker)
        marker = board.snapshot()
        jbits.write_frame(FrameAddr("cb", 0),
                          device.config.get_frame(FrameAddr("cb", 0)))
        _count, frame_seconds = board.since(marker)
        assert full_seconds > 3 * frame_seconds

    def test_labels_group_costs(self):
        _result, impl, device = make_device(build_counter())
        board = Board()
        jbits = JBits(device, board)
        board.set_label("bitflip")
        jbits.pulse_gsr()
        board.set_label("pulse")
        jbits.read_frame(FrameAddr("cb", 0))
        by_label = board.seconds_by_label()
        assert set(by_label) == {"bitflip", "pulse"}

    def test_workload_time_negligible_vs_reconfig(self):
        # Paper 7.1: "the execution of the workload only takes a small
        # fraction" of the experiment time.
        board = Board()
        workload = board.workload_seconds(1303)
        reconfig = board.transaction("write", "cb", 400)
        assert workload < reconfig / 100


class TestRoutingReconfiguration:
    def test_extra_load_sets_and_clears_config_bit(self):
        _result, impl, device = make_device(build_counter())
        jbits = JBits(device)
        net = next(iter(impl.routing.routes))
        bit = jbits.enable_extra_load(net)
        row, col, index = bit
        assert device.config.get_pass_transistor(row, col, index) == 1
        jbits.disable_extra_load(net, bit)
        assert device.config.get_pass_transistor(row, col, index) == 0
        assert device.config.diff_frames(impl.golden_bitstream) == []

    def test_detour_full_download_accounting(self):
        _result, impl, device = make_device(build_counter())
        board = Board()
        jbits = JBits(device, board)
        net = next(iter(impl.routing.routes))
        jbits.set_detour(net, 50, full_download=True)
        assert any(t.op == "write_full" for t in board.transactions)
        assert impl.routing.route_of(net).detour_hops == 50
        jbits.clear_detour(net)
        assert impl.routing.route_of(net).detour_hops == 0
