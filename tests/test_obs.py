"""Tests for the observability layer (:mod:`repro.obs`)."""

import json
import logging
import multiprocessing

import pytest

from repro.errors import ObservabilityError
from repro.obs import logsetup, metrics as obs_metrics, tracing
from repro.obs.metrics import MetricsRegistry
from repro.obs.summary import render_summary, summarize_trace
from repro.obs.tracing import PARENT_TID, Tracer, TraceWriter, read_trace

HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_disabled_span_records_nothing_and_yields_none(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("experiment") as span_id:
            assert span_id is None
        assert tracer.events == []

    def test_span_nesting_links_parents(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        with tracer.span("experiment") as outer:
            with tracer.span("reconfigure") as inner:
                assert inner != outer
            with tracer.span("run"):
                pass
        events = {event["name"]: event for event in tracer.events}
        assert events["reconfigure"]["args"]["parent"] == outer
        assert events["run"]["args"]["parent"] == outer
        assert events["experiment"]["args"]["parent"] is None
        # Children finish before the parent: event order is child-first,
        # but ids still reconstruct the hierarchy.
        assert [event["name"] for event in tracer.events] == \
            ["reconfigure", "run", "experiment"]

    def test_span_timing_uses_monotonic_microseconds(self):
        tracer = Tracer(clock=FakeClock(step=0.5))
        tracer.enable()
        with tracer.span("run"):
            pass
        event = tracer.events[0]
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(0.5e6)

    def test_attrs_carried_on_event(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        with tracer.span("experiment", index=7, model="bitflip"):
            pass
        args = tracer.events[0]["args"]
        assert args["index"] == 7
        assert args["model"] == "bitflip"

    def test_reset_drops_events_and_renumbers(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        with tracer.span("a"):
            pass
        tracer.reset(enabled=True, tid=3)
        assert tracer.events == []
        assert tracer.tid == 3
        with tracer.span("b") as span_id:
            assert span_id == 1  # ids restart per process/stream

    def test_drain_and_adopt_merge_worker_streams(self):
        worker = Tracer(clock=FakeClock(), tid=2)
        worker.enable()
        with worker.span("experiment", index=4):
            pass
        parent = Tracer(clock=FakeClock())
        parent.enable()
        parent.adopt(worker.drain(), tid=5)
        assert worker.events == []
        merged = parent.events[0]
        assert merged["tid"] == 5
        assert merged["args"]["index"] == 4

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        tracer.enable()
        with pytest.raises(RuntimeError):
            with tracer.span("experiment"):
                raise RuntimeError("boom")
        assert tracer.events[0]["name"] == "experiment"


class TestTraceFile:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.json")
        events = [{"name": "a", "ph": "X", "pid": 1, "tid": 0,
                   "ts": 1.0, "dur": 2.0, "args": {"id": 1,
                                                   "parent": None}}]
        tracing.write_trace(path, events)
        assert read_trace(path) == events
        # The file is a Chrome-format JSON array (the trailing bracket
        # is optional in the Trace Event spec).
        text = open(path).read()
        assert text.startswith("[\n")
        json.loads(text.rstrip().rstrip(",") + "]")

    def test_torn_tail_is_dropped_like_the_journal(self, tmp_path):
        path = str(tmp_path / "trace.json")
        events = [{"name": "kept", "ph": "X"}]
        tracing.write_trace(path, events)
        with open(path, "a") as handle:
            handle.write('{"name": "torn", "ph"')  # crash mid-write
        assert [event["name"] for event in read_trace(path)] == ["kept"]

    def test_append_mode_extends_existing_trace(self, tmp_path):
        path = str(tmp_path / "trace.json")
        with TraceWriter(path) as writer:
            writer.write([{"name": "first", "ph": "X"}])
        with TraceWriter(path, append=True) as writer:
            writer.write([{"name": "second", "ph": "X"}])
        names = [event["name"] for event in read_trace(path)]
        assert names == ["first", "second"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_trace(str(tmp_path / "absent.json"))


class TestMetricsRegistry:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("injections_total")
        counter.inc(model="bitflip", target="ff")
        counter.inc(model="bitflip", target="ff")
        counter.inc(model="pulse", target="lut")
        assert counter.value(model="bitflip", target="ff") == 2
        assert counter.total() == 3

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ObservabilityError):
            counter.inc(-1)

    def test_registration_is_idempotent_but_kind_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        assert registry.counter("x") is first
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_histogram_bucket_boundaries_are_le(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0))
        # A value exactly on a bound lands in that bound's bucket
        # (Prometheus le semantics), above the last bound -> +Inf.
        histogram.observe(1.0)
        histogram.observe(1.5)
        histogram.observe(2.0)
        histogram.observe(2.5)
        assert histogram.bucket_counts() == [1, 2, 1]
        assert histogram.cumulative_counts() == [1, 3, 4]
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(7.0)

    def test_state_round_trip_merges_additively(self):
        source = MetricsRegistry()
        source.counter("c").inc(3, kind="a")
        source.gauge("g").set(7.5)
        source.histogram("h", buckets=(1.0,)).observe(0.5)
        sink = MetricsRegistry()
        sink.counter("c").inc(1, kind="a")
        sink.histogram("h", buckets=(1.0,)).observe(2.0)
        sink.merge_state(source.to_state())
        assert sink.counter("c").value(kind="a") == 4
        assert sink.gauge("g").value() == 7.5
        assert sink.histogram("h").bucket_counts() == [1, 1]
        assert sink.histogram("h").sum() == pytest.approx(2.5)

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0
        assert registry.counter("c") is counter  # handle stays valid

    def test_text_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("c", "help text").inc(2, op="write")
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        text = registry.render_text()
        assert "# HELP c help text" in text
        assert "# TYPE c counter" in text
        assert 'c{op="write"} 2' in text
        assert 'h_bucket{le="1"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text

    def test_json_export_is_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(model="bitflip")
        data = json.loads(registry.render_json())
        assert data["c"]["series"][0]["labels"] == {"model": "bitflip"}


class TestLogSetup:
    def test_json_formatter_emits_parsable_lines(self, capsys):
        logsetup.setup_logging(level="info", json_mode=True)
        logsetup.get_logger("cli").info("hello %s", "world")
        entry = json.loads(capsys.readouterr().err.strip())
        assert entry["msg"] == "hello world"
        assert entry["level"] == "info"
        assert entry["logger"] == "repro.cli"

    def test_human_formatter_contains_level_and_logger(self, capsys):
        logsetup.setup_logging(level="debug", json_mode=False)
        logsetup.get_logger("repro.engine").error("broke")
        err = capsys.readouterr().err
        assert "error" in err
        assert "repro.engine: broke" in err

    def test_level_threshold(self, capsys):
        logsetup.setup_logging(level="warning")
        logsetup.get_logger("x").info("quiet")
        logsetup.get_logger("x").warning("loud")
        err = capsys.readouterr().err
        assert "quiet" not in err
        assert "loud" in err

    def test_handlers_are_replaced_not_stacked(self, capsys):
        logsetup.setup_logging()
        logsetup.setup_logging()
        logsetup.get_logger("x").warning("once")
        assert capsys.readouterr().err.count("once") == 1

    def teardown_method(self):
        logging.getLogger(logsetup.ROOT_LOGGER).handlers.clear()


class TestSummarize:
    def _span(self, name, tid, span_id, parent, dur_us, **attrs):
        return {"name": name, "ph": "X", "pid": 1, "tid": tid,
                "ts": 0.0, "dur": dur_us,
                "args": dict(attrs, id=span_id, parent=parent)}

    def test_engine_phases_partition_the_wall_clock(self):
        events = [
            self._span("campaign", PARENT_TID, 1, None, 100.0e6),
            self._span("setup", PARENT_TID, 2, 1, 10.0e6),
            self._span("golden", PARENT_TID, 3, 1, 20.0e6),
            self._span("experiments", PARENT_TID, 4, 1, 65.0e6),
            self._span("aggregate", PARENT_TID, 5, 1, 5.0e6),
        ]
        summary = summarize_trace(events)
        assert summary["wall_s"] == pytest.approx(100.0)
        assert summary["engine_phases"]["experiments"]["total_s"] == \
            pytest.approx(65.0)
        assert summary["phase_coverage"] == pytest.approx(1.0)

    def test_self_time_excludes_children_across_streams(self):
        # Two workers, same span ids: keys must be (tid, id)-scoped.
        events = [
            self._span("experiment", 1, 1, None, 10.0e6),
            self._span("run", 1, 2, 1, 8.0e6),
            self._span("reconfigure", 1, 3, 2, 3.0e6,
                       mechanism="ff-lsr"),
            self._span("experiment", 2, 1, None, 6.0e6),
            self._span("run", 2, 2, 1, 6.0e6),
        ]
        summary = summarize_trace(events)
        run = summary["experiment_phases"]["run"]
        # Worker 1's run self-time is 8-3=5; worker 2's is 6.
        assert run["self_s"] == pytest.approx(11.0)
        assert run["total_s"] == pytest.approx(14.0)
        assert summary["mechanisms"]["ff-lsr"]["count"] == 1
        assert summary["workers"] == 2

    def test_render_mentions_mechanisms_and_phases(self):
        events = [
            self._span("campaign", PARENT_TID, 1, None, 2.0e6),
            self._span("experiments", PARENT_TID, 2, 1, 2.0e6),
            self._span("experiment", 1, 1, None, 1.0e6),
            self._span("reconfigure", 1, 2, 1, 0.5e6,
                       mechanism="lut-rewrite"),
        ]
        text = render_summary(summarize_trace(events))
        assert "lut-rewrite" in text
        assert "experiments" in text
        assert "wall-clock" in text


@pytest.mark.skipif(not HAS_FORK, reason="needs the fork start method")
class TestEngineTracing:
    @pytest.fixture()
    def jobspec(self):
        from repro.core import FaultModel
        from repro.runtime import CampaignJobSpec

        from repro.analysis import Evaluation
        evaluation = Evaluation(values=(7, 2, 5))
        spec = evaluation.spec(FaultModel.BITFLIP, "ffs", count=4)
        return CampaignJobSpec.from_evaluation(evaluation, spec)

    def test_parallel_trace_merges_worker_spans(self, tmp_path, jobspec):
        from repro.runtime import run_campaign
        trace_path = str(tmp_path / "trace.json")
        result = run_campaign(jobspec, workers=2, trace=trace_path)
        assert len(result.experiments) == 4
        events = read_trace(trace_path)
        names = {event["name"] for event in events}
        assert {"campaign", "setup", "golden", "experiments",
                "aggregate", "experiment", "run"} <= names
        experiment_tids = {event["tid"] for event in events
                           if event["name"] == "experiment"}
        assert experiment_tids  # worker streams, tid >= 1
        assert PARENT_TID not in experiment_tids
        indices = {event["args"]["index"] for event in events
                   if event["name"] == "experiment"}
        assert indices == {0, 1, 2, 3}
        # Engine phases partition the campaign wall-clock.
        summary = summarize_trace(events)
        assert summary["phase_coverage"] == pytest.approx(1.0, abs=0.05)
        assert tracing.TRACER.enabled is False  # cleaned up

    def test_serial_trace_and_metrics(self, tmp_path, jobspec):
        from repro.runtime import run_campaign
        trace_path = str(tmp_path / "trace.json")
        before = obs_metrics.REGISTRY.counter(
            "injections_total").total()
        run_campaign(jobspec, workers=0, trace=trace_path)
        events = read_trace(trace_path)
        mechanisms = {event["args"].get("mechanism")
                      for event in events
                      if event["name"] == "reconfigure"}
        assert "ff-lsr" in mechanisms or "ff-gsr" in mechanisms
        after = obs_metrics.REGISTRY.counter("injections_total").total()
        assert after - before >= 4

    def test_trace_disabled_between_runs(self, tmp_path, jobspec):
        from repro.runtime import run_campaign
        run_campaign(jobspec, workers=0,
                     trace=str(tmp_path / "t.json"))
        run_campaign(jobspec, workers=0)  # no trace requested
        assert tracing.TRACER.enabled is False

    def test_sidecar_requires_journal(self, jobspec):
        from repro.runtime import run_campaign
        with pytest.raises(ObservabilityError):
            run_campaign(jobspec, trace=True)

    def test_journal_sidecar_appends_across_runs(self, tmp_path,
                                                 jobspec):
        from repro.runtime import run_campaign
        journal = str(tmp_path / "campaign.jsonl")
        run_campaign(jobspec, workers=0, journal=journal, trace=True)
        sidecar = journal + ".trace"
        first = read_trace(sidecar)
        assert {e["name"] for e in first} >= {"campaign", "experiment"}
        # A second run over the same journal has nothing pending but
        # still extends the same sidecar trace rather than truncating.
        run_campaign(jobspec, workers=0, journal=journal, trace=True)
        assert len(read_trace(sidecar)) > len(first)


class TestCliObs:
    def test_obs_summarize_prints_table(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "trace.json")
        tracing.write_trace(path, [
            {"name": "campaign", "ph": "X", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 3.0e6, "args": {"id": 1, "parent": None}},
            {"name": "experiments", "ph": "X", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 3.0e6, "args": {"id": 2, "parent": 1}},
        ])
        assert main(["obs", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "campaign wall-clock" in out
        assert "experiments" in out

    def test_obs_summarize_json(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "trace.json")
        tracing.write_trace(path, [
            {"name": "campaign", "ph": "X", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 1.0e6, "args": {"id": 1, "parent": None}},
        ])
        assert main(["obs", "summarize", path, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["wall_s"] == pytest.approx(1.0)

    def test_obs_summarize_missing_trace_fails_cleanly(self, tmp_path,
                                                       capsys):
        from repro.cli import main
        code = main(["obs", "summarize", str(tmp_path / "nope.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_campaign_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.cli import main
        trace_path = str(tmp_path / "t.json")
        metrics_path = str(tmp_path / "m.prom")
        code = main(["--values", "7,2,5", "campaign", "--model",
                     "bitflip", "--count", "3", "--trace", trace_path,
                     "--metrics", metrics_path])
        assert code == 0
        assert "FADES | bitflip" in capsys.readouterr().out
        assert read_trace(trace_path)
        exposition = open(metrics_path).read()
        assert "injections_total" in exposition
        assert "reconfig_seconds_bucket" in exposition

    def test_log_json_keeps_stderr_machine_parsable(self, tmp_path,
                                                    capsys):
        from repro.cli import main
        code = main(["--log-json", "resume",
                     str(tmp_path / "missing.jsonl")])
        assert code == 1
        err_lines = [line for line in
                     capsys.readouterr().err.splitlines() if line]
        for line in err_lines:
            entry = json.loads(line)
            assert entry["level"] == "error"
