"""Tests for the permanent-fault extension (paper section 8, future work)."""

import pytest

from repro.core import Fault, FaultModel, Target, TargetKind
from repro.core.permanent import bridge_lut_lines
from repro.errors import InjectionError

from helpers import build_counter
from test_core_injector import make_campaign


@pytest.fixture()
def campaign():
    return make_campaign(build_counter(4), inputs={"en": 1})


class TestBridgeHelper:
    def test_short_makes_victim_follow_aggressor(self):
        # f = input0 (victim); bridged to input1 -> f' = input1.
        tt_i0 = 0b1010101010101010
        tt_i1 = 0b1100110011001100
        assert bridge_lut_lines(tt_i0, 0, 1, "short") == tt_i1

    def test_wired_and(self):
        tt_i0 = 0b1010101010101010
        expected = tt_i0 & 0b1100110011001100
        assert bridge_lut_lines(tt_i0, 0, 1, "and") == expected

    def test_wired_or(self):
        tt_i0 = 0b1010101010101010
        expected = tt_i0 | 0b1100110011001100
        assert bridge_lut_lines(tt_i0, 0, 1, "or") == expected

    def test_same_line_rejected(self):
        with pytest.raises(InjectionError):
            bridge_lut_lines(0xFFFF, 2, 2)

    def test_unknown_mode_rejected(self):
        with pytest.raises(InjectionError):
            bridge_lut_lines(0xFFFF, 0, 1, "resistive")


class TestPermanentInjections:
    def _tc_lut(self, campaign):
        return campaign.locmap.signal("tc").bits[0].index

    def test_stuck_at_lut_output_persists(self, campaign):
        fault = Fault(FaultModel.STUCK_AT,
                      Target(TargetKind.LUT, self._tc_lut(campaign)),
                      start_cycle=2, value=1)
        result = campaign.run_experiment(fault, 20)
        # tc stuck at 1 from cycle 2 to the end of the run: failure, and
        # the divergence begins at the injection instant.
        assert result.outcome.value == "failure"
        assert result.first_divergence == 2

    def test_stuck_at_ff_holds_level(self, campaign):
        fault = Fault(FaultModel.STUCK_AT, Target(TargetKind.FF, 0),
                      start_cycle=3, value=0)
        result = campaign.run_experiment(fault, 20)
        # Counter bit 0 stuck at zero: the count sequence breaks for good.
        assert result.outcome.value == "failure"

    def test_stuck_open_ff_freezes_current_value(self, campaign):
        fault = Fault(FaultModel.STUCK_OPEN, Target(TargetKind.FF, 1),
                      start_cycle=5)
        result = campaign.run_experiment(fault, 20)
        assert result.outcome.value in ("failure", "latent")

    def test_open_line_on_lut_input(self, campaign):
        index = self._tc_lut(campaign)
        lut = campaign.locmap.mapped.luts[index]
        fault = Fault(FaultModel.OPEN_LINE,
                      Target(TargetKind.LUT, index, line=0),
                      start_cycle=2, value=0)
        result = campaign.run_experiment(fault, 20)
        assert result.outcome is not None

    def test_open_line_requires_input_line(self, campaign):
        fault = Fault(FaultModel.OPEN_LINE,
                      Target(TargetKind.LUT, self._tc_lut(campaign),
                             line=-1),
                      start_cycle=2)
        with pytest.raises(InjectionError):
            campaign.injector.prepare(fault)

    def test_bridging_two_lut_inputs(self, campaign):
        index = self._tc_lut(campaign)
        lut = campaign.locmap.mapped.luts[index]
        if len(lut.ins) < 2:
            pytest.skip("chosen LUT has fewer than two inputs")
        fault = Fault(FaultModel.BRIDGING,
                      Target(TargetKind.LUT, index, line=0),
                      start_cycle=2,
                      aux_target=Target(TargetKind.LUT, index, line=1))
        result = campaign.run_experiment(fault, 20)
        assert result.outcome is not None

    def test_bridging_needs_aux_target(self, campaign):
        fault = Fault(FaultModel.BRIDGING,
                      Target(TargetKind.LUT, 0, line=0), start_cycle=2)
        with pytest.raises(InjectionError):
            campaign.injector.prepare(fault)

    def test_configuration_restored_between_experiments(self, campaign):
        fault = Fault(FaultModel.STUCK_AT,
                      Target(TargetKind.LUT, self._tc_lut(campaign)),
                      start_cycle=2, value=1)
        campaign.run_experiment(fault, 15)
        assert campaign.device.config.diff_frames(
            campaign.impl.golden_bitstream) == []

    def test_permanent_fault_never_removed_within_run(self, campaign):
        # The faulty behaviour must persist to the end of the experiment.
        fault = Fault(FaultModel.STUCK_AT,
                      Target(TargetKind.LUT, self._tc_lut(campaign)),
                      start_cycle=2, value=1, duration_cycles=1.0)
        result = campaign.run_experiment(fault, 20)
        golden = campaign.golden_run(20)
        # Outputs differ on the LAST cycle too (tc forced high).
        device_trace_last = result  # outcome already failure at cycle 2
        assert result.outcome.value == "failure"
