"""Tests for the RTR injection mechanisms (FADES core, paper section 4).

Each mechanism is checked for three things on a small predictable design:
its behavioural effect, its transaction footprint on the board, and exact
configuration restoration afterwards.
"""

import pytest

from repro.core import (Fault, FaultModel, Target, TargetKind,
                        invert_lut_line, stuck_lut_line)
from repro.core.campaign import FadesCampaign
from repro.core.injector import FadesInjector
from repro.errors import LocationError
from repro.fpga import Board, implement
from repro.synth import synthesize

from helpers import build_accumulator, build_counter


def make_campaign(netlist, inputs=None, arch=None, **kwargs):
    result = synthesize(netlist)
    impl = implement(result.mapped, arch=arch)
    return FadesCampaign(impl, result.locmap, board=Board(),
                         inputs=inputs or {}, **kwargs)


@pytest.fixture()
def counter_campaign():
    return make_campaign(build_counter(4), inputs={"en": 1})


@pytest.fixture(scope="module")
def paper_counter_campaign():
    # Full-download cost assertions need the paper-class device, whose
    # configuration file is ~750 KiB (a demo device's is a few KiB).
    from repro.fpga import virtex1000_like
    return make_campaign(build_counter(4), inputs={"en": 1},
                         arch=virtex1000_like())


@pytest.fixture()
def accum_campaign():
    return make_campaign(build_accumulator(),
                         inputs={"addr": 2, "load": 1})


class TestLutRewriteHelpers:
    def test_output_inversion(self):
        assert invert_lut_line(0x00FF, -1) == 0xFF00

    def test_input_inversion_swaps_cofactors(self):
        # f = input0: inverting input 0 complements the function.
        tt_i0 = 0b1010101010101010
        assert invert_lut_line(tt_i0, 0) == 0b0101010101010101

    def test_input_inversion_is_involution(self):
        tt = 0xBEEF
        for line in range(4):
            assert invert_lut_line(invert_lut_line(tt, line), line) == tt

    def test_stuck_line_output(self):
        assert stuck_lut_line(0x1234, -1, 0) == 0x0000
        assert stuck_lut_line(0x1234, -1, 1) == 0xFFFF

    def test_stuck_input_removes_dependence(self):
        tt = 0xBEEF
        stuck = stuck_lut_line(tt, 2, 1)
        # The stuck table must not depend on input 2 any more.
        for index in range(16):
            assert (stuck >> index) & 1 == (stuck >> (index ^ 4)) & 1


class TestBitflipFf:
    def test_lsr_flips_exactly_one_ff(self, counter_campaign):
        campaign = counter_campaign
        cycles = 12
        golden = campaign.golden_run(cycles)
        bit = campaign.locmap.signal("count").bits[2]  # weight-4 bit
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, bit.index),
                      start_cycle=5)
        result = campaign.run_experiment(fault, cycles)
        divergence = result.first_divergence
        assert divergence is not None
        golden_value = golden.samples[divergence][0]
        faulty_value = golden_value ^ 4
        # The counter continues from the flipped value.
        assert result.outcome.value in ("failure", "latent")

    def test_lsr_uses_three_transactions(self, counter_campaign):
        campaign = counter_campaign
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0),
                      start_cycle=3)
        result = campaign.run_experiment(fault, 10)
        assert result.cost.transactions == 3

    def test_gsr_flips_target_and_preserves_others(self, counter_campaign):
        campaign = counter_campaign
        cycles = 12
        golden = campaign.golden_run(cycles)
        bit = campaign.locmap.signal("count").bits[1]
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, bit.index),
                      start_cycle=6, mechanism="gsr")
        result = campaign.run_experiment(fault, cycles)
        assert result.first_divergence is not None
        # Only bit 1 flips: value differs by exactly +-2 at the divergence.
        index = result.first_divergence

    def test_gsr_transfers_far_more_than_lsr(self, paper_counter_campaign):
        campaign = paper_counter_campaign
        lsr = campaign.run_experiment(
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 3), 10)
        gsr = campaign.run_experiment(
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 3,
                  mechanism="gsr"), 10)
        assert gsr.cost.transfer_s > 5 * lsr.cost.transfer_s

    def test_config_restored_after_experiment(self, counter_campaign):
        campaign = counter_campaign
        campaign.run_experiment(
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 1), 4), 10)
        assert campaign.device.config.diff_frames(
            campaign.impl.golden_bitstream) == []

    def test_unplaced_ff_raises(self, counter_campaign):
        campaign = counter_campaign
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 999), 3)
        with pytest.raises(LocationError):
            campaign.injector.prepare(fault)


class TestBitflipMemory:
    def test_flip_changes_accumulation(self, accum_campaign):
        campaign = accum_campaign
        cycles = 16
        # mem[2] = 7; flipping bit 3 early changes the running sum.
        fault = Fault(FaultModel.BITFLIP,
                      Target(TargetKind.MEMORY_BIT, 0, addr=2, bit=3),
                      start_cycle=2)
        result = campaign.run_experiment(fault, cycles)
        assert result.outcome.value == "failure"

    def test_two_transactions(self, accum_campaign):
        fault = Fault(FaultModel.BITFLIP,
                      Target(TargetKind.MEMORY_BIT, 0, addr=9, bit=0),
                      start_cycle=2)
        result = accum_campaign.run_experiment(fault, 10)
        assert result.cost.transactions == 2

    def test_unused_location_is_latent(self, accum_campaign):
        # A flip in a never-read word only shows in the final state.
        fault = Fault(FaultModel.BITFLIP,
                      Target(TargetKind.MEMORY_BIT, 0, addr=15, bit=7),
                      start_cycle=2)
        result = accum_campaign.run_experiment(fault, 10)
        assert result.outcome.value == "latent"


class TestPulse:
    def test_lut_pulse_transient(self, counter_campaign):
        campaign = counter_campaign
        cycles = 16
        location = campaign.locmap.signal("tc")
        lut_bit = location.bits[0]
        assert lut_bit.kind == "lut"
        fault = Fault(FaultModel.PULSE,
                      Target(TargetKind.LUT, lut_bit.index),
                      start_cycle=4, duration_cycles=2.0)
        result = campaign.run_experiment(fault, cycles)
        # tc is purely combinational: inverted during the window only.
        golden = campaign.golden_run(cycles)
        assert result.outcome.value == "failure"
        assert result.first_divergence == 4

    def test_long_pulse_costs_double(self, counter_campaign):
        campaign = counter_campaign
        location = campaign.locmap.signal("tc")
        target = Target(TargetKind.LUT, location.bits[0].index)
        short = campaign.run_experiment(
            Fault(FaultModel.PULSE, target, 4, duration_cycles=0.5,
                  phase=0.1), 12)
        long = campaign.run_experiment(
            Fault(FaultModel.PULSE, target, 4, duration_cycles=3.0), 12)
        assert short.cost.transactions == 3
        assert long.cost.transactions == 6

    def test_non_straddling_subcycle_pulse_is_silent(self, counter_campaign):
        campaign = counter_campaign
        location = campaign.locmap.signal("tc")
        target = Target(TargetKind.LUT, location.bits[0].index)
        fault = Fault(FaultModel.PULSE, target, 4, duration_cycles=0.3,
                      phase=0.1)  # 0.1 + 0.3 < 1: no edge covered
        result = campaign.run_experiment(fault, 12)
        assert result.outcome.value == "silent"
        assert result.cost.transactions == 3  # cost paid regardless

    def test_lut_input_line_pulse(self, counter_campaign):
        campaign = counter_campaign
        location = campaign.locmap.signal("tc")
        index = location.bits[0].index
        lut = campaign.locmap.mapped.luts[index]
        fault = Fault(FaultModel.PULSE,
                      Target(TargetKind.LUT, index, line=0),
                      start_cycle=4, duration_cycles=1.0)
        result = campaign.run_experiment(fault, 12)
        assert campaign.device.config.diff_frames(
            campaign.impl.golden_bitstream) == []

    def test_cb_input_pulse_on_routed_ff(self):
        # Build a design with an unpacked FF: a register fed by another
        # register (no LUT between them).
        from repro.hdl import Rtl
        rtl = Rtl("pipe")
        a = rtl.input("a", 1)
        r1 = rtl.register("r1", 1)
        r2 = rtl.register("r2", 1)
        r1.drive(a)
        r2.drive(r1.q)
        rtl.output("o", r2.q)
        campaign = make_campaign(rtl.build(), inputs={"a": 1})
        # Find the unpacked FF.
        placement = campaign.impl.placement
        routed = [i for i, site in placement.site_of_ff.items()
                  if not placement.sites[site].packed]
        assert routed
        fault = Fault(FaultModel.PULSE,
                      Target(TargetKind.CB_INPUT, routed[0]),
                      start_cycle=3, duration_cycles=2.0)
        result = campaign.run_experiment(fault, 10)
        assert result.outcome.value in ("failure", "latent")
        assert result.cost.transactions == 2

    def test_cb_input_pulse_rejected_on_packed_ff(self, counter_campaign):
        campaign = counter_campaign
        placement = campaign.impl.placement
        packed = [i for i, site in placement.site_of_ff.items()
                  if placement.sites[site].packed]
        assert packed
        fault = Fault(FaultModel.PULSE,
                      Target(TargetKind.CB_INPUT, packed[0]),
                      start_cycle=3, duration_cycles=1.0)
        with pytest.raises(LocationError):
            campaign.injector.prepare(fault)


class TestDelay:
    def test_fanout_mechanism_small_magnitude(self, counter_campaign):
        campaign = counter_campaign
        net = campaign.locmap.mapped.ffs[0].q
        fault = Fault(FaultModel.DELAY, Target(TargetKind.NET, net),
                      start_cycle=4, duration_cycles=2.0, magnitude_ns=0.1)
        injection = campaign.injector.prepare(fault)
        assert type(injection).__name__ == "_FanoutDelay"
        result = campaign.run_experiment(fault, 12)
        # 0.1 ns cannot break a multi-ns slack.
        assert result.outcome.value == "silent"

    def test_reroute_mechanism_large_magnitude(self, counter_campaign):
        campaign = counter_campaign
        period = campaign.impl.timing.period
        net = campaign.locmap.mapped.ffs[0].q
        fault = Fault(FaultModel.DELAY, Target(TargetKind.NET, net),
                      start_cycle=4, duration_cycles=3.0,
                      magnitude_ns=period + 10)
        injection = campaign.injector.prepare(fault)
        assert type(injection).__name__ == "_RerouteDelay"
        result = campaign.run_experiment(fault, 16)
        assert result.outcome.value in ("failure", "latent")

    def test_delay_removed_after_window(self, counter_campaign):
        campaign = counter_campaign
        net = campaign.locmap.mapped.ffs[0].q
        period = campaign.impl.timing.period
        fault = Fault(FaultModel.DELAY, Target(TargetKind.NET, net),
                      start_cycle=4, duration_cycles=2.0,
                      magnitude_ns=period + 10)
        campaign.run_experiment(fault, 16)
        assert campaign.impl.timing.violating_ffs() == set()
        assert campaign.impl.routing.route_of(net).detour_hops == 0
        assert campaign.device.config.diff_frames(
            campaign.impl.golden_bitstream) == []

    def test_full_download_dominates_cost(self, paper_counter_campaign):
        campaign = paper_counter_campaign
        net = campaign.locmap.mapped.ffs[0].q
        fault = Fault(FaultModel.DELAY, Target(TargetKind.NET, net),
                      start_cycle=4, duration_cycles=2.0, magnitude_ns=50.0)
        result = campaign.run_experiment(fault, 12)
        bitflip = campaign.run_experiment(
            Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 4), 12)
        assert result.cost.transfer_s > 2 * bitflip.cost.transfer_s


class TestIndetermination:
    def test_ff_forced_to_random_value_during_window(self, counter_campaign):
        campaign = counter_campaign
        fault = Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 0),
                      start_cycle=4, duration_cycles=4.0, value=1)
        result = campaign.run_experiment(fault, 14)
        assert campaign.device.config.diff_frames(
            campaign.impl.golden_bitstream) == []

    def test_oscillating_costs_scale_with_duration(self, counter_campaign):
        campaign = counter_campaign
        fixed = campaign.run_experiment(
            Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 0),
                  2, duration_cycles=8.0, value=1), 14)
        oscillating = campaign.run_experiment(
            Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 0),
                  2, duration_cycles=8.0, oscillate=True), 14)
        assert oscillating.cost.transactions > fixed.cost.transactions + 4

    def test_lut_indetermination_forces_constant(self, counter_campaign):
        campaign = counter_campaign
        location = campaign.locmap.signal("tc")
        fault = Fault(FaultModel.INDETERMINATION,
                      Target(TargetKind.LUT, location.bits[0].index),
                      start_cycle=3, duration_cycles=3.0, value=1)
        result = campaign.run_experiment(fault, 12)
        # tc forced to 1 during the window while golden has 0 -> failure.
        assert result.outcome.value == "failure"
        assert result.first_divergence == 3
