"""Table 1 — the fault-model / FPGA-target / mechanism matrix.

Each row is *executed*, not just enumerated: the bench runs one exemplar
fault through every mechanism and records the reconfiguration transactions
it generated, proving the capability matrix is real.
"""

from repro.analysis import generate_table1, render_table1


def test_table1_mechanisms(benchmark, evaluation, record_artefact):
    rows = benchmark.pedantic(generate_table1, args=(evaluation,),
                              iterations=1, rounds=1)
    record_artefact("table1_mechanisms", render_table1(rows))

    by_target = {row.fpga_target: row for row in rows}
    # Every mechanism actually reconfigured the device.
    for row in rows:
        assert row.transactions > 0, f"{row.fpga_target} moved no data"
    # GSR bit-flips need more traffic than LSR ones (paper 4.1).
    assert by_target["FFs (GSR line)"].transactions >= \
        by_target["FFs (LSR line)"].transactions
    # The matrix covers all four transient models.
    assert {row.fault_model for row in rows} == {
        "bitflip", "pulse", "delay", "indetermination"}
