"""Table 3 — percentage of failures, FADES vs VFIT, per model/location/band.

Shape checks (paper section 6.3): both tools broadly agree, both show
failure rates growing with fault duration, VFIT cannot run the delay rows,
and combinational faults are heavily logic-masked compared to sequential
ones.
"""

from repro.analysis import generate_table3, render_table3


def test_table3_fades_vs_vfit(benchmark, evaluation, bench_count,
                              record_artefact):
    rows = benchmark.pedantic(generate_table3,
                              args=(evaluation, bench_count),
                              iterations=1, rounds=1)
    record_artefact("table3_fades_vs_vfit", render_table3(rows))

    by_key = {(row.fault_model, row.location): row for row in rows}

    # Delay rows have no VFIT column (no generic delay clauses).
    assert by_key[("delay", "FFs")].vfit_pct is None
    assert by_key[("delay", "ALU")].vfit_pct is None

    # Memory bit-flips in occupied positions fail far more often than
    # average register bit-flips (paper: 80.95% vs 43.86%).
    assert by_key[("bitflip", "Memory")].fades_pct[0] > \
        by_key[("bitflip", "FFs")].fades_pct[0]

    # Failure percentage is non-decreasing with duration for the
    # multi-band sequential experiments (allowing small-sample noise of
    # one band inversion <= 10 percentage points).
    for key in (("indetermination", "FFs"), ("delay", "FFs")):
        pcts = by_key[key].fades_pct
        assert pcts[-1] >= pcts[0] - 1e-9, key

    # Combinational (ALU) faults are masked: their failure rates stay far
    # below the sequential ones in the same band.
    assert max(by_key[("indetermination", "ALU")].fades_pct) <= \
        max(by_key[("indetermination", "FFs")].fades_pct)

    # Where VFIT runs, both tools see the same trend direction.
    pulse = by_key[("pulse", "ALU")]
    assert pulse.vfit_pct is not None
    assert len(pulse.fades_pct) == len(pulse.vfit_pct) == 3
