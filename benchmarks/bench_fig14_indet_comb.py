"""Figure 14 — indetermination into combinational logic (ALU/MEM/FSM).

Shape: same slow growth with duration as pulses; strong logic masking
(the paper attributes FADES's low combinational failure rates to the large
LUT pool raising "a higher chance of logic masking").
"""

from repro.analysis import generate_fig14


def test_fig14_indet_comb(benchmark, evaluation, bench_count,
                          record_artefact):
    figure = benchmark.pedantic(generate_fig14,
                                args=(evaluation, bench_count),
                                iterations=1, rounds=1)
    record_artefact("fig14_indet_comb", figure.render())

    units = {}
    for bar in figure.bars:
        units.setdefault(bar.label.split()[1], []).append(bar)
    assert set(units) == {"ALU", "MEM", "FSM"}
    for unit, bars in units.items():
        assert bars[2].failure >= bars[0].failure, unit
        # Every experiment classified all its faults.
        assert all(bar.n > 0 for bar in bars)
