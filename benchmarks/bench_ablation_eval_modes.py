"""Ablation 3 — simulation backends: where does the wall-clock go?

Compares cycles-per-second of the three executable semantics over the same
8051 design: the binary model simulator (golden runs), the FPGA device
simulator (FADES experiments) and the four-valued simulator (VFIT).  This
is the substrate-cost picture behind every campaign above; it also pins
down that the device simulator — despite executing from configuration
memory — stays within a small factor of the plain netlist simulator.
"""

import time

from repro.fpga import Device
from repro.hdl import FourValuedSim, NetlistSim


CYCLES = 400


def run_binary(evaluation):
    sim = NetlistSim(evaluation.model.netlist)
    sim.reset()
    sim.run(CYCLES)
    return sim


def run_device(evaluation):
    device = Device(evaluation.fades.impl)
    device.reset_system()
    device.run(CYCLES)
    return device


def run_fourvalued(evaluation):
    sim = FourValuedSim(evaluation.model.netlist)
    sim.reset()
    sim.run(CYCLES)
    return sim


def test_ablation_eval_modes(benchmark, evaluation, record_artefact):
    timings = {}
    for name, runner in [("binary netlist", run_binary),
                         ("fpga device", run_device),
                         ("four-valued", run_fourvalued)]:
        start = time.perf_counter()
        runner(evaluation)
        timings[name] = time.perf_counter() - start
    # Benchmark the device path formally (the dominant campaign cost).
    benchmark.pedantic(run_device, args=(evaluation,),
                       iterations=1, rounds=3)

    lines = [f"Ablation 3: simulation backends over {CYCLES} cycles "
             "of the 8051",
             f"{'backend':<16} {'seconds':>8} {'cycles/s':>10}"]
    for name, seconds in timings.items():
        lines.append(f"{name:<16} {seconds:>8.3f} "
                     f"{CYCLES / seconds:>10.0f}")
    record_artefact("ablation_eval_modes", "\n".join(lines))

    # The device simulator must stay within ~5x of the raw netlist
    # simulator, and the four-valued semantics is the slowest backend.
    assert timings["fpga device"] < 5 * timings["binary netlist"] + 0.5
    assert timings["four-valued"] >= timings["binary netlist"]
