"""Ablation 1 — GSR- vs LSR-based FF bit-flips (DESIGN.md, section 5).

The paper proposes the LSR mechanism precisely because the GSR one must
move the state of *every* flip-flop through the configuration port.  This
ablation quantifies that: both mechanisms must produce the same behavioural
effect while differing massively in transferred bytes.
"""

from repro.core import Fault, FaultModel, Target, TargetKind


def run_pair(evaluation, ff_index, start):
    fades = evaluation.fades
    cycles = evaluation.cycles
    results = {}
    for mechanism in ("lsr", "gsr"):
        fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, ff_index),
                      start, mechanism=mechanism)
        results[mechanism] = fades.run_experiment(fault, cycles)
    return results


def test_ablation_gsr_vs_lsr(benchmark, evaluation, record_artefact):
    pairs = benchmark.pedantic(
        lambda: [run_pair(evaluation, ff, 40 + 13 * ff)
                 for ff in (0, 5, 11)],
        iterations=1, rounds=1)

    lines = ["Ablation 1: GSR vs LSR bit-flip mechanisms",
             f"{'FF':>3} {'mech':>5} {'outcome':<8} {'txns':>5} "
             f"{'emulated s':>11}"]
    for index, pair in enumerate(pairs):
        for mechanism, result in pair.items():
            lines.append(
                f"{index:>3} {mechanism:>5} {result.outcome.value:<8} "
                f"{result.cost.transactions:>5} "
                f"{result.cost.total_s:>11.3f}")
    record_artefact("ablation_gsr_vs_lsr", "\n".join(lines))

    for pair in pairs:
        lsr, gsr = pair["lsr"], pair["gsr"]
        # Identical fault, identical behavioural effect.
        assert lsr.outcome == gsr.outcome
        assert lsr.first_divergence == gsr.first_divergence
        # The GSR path moves far more configuration data (paper 4.1).
        assert gsr.cost.transfer_s > 5 * lsr.cost.transfer_s
        assert lsr.cost.transactions == 3
