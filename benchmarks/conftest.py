"""Shared fixtures for the evaluation benchmarks.

Every bench regenerates one artefact of the paper's evaluation section
(tables 1-4, figures 10-15) plus the ablations listed in ``DESIGN.md``.
Artefact renderings are printed and also written to
``benchmarks/results/<name>.txt`` so the run leaves an inspectable record.

Scale: the paper used 3000 faults per experiment; benches default to a
small count (see ``repro.analysis.experiments.default_fault_count``) and
honour ``REPRO_FAULTS=<n>`` / ``REPRO_PAPER_SCALE=1``.
"""

import os
import pathlib

import pytest

from repro.analysis import Evaluation

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def evaluation():
    """One shared 8051+Bubblesort testbed for the whole bench session."""
    return Evaluation()


@pytest.fixture(scope="session")
def bench_count():
    """Faults per experiment class for bench runs."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        return 3000
    return int(os.environ.get("REPRO_FAULTS", "12"))


@pytest.fixture()
def record_artefact():
    """Print an artefact rendering and persist it under results/."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _record
