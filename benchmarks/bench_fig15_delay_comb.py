"""Figure 15 — delay into combinational logic (ALU/MEM/FSM).

Shape: failures grow with duration but stay low in absolute terms — the
correct value eventually propagates, so a delayed combinational line "may
or may not affect the circuit driven by this cell" (paper 6.3).
"""

from repro.analysis import generate_fig15


def test_fig15_delay_comb(benchmark, evaluation, bench_count,
                          record_artefact):
    figure = benchmark.pedantic(generate_fig15,
                                args=(evaluation, bench_count),
                                iterations=1, rounds=1)
    record_artefact("fig15_delay_comb", figure.render())

    units = {}
    for bar in figure.bars:
        units.setdefault(bar.label.split()[1], []).append(bar)
    assert set(units) == {"ALU", "MEM", "FSM"}
    for unit, bars in units.items():
        assert len(bars) == 3
        assert bars[2].failure >= bars[0].failure, unit
    # Sub-cycle delay faults are almost always absorbed.
    subcycle = [bars[0].failure for bars in units.values()]
    assert min(subcycle) <= 25.0
