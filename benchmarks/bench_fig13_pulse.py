"""Figure 13 — pulse outcomes per combinational unit (ALU/MEM/FSM).

Shape (paper section 6.3): failure percentages "slowly increase with the
duration of the fault", with heavy logic masking overall and the control
FSM as the most failure-sensitive unit.
"""

from repro.analysis import generate_fig13


def test_fig13_pulse(benchmark, evaluation, bench_count, record_artefact):
    figure = benchmark.pedantic(generate_fig13,
                                args=(evaluation, bench_count),
                                iterations=1, rounds=1)
    record_artefact("fig13_pulse", figure.render())

    units = {}
    for bar in figure.bars:
        unit = bar.label.split()[1]
        units.setdefault(unit, []).append(bar)
    assert set(units) == {"ALU", "MEM", "FSM"}

    for unit, bars in units.items():
        assert len(bars) == 3
        # Failure percentage grows (or holds) with the duration band.
        assert bars[2].failure >= bars[0].failure, unit
        # Sub-cycle pulses are mostly masked.
        assert bars[0].failure <= 50.0, unit
