"""Extension bench — multiple bit-flips (paper §8 / §7.2).

Two studies:

* failure rate vs MBU multiplicity (1/2/4 simultaneous FF flips) — wider
  upsets defeat more masking;
* pulse-equivalence: for a sample of combinational LUTs, the multiple
  bit-flip measured from a one-cycle pulse must reproduce the pulse's
  classification (the emulation path the paper sketches in §7.2).
"""

import random

from repro.core import (Fault, FaultModel, Target, TargetKind,
                        multi_ff_bitflip, pulse_equivalent_mbu)


def test_extension_mbu(benchmark, evaluation, bench_count, record_artefact):
    fades = evaluation.fades
    cycles = evaluation.cycles
    n_ffs = len(fades.locmap.mapped.ffs)
    count = max(bench_count, 10)

    def run_all():
        rng = random.Random(9)
        by_width = {}
        for width in (1, 2, 4):
            faults = [multi_ff_bitflip(rng.sample(range(n_ffs), width),
                                       rng.randrange(cycles))
                      for _ in range(count)]
            by_width[width] = fades.run_faults(
                faults, cycles, label=f"mbu{width}")
        # Pulse-equivalence sample.
        matched = checked = 0
        n_luts = len(fades.locmap.mapped.luts)
        probe = max(4, cycles // 3)
        for lut_index in range(0, n_luts, max(1, n_luts // 10)):
            equivalent = pulse_equivalent_mbu(fades, lut_index, probe)
            if equivalent.mbu is None:
                continue
            pulse = Fault(FaultModel.PULSE,
                          Target(TargetKind.LUT, lut_index), probe,
                          duration_cycles=1.0)
            checked += 1
            matched += (fades.run_experiment(pulse, cycles).outcome
                        == fades.run_experiment(equivalent.mbu,
                                                cycles).outcome)
        return by_width, matched, checked

    by_width, matched, checked = benchmark.pedantic(run_all, iterations=1,
                                                    rounds=1)

    lines = ["Extension: multiple bit-flips (MBU)",
             f"{'width':>6} {'failure%':>9} {'latent%':>8} {'silent%':>8}"]
    for width, result in by_width.items():
        counts = result.counts()
        lines.append(f"{width:>6} "
                     f"{100 * counts.failure / counts.total:>9.1f} "
                     f"{100 * counts.latent / counts.total:>8.1f} "
                     f"{100 * counts.silent / counts.total:>8.1f}")
    lines.append("")
    lines.append(f"pulse-equivalent MBU reproduced the pulse outcome for "
                 f"{matched}/{checked} sampled LUTs")
    record_artefact("extension_mbu", "\n".join(lines))

    # Shape: wider upsets are at least as dangerous as single flips.
    assert by_width[4].failure_percent() >= \
        by_width[1].failure_percent() - 1e-9
    # The §7.2 emulation path holds for the overwhelming majority.
    assert checked > 0
    assert matched >= checked * 0.8
