"""Figure 12 — delay and indetermination into sequential logic.

Shape (paper section 6.3): "In both cases, the percentage of failures in
the system increases with the duration of the faults... Delays are less
likely to cause a failure" than indeterminations at short durations.
"""

from repro.analysis import generate_fig12


def test_fig12_seq_delay_indet(benchmark, evaluation, bench_count,
                               record_artefact):
    figure = benchmark.pedantic(generate_fig12,
                                args=(evaluation, bench_count),
                                iterations=1, rounds=1)
    record_artefact("fig12_seq_delay_indet", figure.render())

    delay = [bar for bar in figure.bars if bar.label.startswith("delay")]
    indet = [bar for bar in figure.bars
             if bar.label.startswith("indetermination")]
    assert len(delay) == len(indet) == 3

    # Failures grow with duration for both models (band <1 vs band 11-20).
    assert delay[2].failure >= delay[0].failure
    assert indet[2].failure >= indet[0].failure
    # Short delays are the least dangerous class of the figure.
    assert delay[0].failure <= indet[0].failure + 10.0
