"""Figure 11 — bit-flip outcomes: pre-screened registers vs occupied memory.

Paper section 6.3: "the occurrence of a bit-flip in the selected memory
positions will very likely cause a failure in the system, while one out of
two bit-flips in any of the targeted registers will have the same effect."
"""

import pytest

from repro.analysis import generate_fig11


def test_fig11_bitflip(benchmark, evaluation, bench_count, record_artefact):
    figure = benchmark.pedantic(
        generate_fig11, args=(evaluation, bench_count),
        kwargs={"screen": True}, iterations=1, rounds=1)
    record_artefact("fig11_bitflip", figure.render())

    registers, memory = figure.bars
    # Memory bit-flips in occupied positions very likely cause failures.
    assert memory.failure >= 50.0
    # Screened registers fail substantially (paper ~44%), and memory is
    # the more dangerous target.
    assert registers.failure > 0.0
    assert memory.failure >= registers.failure
    # Percentages are consistent.
    for bar in figure.bars:
        assert bar.failure + bar.latent + bar.silent == \
            pytest.approx(100.0)
