"""Observability overhead — tracing and live observability must be cheap.

Runs the same fault-injection workload through one
:class:`~repro.runtime.jobspec.JobRunner` under two instrumentation
regimes and asserts each costs less than 5% of campaign wall-clock:

* **tracing** — spans disabled vs. enabled, guarding the per-experiment
  hot path (every experiment opens reconfigure/run/readback/classify
  spans, so a regression multiplies across whole campaigns);
* **live** — bare per-record loop vs. the full ``--serve-obs`` stack
  (``CampaignMetrics`` accounting, the ``.tsdb`` time-series sampler at
  its default interval, the built-in alert rules, and a running
  ``ObsServer`` being scraped concurrently).  The barrier-clock design
  promises near-zero hot-path cost; this bench is the number behind
  that promise.

Scale: 200 faults by default (``REPRO_OBS_BENCH_FAULTS=<n>`` overrides);
timings are min-of-3 to shed scheduler noise.  Both verdicts are merged
into ``benchmarks/results/BENCH_obs_overhead.json`` under their mode
key.
"""

import json
import os
import pathlib
import threading
import time
import urllib.request

from repro.core import FaultModel
from repro.obs.alerts import AlertEngine
from repro.obs.server import ObsServer
from repro.obs.timeseries import TimeseriesSampler
from repro.obs.tracing import TRACER
from repro.runtime import CampaignJobSpec
from repro.runtime.jobspec import JobRunner
from repro.runtime.metrics import CampaignMetrics

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
RESULT_FILE = "BENCH_obs_overhead.json"

MAX_OVERHEAD = 0.05
ROUNDS = 3
#: ``repro top`` default refresh cadence — the realistic scrape load.
SCRAPE_INTERVAL_S = 1.0


def _persist(mode, result):
    """Merge one mode's verdict into the shared result file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / RESULT_FILE
    payload = {}
    if path.exists():
        try:
            payload = json.loads(path.read_text())
        except ValueError:
            payload = {}
    if not isinstance(payload, dict) or "overhead_fraction" in payload:
        # Legacy flat layout from before the live mode existed.
        payload = {"tracing": payload} if payload else {}
    payload[mode] = result
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _bench_spec(evaluation):
    count = int(os.environ.get("REPRO_OBS_BENCH_FAULTS", "200"))
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", count=count)
    jobspec = CampaignJobSpec.from_evaluation(evaluation, spec)
    return JobRunner(jobspec), tuple(range(count))


def _time_runs(runner, indices, enabled):
    best = float("inf")
    for _ in range(ROUNDS):
        TRACER.reset(enabled=enabled)
        start = time.perf_counter()
        records = runner.run_indices(indices)
        best = min(best, time.perf_counter() - start)
        assert len(records) == len(indices)
        events = TRACER.drain()
        if enabled:
            assert len(events) >= len(indices)  # spans really recorded
        else:
            assert events == []
    TRACER.disable()
    return best


def test_tracing_overhead_under_5_percent(evaluation, record_artefact):
    runner, indices = _bench_spec(evaluation)
    count = len(indices)

    disabled_s = _time_runs(runner, indices, enabled=False)
    enabled_s = _time_runs(runner, indices, enabled=True)
    overhead = (enabled_s - disabled_s) / disabled_s

    result = {
        "faults": count,
        "rounds": ROUNDS,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
    }
    _persist("tracing", result)
    record_artefact(
        "obs_overhead",
        f"tracing overhead: {count} faults | "
        f"disabled {disabled_s:.3f} s | enabled {enabled_s:.3f} s | "
        f"overhead {overhead * 100:+.2f}% (budget "
        f"{MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"tracing adds {overhead * 100:.1f}% (> "
        f"{MAX_OVERHEAD * 100:.0f}% budget)")


def _run_per_record(runner, indices, observe=None):
    """Per-record loop shared by both live-bench sides.

    The bare side runs the identical loop shape so the measured delta
    is purely the observability work, not ``run_index`` call overhead.
    """
    records = []
    for index in indices:
        record = runner.run_index(index)
        records.append(record)
        if observe is not None:
            observe(record)
    return records


def _time_bare_runs(runner, indices):
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        records = _run_per_record(runner, indices)
        best = min(best, time.perf_counter() - start)
        assert len(records) == len(indices)
    return best


def _time_live_runs(runner, indices, tsdb_dir):
    best = float("inf")
    for round_no in range(ROUNDS):
        metrics = CampaignMetrics()
        metrics.total = len(indices)
        sampler = TimeseriesSampler(
            path=str(tsdb_dir / f"bench{round_no}.tsdb"))
        alerts = AlertEngine()
        server = ObsServer("127.0.0.1:0",
                           status_provider=metrics.snapshot)
        server.start()
        stop = threading.Event()

        def scrape():
            # A live dashboard polling /metrics while the campaign
            # runs; its lock/GIL contention lands on the hot loop and
            # must fit the same budget.
            url = server.url + "/metrics"
            while not stop.is_set():
                try:
                    urllib.request.urlopen(url, timeout=1.0).read()
                except OSError:
                    pass
                stop.wait(SCRAPE_INTERVAL_S)

        scraper = threading.Thread(target=scrape, daemon=True)
        state = {"prev": None}

        def observe(record):
            metrics.record(record)
            sample = sampler.sample(metrics.snapshot())
            if sample is not None:
                alerts.evaluate(sample, state["prev"])
                state["prev"] = sample

        try:
            scraper.start()
            start = time.perf_counter()
            records = _run_per_record(runner, indices, observe)
            best = min(best, time.perf_counter() - start)
        finally:
            stop.set()
            scraper.join(timeout=5.0)
            server.close()
            sampler.sample(metrics.snapshot(), force=True)
            sampler.close()
        assert len(records) == len(indices)
        assert sampler.last is not None  # the sampler really sampled
    return best


def test_live_observability_overhead_under_5_percent(
        evaluation, record_artefact, tmp_path):
    runner, indices = _bench_spec(evaluation)
    count = len(indices)
    TRACER.disable()

    bare_s = _time_bare_runs(runner, indices)
    live_s = _time_live_runs(runner, indices, tmp_path)
    overhead = (live_s - bare_s) / bare_s

    result = {
        "faults": count,
        "rounds": ROUNDS,
        "bare_s": round(bare_s, 4),
        "live_s": round(live_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
        "scrape_interval_s": SCRAPE_INTERVAL_S,
    }
    _persist("live", result)
    record_artefact(
        "obs_live_overhead",
        f"live observability overhead: {count} faults | "
        f"bare {bare_s:.3f} s | live {live_s:.3f} s | "
        f"overhead {overhead * 100:+.2f}% (budget "
        f"{MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"live observability adds {overhead * 100:.1f}% (> "
        f"{MAX_OVERHEAD * 100:.0f}% budget)")
