"""Observability overhead — tracing must be (near) free when off.

Runs the same fault-injection workload twice through one
:class:`~repro.runtime.jobspec.JobRunner` — spans disabled, then
enabled — and asserts the tracing layer costs less than 5% of campaign
wall-clock.  The margin guards the hot path: every experiment opens a
handful of spans (experiment/reconfigure/run/readback/classify), so a
regression here multiplies across whole campaigns.

Scale: 200 faults by default (``REPRO_OBS_BENCH_FAULTS=<n>`` overrides);
timings are min-of-3 to shed scheduler noise.  The verdict is persisted
to ``benchmarks/results/BENCH_obs_overhead.json``.
"""

import json
import os
import pathlib
import time

from repro.core import FaultModel
from repro.obs.tracing import TRACER
from repro.runtime import CampaignJobSpec
from repro.runtime.jobspec import JobRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

MAX_OVERHEAD = 0.05
ROUNDS = 3


def _time_runs(runner, indices, enabled):
    best = float("inf")
    for _ in range(ROUNDS):
        TRACER.reset(enabled=enabled)
        start = time.perf_counter()
        records = runner.run_indices(indices)
        best = min(best, time.perf_counter() - start)
        assert len(records) == len(indices)
        events = TRACER.drain()
        if enabled:
            assert len(events) >= len(indices)  # spans really recorded
        else:
            assert events == []
    TRACER.disable()
    return best


def test_tracing_overhead_under_5_percent(evaluation, record_artefact):
    count = int(os.environ.get("REPRO_OBS_BENCH_FAULTS", "200"))
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", count=count)
    jobspec = CampaignJobSpec.from_evaluation(evaluation, spec)
    runner = JobRunner(jobspec)
    indices = tuple(range(count))

    disabled_s = _time_runs(runner, indices, enabled=False)
    enabled_s = _time_runs(runner, indices, enabled=True)
    overhead = (enabled_s - disabled_s) / disabled_s

    result = {
        "faults": count,
        "rounds": ROUNDS,
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "overhead_fraction": round(overhead, 4),
        "budget_fraction": MAX_OVERHEAD,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(
        json.dumps(result, indent=2) + "\n")
    record_artefact(
        "obs_overhead",
        f"tracing overhead: {count} faults | "
        f"disabled {disabled_s:.3f} s | enabled {enabled_s:.3f} s | "
        f"overhead {overhead * 100:+.2f}% (budget "
        f"{MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD, (
        f"tracing adds {overhead * 100:.1f}% (> "
        f"{MAX_OVERHEAD * 100:.0f}% budget)")
