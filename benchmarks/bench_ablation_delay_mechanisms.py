"""Ablation 2 — delay-fault mechanisms and transfer strategies.

Two axes (DESIGN.md section 5):

* *fan-out loads vs rerouting*: achieved delay per mechanism over a sweep
  of requested magnitudes — fan-out tops out quickly ("good for small
  delays"), rerouting scales ("good for large delays");
* *full vs partial reconfiguration*: the paper was forced to download the
  full configuration file for delays; the partial path it could not use
  is measured here.
"""

from repro.core import Fault, FaultModel, FadesCampaign, Target, TargetKind
from repro.synth import synthesize
from repro.fpga import implement


def achieved_delay(evaluation, magnitude, mechanism):
    fades = evaluation.fades
    timing = fades.impl.timing
    net = fades.locmap.mapped.ffs[0].q
    before = timing.net_delay(net)
    fault = Fault(FaultModel.DELAY, Target(TargetKind.NET, net), 1,
                  duration_cycles=1.0, magnitude_ns=magnitude,
                  mechanism=mechanism)
    injection = fades.injector.prepare(fault)
    injection.inject()
    achieved = timing.net_delay(net) - before
    injection.remove()
    fades._restore_configuration()
    return achieved


def test_ablation_delay_mechanisms(benchmark, evaluation, record_artefact):
    magnitudes = [0.05, 0.5, 2.0, 10.0, 40.0]

    def sweep():
        rows = []
        for magnitude in magnitudes:
            rows.append((magnitude,
                         achieved_delay(evaluation, magnitude, "fanout"),
                         achieved_delay(evaluation, magnitude, "reroute")))
        return rows

    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)

    lines = ["Ablation 2a: achieved delay (ns) per mechanism",
             f"{'requested':>10} {'fanout':>8} {'reroute':>8}"]
    for requested, fanout, reroute in rows:
        lines.append(f"{requested:>10.2f} {fanout:>8.3f} {reroute:>8.3f}")

    # Full vs partial transfer strategy on one representative fault.
    fades = evaluation.fades
    net = fades.locmap.mapped.ffs[0].q
    fault = Fault(FaultModel.DELAY, Target(TargetKind.NET, net), 20,
                  duration_cycles=3.0, magnitude_ns=30.0)
    fades.injector.full_download_delays = True
    full = fades.run_experiment(fault, evaluation.cycles)
    fades.injector.full_download_delays = False
    partial = fades.run_experiment(fault, evaluation.cycles)
    fades.injector.full_download_delays = True

    lines += ["", "Ablation 2b: full vs partial reconfiguration for delays",
              f"full download : {full.cost.transfer_s:8.3f} s/fault",
              f"partial frames: {partial.cost.transfer_s:8.3f} s/fault",
              f"ratio         : {full.cost.transfer_s / partial.cost.transfer_s:8.1f}x"]
    record_artefact("ablation_delay_mechanisms", "\n".join(lines))

    # Fan-out saturates: it cannot reach large magnitudes.
    for requested, fanout, reroute in rows:
        if requested <= 0.5:
            assert fanout > 0.0
        if requested >= 10.0:
            assert fanout < requested / 2
            assert reroute >= requested * 0.5
    # Identical behaviour either way, but partial moves far less data.
    assert full.outcome == partial.outcome
    assert full.cost.transfer_s > 3 * partial.cost.transfer_s
