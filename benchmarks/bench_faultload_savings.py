"""Statistical planner savings — adaptive stopping vs the paper's 3000.

Runs the paper's table-2 bitflip/FFs experiment class twice on the
compiled backend:

* **fixed** — the paper's protocol: 3000 faults, no stopping rule;
* **adaptive** — the same faultload under the sequential controller
  (``epsilon=0.05``, budget 3000): stop once every outcome rate's
  Wilson interval is within ±5 points.

The verdict, persisted to
``benchmarks/results/BENCH_faultload_savings.json``, asserts the
planner's value proposition: the adaptive campaign reaches the same
±epsilon precision with at least ``MIN_SAVINGS``x fewer experiments,
and its reported intervals cover the fixed campaign's point estimates
(the estimate it replaces is inside the uncertainty it reports).

Scale: ``REPRO_FAULTLOAD_BENCH_FAULTS=<n>`` shrinks the fixed budget
for quick local runs (the savings assertion still applies).
"""

import json
import os
import pathlib
import time
from dataclasses import replace

from repro.analysis import Evaluation
from repro.core import FaultModel, Outcome
from repro.runtime import CampaignJobSpec, run_campaign

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: The paper's per-class campaign size (table 2) and the precision the
#: adaptive run must match.
FIXED_FAULTS = 3000
EPSILON = 0.05
MIN_SAVINGS = 2.0

OUTCOMES = ("failure", "latent", "silent")


def _rates(result):
    counts = result.counts()
    return {outcome: counts.percent(Outcome(outcome)) / 100.0
            for outcome in OUTCOMES}


def test_adaptive_campaign_halves_the_experiment_count(record_artefact):
    budget = int(os.environ.get("REPRO_FAULTLOAD_BENCH_FAULTS",
                                str(FIXED_FAULTS)))
    evaluation = Evaluation(backend="compiled")
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", 1, budget)
    fixed_jobspec = CampaignJobSpec.from_evaluation(
        evaluation, spec, faultload_seed=evaluation.seed)
    adaptive_jobspec = replace(fixed_jobspec, epsilon=EPSILON,
                               budget=budget)

    start = time.perf_counter()
    fixed = run_campaign(fixed_jobspec)
    fixed_s = time.perf_counter() - start
    start = time.perf_counter()
    adaptive = run_campaign(adaptive_jobspec)
    adaptive_s = time.perf_counter() - start

    assert adaptive.stop is not None
    n_adaptive = adaptive.stop["n"]
    savings = budget / n_adaptive
    fixed_rates = _rates(fixed)
    coverage = {
        outcome: (adaptive.stop["intervals"][outcome][2]
                  <= fixed_rates[outcome]
                  <= adaptive.stop["intervals"][outcome][3])
        for outcome in OUTCOMES}

    result = {
        "experiment_class": "bitflip/FFs",
        "backend": "compiled",
        "epsilon": EPSILON,
        "fixed_faults": budget,
        "adaptive_faults": n_adaptive,
        "savings_factor": round(savings, 2),
        "min_savings_factor": MIN_SAVINGS,
        "stop_reason": adaptive.stop["reason"],
        "stopping_checks": adaptive.stop["checks"],
        "half_width": adaptive.stop["half_width"],
        "fixed_rates": {k: round(v, 4) for k, v in fixed_rates.items()},
        "adaptive_intervals": adaptive.stop["intervals"],
        "fixed_point_in_adaptive_interval": coverage,
        "fixed_wall_s": round(fixed_s, 2),
        "adaptive_wall_s": round(adaptive_s, 2),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_faultload_savings.json").write_text(
        json.dumps(result, indent=2) + "\n")
    record_artefact(
        "faultload_savings",
        f"statistical planner: fixed {budget} vs adaptive "
        f"{n_adaptive} faults ({savings:.1f}x fewer, "
        f"eps={EPSILON}) | stop={adaptive.stop['reason']} after "
        f"{adaptive.stop['checks']} checks | wall "
        f"{fixed_s:.1f} s -> {adaptive_s:.1f} s")

    assert adaptive.stop["reason"] == "converged", (
        f"adaptive campaign exhausted its budget without reaching "
        f"±{EPSILON}")
    assert adaptive.stop["half_width"] <= EPSILON
    assert savings >= MIN_SAVINGS, (
        f"adaptive campaign used {n_adaptive} of {budget} faults — only "
        f"{savings:.2f}x savings (need >= {MIN_SAVINGS}x)")
    missed = [outcome for outcome, ok in coverage.items() if not ok]
    assert not missed, (
        f"adaptive intervals fail to cover the fixed point estimate "
        f"for: {', '.join(missed)}")


if __name__ == "__main__":
    import pytest
    import sys
    sys.exit(pytest.main([__file__, "-q"]))
