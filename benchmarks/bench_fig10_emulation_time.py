"""Figure 10 — mean emulation time per experiment class (FADES).

Shape checks from the paper's section 6.2: memory bit-flips cheapest,
delays most expensive among the standard classes, and the oscillating
indetermination variant (one reconfiguration per cycle of the fault
window) more expensive than every fixed-value class.
"""

from repro.analysis import generate_fig10


def test_fig10_emulation_time(benchmark, evaluation, bench_count,
                              record_artefact):
    figure = benchmark.pedantic(generate_fig10,
                                args=(evaluation, bench_count),
                                iterations=1, rounds=1)
    record_artefact("fig10_emulation_time", figure.render())

    times = {bar.label: bar.mean_time_s for bar in figure.bars}
    standard = {label: value for label, value in times.items()
                if "osc" not in label}

    assert min(standard, key=standard.get) == "bitflip/Memory"
    assert max(standard, key=standard.get).startswith("delay")
    # Pulse >=1 cycle costs about twice the sub-cycle pulse.
    assert times["pulse/Comb(>=1)"] > 1.5 * times["pulse/Comb(<1)"]
    # Oscillating indetermination beats every fixed-value class
    # (paper: ~4605 s vs <=2778 s per 3000 faults).
    assert times["indet/Sequential osc. 11-20"] > max(standard.values())
