"""Table 2 — FADES vs VFIT emulation time and speed-up.

Reported both as measured on this testbed (short workload, small model —
where, as the paper's section 7.1 predicts, the CPU-based tool looks
relatively better) and projected to the paper's scale (1303-cycle workload,
6000-element model, 3000 faults), where the paper's speed-up ordering and
magnitudes must reappear.

This module also measures the *host-side* backend speed-up: the same
seeded faultload through the reference device simulator and the
bit-parallel compiled backend (``repro.emu``), recorded to
``benchmarks/results/BENCH_table2_speedup.json``.  Runnable standalone::

    python benchmarks/bench_table2_speedup.py --backend compiled
"""

import argparse
import json
import os
import pathlib
import sys
import time

import pytest

from repro.analysis import generate_table2, render_table2
from repro.analysis.experiments import Evaluation
from repro.core import FaultModel

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Faults for the backend speed-up measurement.  Enough to fill the
#: compiled backend's lane batches; the reference path scales linearly.
BACKEND_BENCH_FAULTS = int(os.environ.get("REPRO_EMU_BENCH_FAULTS", "252"))

#: Floor asserted on the compiled backend's host wall-clock advantage.
MIN_BACKEND_SPEEDUP = 20.0


def _time_backend(backend: str, count: int, seed: int = 2006):
    """Wall-clock one bitflip/FFs campaign on *backend*.

    The testbed build and the golden run are warmed outside the timed
    region: the measurement is the experiment loop itself, which is what
    the backends differ on.
    """
    evaluation = Evaluation(seed=seed, backend=backend)
    spec = evaluation.spec(FaultModel.BITFLIP, "ffs", count=count)
    evaluation.fades.golden_run(evaluation.cycles)
    begin = time.perf_counter()
    result = evaluation.run_fades(spec)
    wall_s = time.perf_counter() - begin
    return wall_s, result, evaluation


def measure_backend_speedup(count: int = BACKEND_BENCH_FAULTS,
                            seed: int = 2006) -> dict:
    """Reference vs compiled wall-clock on one seeded faultload."""
    from repro.emu import lane_width

    ref_wall, ref_result, evaluation = _time_backend("reference", count,
                                                     seed)
    emu_wall, emu_result, _ = _time_backend("compiled", count, seed)
    outcomes_match = (
        [e.outcome for e in ref_result.experiments]
        == [e.outcome for e in emu_result.experiments])
    return {
        "experiment": "bitflip/FFs",
        "faults": count,
        "workload_cycles": evaluation.cycles,
        "lanes": lane_width(),
        "reference_wall_s": round(ref_wall, 4),
        "compiled_wall_s": round(emu_wall, 4),
        "speedup": round(ref_wall / emu_wall, 2) if emu_wall else None,
        "outcomes_match": outcomes_match,
        "counts": str(emu_result.counts()),
    }


def record_backend_speedup(payload: dict,
                           output: "pathlib.Path" = None) -> pathlib.Path:
    path = output or RESULTS_DIR / "BENCH_table2_speedup.json"
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def test_table2_speedup(benchmark, evaluation, bench_count, record_artefact):
    rows = benchmark.pedantic(generate_table2,
                              args=(evaluation, bench_count),
                              iterations=1, rounds=1)
    record_artefact("table2_speedup", render_table2(rows))

    by_name = {row.experiment: row for row in rows}

    # Shape 1: memory bit-flips are the cheapest mechanism, delays the
    # most expensive (paper: 536 s vs 2487-2778 s per 3000 faults).
    cheapest = min(rows, key=lambda r: r.fades_mean_s)
    assert cheapest.experiment == "bitflip/Memory"
    slowest = max(rows, key=lambda r: r.fades_mean_s)
    assert slowest.experiment.startswith("delay")

    # Shape 2: sub-cycle pulses cost about half of >=1-cycle pulses
    # ("two injections" needed, paper 6.2).
    ratio = (by_name["pulse/Comb(>=1)"].fades_mean_s
             / by_name["pulse/Comb(<1)"].fades_mean_s)
    assert 1.5 < ratio < 2.5

    # Shape 3: projected speed-ups land near the paper's column —
    # at least an order of magnitude overall, best for memory bit-flips,
    # worst for delays.
    for row in rows:
        assert row.speedup_projected > 1.0
        if row.paper_speedup:
            assert row.speedup_projected == \
                pytest.approx(row.paper_speedup, rel=0.6), row.experiment
    assert by_name["bitflip/Memory"].speedup_projected == max(
        r.speedup_projected for r in rows)
    assert min(r.speedup_projected for r in rows) == min(
        by_name["delay/Sequential"].speedup_projected,
        by_name["delay/Comb"].speedup_projected)


def test_backend_speedup(record_artefact):
    """The compiled backend beats the reference wall-clock by >= 20x.

    Identical outcomes are asserted here too (the dedicated equivalence
    property tests cover every model; this pins the benchmarked pair),
    and the measurement lands in ``BENCH_table2_speedup.json`` so the
    perf trajectory is recorded run over run.
    """
    payload = measure_backend_speedup()
    path = record_backend_speedup(payload)
    record_artefact("backend_speedup",
                    json.dumps(payload, indent=2, sort_keys=True))
    assert payload["outcomes_match"]
    assert payload["speedup"] >= MIN_BACKEND_SPEEDUP, payload
    assert path.exists()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="backend speed-up measurement "
                    "(reference vs compiled, bitflip/FFs)")
    parser.add_argument("--backend", choices=("reference", "compiled"),
                        default="compiled",
                        help="backend under test (timed against the "
                             "reference backend)")
    parser.add_argument("--faults", type=int,
                        default=BACKEND_BENCH_FAULTS)
    parser.add_argument("--output", default=None,
                        help="JSON result path (default "
                             "benchmarks/results/BENCH_table2_speedup"
                             ".json)")
    args = parser.parse_args(argv)
    if args.backend == "reference":
        wall, result, _ = _time_backend("reference", args.faults)
        print(f"reference backend: {wall:.3f} s for {args.faults} faults "
              f"({result.counts()})")
        return 0
    payload = measure_backend_speedup(count=args.faults)
    path = record_backend_speedup(
        payload, pathlib.Path(args.output) if args.output else None)
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"recorded to {path}")
    if not payload["outcomes_match"]:
        print("FAIL: backends disagree on outcomes")
        return 1
    if payload["speedup"] < MIN_BACKEND_SPEEDUP:
        print(f"FAIL: speedup {payload['speedup']} < "
              f"{MIN_BACKEND_SPEEDUP}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
