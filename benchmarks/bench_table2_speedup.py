"""Table 2 — FADES vs VFIT emulation time and speed-up.

Reported both as measured on this testbed (short workload, small model —
where, as the paper's section 7.1 predicts, the CPU-based tool looks
relatively better) and projected to the paper's scale (1303-cycle workload,
6000-element model, 3000 faults), where the paper's speed-up ordering and
magnitudes must reappear.
"""

import pytest

from repro.analysis import generate_table2, render_table2


def test_table2_speedup(benchmark, evaluation, bench_count, record_artefact):
    rows = benchmark.pedantic(generate_table2,
                              args=(evaluation, bench_count),
                              iterations=1, rounds=1)
    record_artefact("table2_speedup", render_table2(rows))

    by_name = {row.experiment: row for row in rows}

    # Shape 1: memory bit-flips are the cheapest mechanism, delays the
    # most expensive (paper: 536 s vs 2487-2778 s per 3000 faults).
    cheapest = min(rows, key=lambda r: r.fades_mean_s)
    assert cheapest.experiment == "bitflip/Memory"
    slowest = max(rows, key=lambda r: r.fades_mean_s)
    assert slowest.experiment.startswith("delay")

    # Shape 2: sub-cycle pulses cost about half of >=1-cycle pulses
    # ("two injections" needed, paper 6.2).
    ratio = (by_name["pulse/Comb(>=1)"].fades_mean_s
             / by_name["pulse/Comb(<1)"].fades_mean_s)
    assert 1.5 < ratio < 2.5

    # Shape 3: projected speed-ups land near the paper's column —
    # at least an order of magnitude overall, best for memory bit-flips,
    # worst for delays.
    for row in rows:
        assert row.speedup_projected > 1.0
        if row.paper_speedup:
            assert row.speedup_projected == \
                pytest.approx(row.paper_speedup, rel=0.6), row.experiment
    assert by_name["bitflip/Memory"].speedup_projected == max(
        r.speedup_projected for r in rows)
    assert min(r.speedup_projected for r in rows) == min(
        by_name["delay/Sequential"].speedup_projected,
        by_name["delay/Comb"].speedup_projected)
