"""Table 4 — one combinational pulse manifests as a *multiple* bit-flip.

The paper's section 7.2 argument for keeping combinational fault models:
a pulse on a combinational path that drives many flip-flops can flip
several registers in the same cycle, with a distribution that depends on
the affected path — single bit-flip campaigns cannot reproduce that.
"""

from repro.analysis import generate_table4, render_table4


def test_table4_multiple_bitflips(benchmark, evaluation, record_artefact):
    rows = benchmark.pedantic(generate_table4, args=(evaluation,),
                              kwargs={"max_rows": 2},
                              iterations=1, rounds=1)
    record_artefact("table4_multiple_bitflips", render_table4(rows))

    assert rows, "no combinational pulse produced a multiple bit-flip"
    for row in rows:
        # The defining property: at least two architectural registers
        # changed from one single-cycle combinational pulse.
        assert len(row.affected) >= 2
        for _name, golden, faulty in row.affected:
            assert golden != faulty
