"""Extension bench — configuration-memory SEUs (paper §8 future work).

Three sampling regimes over the 8051 testbed: uniform over the whole
device, uniform over the occupied region, and targeted on allocated
routing pass transistors.  The headline number is the *essential bits*
fraction per regime.
"""

import random

from repro.core import (config_seu_fault, run_config_seu_campaign,
                        used_route_bit)


def test_extension_config_seu(benchmark, evaluation, bench_count,
                              record_artefact):
    count = max(bench_count, 20)

    def run_all():
        fades = evaluation.fades
        uniform = run_config_seu_campaign(
            fades, count, evaluation.cycles, seed=1)
        occupied = run_config_seu_campaign(
            fades, count, evaluation.cycles, seed=2, occupied_only=True)
        rng = random.Random(3)
        faults = [config_seu_fault(used_route_bit(fades, rng),
                                   rng.randrange(evaluation.cycles))
                  for _ in range(count)]
        targeted = fades.run_faults(faults, evaluation.cycles,
                                    label="config-seu-targeted")
        return uniform, occupied, targeted

    uniform, occupied, targeted = benchmark.pedantic(run_all, iterations=1,
                                                     rounds=1)

    targeted_counts = targeted.counts()
    lines = ["Extension: configuration-memory SEU campaigns",
             "",
             "uniform over whole device:",
             uniform.render(),
             "",
             "uniform over occupied region:",
             occupied.render(),
             "",
             "targeted on allocated routing pass transistors:",
             str(targeted_counts)]
    record_artefact("extension_config_seu", "\n".join(lines))

    # Shape: the design occupies a small fraction of the device, so
    # uniform upsets are overwhelmingly silent; targeted upsets on the
    # design's own routing are dramatically more dangerous.
    assert uniform.essential_fraction <= 0.2
    targeted_essential = 1.0 - targeted_counts.silent / targeted_counts.total
    assert targeted_essential > uniform.essential_fraction
    assert targeted_essential >= 0.25
    # Every upset costs exactly one frame read-modify-write.
    for experiment in uniform.result.experiments:
        assert experiment.cost.transactions == 2
