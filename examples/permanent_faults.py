#!/usr/bin/env python
"""Permanent-fault extension: stuck-at, open-line, bridging, stuck-open.

The paper's section 8 names these models as future work for the framework;
this example exercises the implemented extension on the 8051 testbed and
contrasts permanent against transient behaviour: a permanent fault injected
at cycle t corrupts the system for the rest of its life, so late injections
still fail where an equivalent transient pulse would have been absorbed.

Run:  python examples/permanent_faults.py
"""

from repro.analysis import Evaluation
from repro.core import Fault, FaultModel, Target, TargetKind


def main() -> None:
    evaluation = Evaluation()
    fades = evaluation.fades
    cycles = evaluation.cycles
    alu_luts = fades.locmap.luts_in_unit("ALU")
    print(evaluation.fades.impl.describe())
    print(f"targeting the ALU ({len(alu_luts)} LUTs); "
          f"workload {cycles} cycles\n")

    lut = alu_luts[len(alu_luts) // 2]
    mapped_lut = fades.locmap.mapped.luts[lut]
    experiments = [
        ("stuck-at-0 on LUT output",
         Fault(FaultModel.STUCK_AT, Target(TargetKind.LUT, lut),
               cycles // 4, value=0)),
        ("stuck-at-1 on LUT output",
         Fault(FaultModel.STUCK_AT, Target(TargetKind.LUT, lut),
               cycles // 4, value=1)),
        ("open-line on LUT input 0 (floats low)",
         Fault(FaultModel.OPEN_LINE, Target(TargetKind.LUT, lut, line=0),
               cycles // 4, value=0)),
        ("stuck-at-0 on ACC bit 7 (flip-flop)",
         Fault(FaultModel.STUCK_AT,
               Target(TargetKind.FF,
                      fades.locmap.signal("acc").bits[7].index),
               cycles // 4, value=0)),
        ("stuck-open on state-machine FF",
         Fault(FaultModel.STUCK_OPEN,
               Target(TargetKind.FF,
                      fades.locmap.signal("state").bits[0].index),
               cycles // 4)),
    ]
    if len(mapped_lut.ins) >= 2:
        experiments.append((
            "bridging (short) LUT inputs 0-1",
            Fault(FaultModel.BRIDGING, Target(TargetKind.LUT, lut, line=0),
                  cycles // 4,
                  aux_target=Target(TargetKind.LUT, lut, line=1))))

    print(f"{'permanent fault':<42} {'outcome':<8} {'diverges at'}")
    for label, fault in experiments:
        result = fades.run_experiment(fault, cycles)
        at = result.first_divergence
        print(f"{label:<42} {result.outcome.value:<8} "
              f"{at if at is not None else '-'}")

    # Contrast: the same stuck-at location as a 1-cycle transient pulse,
    # injected very late - usually absorbed.
    late = cycles - 8
    transient = Fault(FaultModel.PULSE, Target(TargetKind.LUT, lut), late,
                      duration_cycles=1.0)
    permanent = Fault(FaultModel.STUCK_AT, Target(TargetKind.LUT, lut),
                      late, value=1)
    print("\nLate injection (cycle {}):".format(late))
    print("  transient pulse :",
          fades.run_experiment(transient, cycles).outcome.value)
    print("  permanent stuck :",
          fades.run_experiment(permanent, cycles).outcome.value)


if __name__ == "__main__":
    main()
