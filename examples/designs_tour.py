#!/usr/bin/env python
"""Tour of the designs library: fault injection beyond the 8051.

Three vignettes:

1. **TMR counter** — the canonical masking structure: single-replica
   bit-flips are outvoted; the campaign quantifies the masking against a
   plain (unprotected) counter.
2. **FIR filter** — datapath faults: pulses in the MAC almost always reach
   the output (arithmetic has no redundancy to hide behind).
3. **UART transmitter** — a waveform-level look at one fault: the golden
   and faulty TXD lines are dumped as VCD files you can open in GTKWave.

Run:  python examples/designs_tour.py
"""

from repro.core import (Fault, FaultLoadSpec, FaultModel, FadesCampaign,
                        Target, TargetKind)
from repro.designs import counter, fir_filter, tmr_counter, uart_tx
from repro.fpga import Board, implement
from repro.hdl import NetlistSim
from repro.hdl.vcd import VcdWriter
from repro.synth import synthesize


def campaign_for(netlist, inputs):
    result = synthesize(netlist)
    impl = implement(result.mapped)
    return FadesCampaign(impl, result.locmap, board=Board(), inputs=inputs)


def tmr_vignette() -> None:
    print("1) TMR counter vs plain counter: bit-flips into flip-flops")
    spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=30,
                         workload_cycles=40)
    plain = campaign_for(counter(4), {"en": 1}).run(spec, seed=11)
    tmr = campaign_for(tmr_counter(4), {"en": 1}).run(spec, seed=11)
    print(f"   plain counter : {plain.counts()}")
    print(f"   TMR counter   : {tmr.counts()}")
    print("   -> the voter masks most single-replica corruption\n")


def fir_vignette() -> None:
    print("2) FIR filter: pulses in the MAC unit")
    fir = campaign_for(fir_filter((1, 3, 3, 1)),
                       {"sample": 0x37, "valid": 1})
    spec = FaultLoadSpec(FaultModel.PULSE, "luts:MAC", count=30,
                         workload_cycles=30, duration_range=(1, 5))
    result = fir.run(spec, seed=7)
    print(f"   MAC pulses    : {result.counts()}")
    print("   -> arithmetic faults propagate readily to the output\n")


def uart_vignette() -> None:
    print("3) UART TX: golden vs faulty frame as VCD waveforms")
    netlist = uart_tx(divider=3)
    campaign = campaign_for(netlist, {"data": 0x5A, "send": 1})
    cycles = 36

    def record(vcd_path, fault=None):
        writer = VcdWriter(["txd", "busy", "state", "shifter"],
                           timescale="25 ns")
        device = campaign.device
        if fault is None:
            device.reset_system()
            injection = None
        else:
            device.reset_system()
            injection = campaign.injector.prepare(fault)
        for cycle in range(cycles):
            if injection is not None and cycle == fault.start_cycle:
                injection.inject()
            device.step(campaign.inputs if cycle == 0 else None)
            writer.sample(device)
        if injection is not None:
            injection.remove()
            campaign._restore_configuration()
        writer.write(vcd_path)
        return writer

    record("uart_golden.vcd")
    shifter_ff = campaign.locmap.signal("shifter").bits[0].index
    fault = Fault(FaultModel.BITFLIP, Target(TargetKind.FF, shifter_ff),
                  start_cycle=8)
    record("uart_faulty.vcd", fault)
    print("   wrote uart_golden.vcd and uart_faulty.vcd "
          "(open both in GTKWave to see the corrupted data bit)\n")


if __name__ == "__main__":
    tmr_vignette()
    fir_vignette()
    uart_vignette()
