#!/usr/bin/env python
"""Configuration-memory SEU study (future-work extension, paper section 8).

When the system under analysis is itself manufactured on an SRAM FPGA, a
particle strike can upset the *configuration* — the logic, routing and
memory planes — not just the user state.  This study runs three campaigns
on the 8051 testbed:

1. uniform upsets over the whole device (the physical scenario):
   most land in unused fabric and are silent — the "essential bits"
   fraction is small;
2. uniform upsets over the occupied region only;
3. targeted upsets on allocated routing pass transistors (worst case):
   a knocked-out pass transistor disconnects a line, which floats low.

Run:  python examples/config_seu_study.py  [upsets-per-campaign, default 40]
"""

import random
import sys

from repro.analysis import Evaluation
from repro.core import (config_seu_fault, plane_bits,
                        run_config_seu_campaign, used_route_bit)


def main(count: int = 40) -> None:
    evaluation = Evaluation()
    fades = evaluation.fades
    arch = fades.device.arch
    print(fades.impl.describe())
    print("configuration planes: "
          + ", ".join(f"{plane}={plane_bits(arch, plane):,} bits"
                      for plane in ("cb", "route", "bram")))
    print()

    whole = run_config_seu_campaign(fades, count, evaluation.cycles,
                                    seed=1)
    print("1) uniform over the whole device")
    print(whole.render())
    print()

    occupied = run_config_seu_campaign(fades, count, evaluation.cycles,
                                       seed=2, occupied_only=True)
    print("2) uniform over the occupied region")
    print(occupied.render())
    print()

    rng = random.Random(3)
    faults = [config_seu_fault(used_route_bit(fades, rng),
                               rng.randrange(evaluation.cycles))
              for _ in range(count)]
    targeted = fades.run_faults(faults, evaluation.cycles,
                                label="config-seu-targeted")
    print("3) targeted: allocated routing pass transistors (worst case)")
    print(targeted.counts())
    print()

    print("Reading the study: the design occupies "
          f"{100 * fades.impl.placement.utilisation()['cbs']:.1f}% of the "
          "device's CBs, so most uniform upsets are silent; targeted "
          "upsets on the design's own routing are dramatically more "
          "dangerous (remaining silents are late injections or lines "
          "idle for the rest of the run).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 40)
