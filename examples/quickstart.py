#!/usr/bin/env python
"""Quickstart: emulate transient faults in a small VLSI model.

Builds a tiny synchronous design with the RTL builder, pushes it through
synthesis and FPGA implementation, and injects one fault of each transient
model through run-time reconfiguration — the complete FADES flow of the
paper's figure 1 in ~60 lines of user code.

Run:  python examples/quickstart.py
"""

from repro.core import (Fault, FaultModel, Target, TargetKind,
                        FadesCampaign)
from repro.fpga import Board, implement
from repro.hdl import Rtl
from repro.synth import synthesize


def build_design():
    """A 8-bit counter with a comparator — our 'VLSI system' under test."""
    rtl = Rtl("demo")
    limit = rtl.input("limit", 8)
    with rtl.unit("CTR"):
        count = rtl.register("count", 8)
        count.drive(rtl.inc(count.q))
    with rtl.unit("CMP"):
        above = rtl.signal("above", rtl.sub(limit, count.q)[1])
    rtl.output("count_out", count.q)
    rtl.output("above_limit", above)
    return rtl.build()


def main():
    netlist = build_design()

    # Synthesis + implementation: technology mapping, placement, routing,
    # timing analysis and the golden configuration bitstream.
    synth = synthesize(netlist)
    impl = implement(synth.mapped)
    print(impl.describe())
    print("HDL->FPGA location map:", synth.locmap.summary())

    # A campaign drives the device purely through reconfiguration.
    campaign = FadesCampaign(impl, synth.locmap, board=Board(),
                             inputs={"limit": 100})
    cycles = 120

    faults = [
        ("bit-flip in count[3] (LSR line)",
         Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 3), 40)),
        ("2-cycle pulse on the comparator LUT",
         Fault(FaultModel.PULSE,
               Target(TargetKind.LUT,
                      synth.locmap.signal("above").bits[0].index),
               60, duration_cycles=2.0)),
        ("delay fault on count[0]'s output line",
         Fault(FaultModel.DELAY,
               Target(TargetKind.NET, synth.mapped.ffs[0].q),
               50, duration_cycles=5.0,
               magnitude_ns=impl.timing.period)),
        ("indetermination held on count[7] for 8 cycles",
         Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 7),
               30, duration_cycles=8.0)),
    ]

    print(f"\n{'experiment':<44} {'outcome':<8} {'txns':>5} "
          f"{'emulated s':>11}")
    for label, fault in faults:
        result = campaign.run_experiment(fault, cycles)
        print(f"{label:<44} {result.outcome.value:<8} "
              f"{result.cost.transactions:>5} {result.cost.total_s:>11.3f}")

    # The device configuration is restored exactly after each experiment.
    assert campaign.device.config.diff_frames(impl.golden_bitstream) == []
    print("\nConfiguration verified identical to the golden bitstream.")


if __name__ == "__main__":
    main()
