#!/usr/bin/env python
"""Multiple bit-flips from combinational pulses (paper section 7.2).

The paper argues that combinational fault models cannot be replaced by
single bit-flips: one pulse on a combinational path that fans out to many
flip-flops lands as a *multiple* bit-flip whose distribution depends on the
affected path.  This study reproduces table 4 and then quantifies the
distribution: for a sample of LUTs, how many registers does a single-cycle
pulse corrupt?

Run:  python examples/multiple_bitflip_study.py
"""

from collections import Counter

from repro.analysis import Evaluation, generate_table4, render_table4
from repro.core import Fault, FaultModel, Target, TargetKind


def flip_width_distribution(evaluation, sample=40, probes=3):
    """For each sampled LUT: the worst-case number of FFs whose state a
    1-cycle pulse changes, probed at several workload phases (how many
    registers a pulse corrupts depends on the machine state when it
    strikes, which is the paper's point about needing the distribution).
    """
    fades = evaluation.fades
    device = fades.device
    cycles = evaluation.cycles
    probe_cycles = [max(4, cycles * (k + 1) // (probes + 2))
                    for k in range(probes)]
    n_luts = len(fades.locmap.mapped.luts)
    widths = Counter()
    step = max(1, n_luts // sample)
    # Dense coverage of the early (control/decode) LUTs, strided beyond.
    indices = sorted(set(range(min(16, n_luts)))
                     | set(range(0, n_luts, step)))
    goldens = {}
    for cycle in probe_cycles:
        device.reset_system()
        device.run(cycle + 1)
        goldens[cycle] = device.ff_state()
    for lut_index in indices:
        worst = 0
        for cycle in probe_cycles:
            fault = Fault(FaultModel.PULSE,
                          Target(TargetKind.LUT, lut_index),
                          cycle, duration_cycles=1.0)
            device.reset_system()
            injection = fades.injector.prepare(fault)
            device.run(cycle)
            injection.inject()
            device.step()
            injection.remove()
            flipped = sum(1 for a, b in zip(goldens[cycle],
                                            device.ff_state()) if a != b)
            worst = max(worst, flipped)
            fades._restore_configuration()
        widths[worst] += 1
    return widths


def main() -> None:
    evaluation = Evaluation()
    print(evaluation.fades.impl.describe(), "\n")

    print(render_table4(generate_table4(evaluation, max_rows=3)))

    widths = flip_width_distribution(evaluation)
    total = sum(widths.values())
    print("\nDistribution: flip-flops corrupted by one combinational "
          "pulse (sampled LUTs)")
    for width in sorted(widths):
        count = widths[width]
        bar = "#" * round(40 * count / total)
        print(f"{width:>3} FFs: {count:>4} LUTs ({100 * count / total:5.1f}%) {bar}")
    multi = sum(count for width, count in widths.items() if width >= 2)
    print(f"\n{100 * multi / total:.1f}% of sampled pulses land as "
          "MULTIPLE bit-flips -> single-bit-flip campaigns cannot emulate "
          "them (paper, section 7.2).")

    demonstrate_mbu_equivalence(evaluation)


def demonstrate_mbu_equivalence(evaluation, sample=12):
    """Close the paper's loop: once a pulse's bit-flip footprint is known,
    the equivalent MBU reproduces its outcome exactly."""
    from repro.core import pulse_equivalent_mbu

    fades = evaluation.fades
    cycles = evaluation.cycles
    probe = max(4, cycles // 3)
    matched = checked = 0
    n_luts = len(fades.locmap.mapped.luts)
    for lut_index in range(0, n_luts, max(1, n_luts // sample)):
        equivalent = pulse_equivalent_mbu(fades, lut_index, probe)
        if equivalent.mbu is None:
            continue
        pulse = Fault(FaultModel.PULSE, Target(TargetKind.LUT, lut_index),
                      probe, duration_cycles=1.0)
        pulse_outcome = fades.run_experiment(pulse, cycles).outcome
        mbu_outcome = fades.run_experiment(equivalent.mbu, cycles).outcome
        checked += 1
        matched += pulse_outcome == mbu_outcome
    print(f"\nMBU equivalence (paper 7.2): for {matched}/{checked} sampled "
          "pulses, injecting the measured multiple bit-flip instead of the "
          "pulse produced the identical classification.")


if __name__ == "__main__":
    main()
