#!/usr/bin/env python
"""The paper's experiment: fault emulation on an 8051 running Bubblesort.

Reproduces section 6 end to end on a reduced scale: the 8051-subset model
sorts an array, faults of all four transient models are injected into the
paper's five location classes (registers, RAM, ALU, memory control, FSM),
and outcomes are classified Failure / Latent / Silent against the golden
run.

Run:  python examples/mc8051_campaign.py  [faults-per-class, default 15]
"""

import sys

from repro.core import FaultLoadSpec, FaultModel, build_fades, render_table, \
    row_from_campaign
from repro.mc8051 import Iss, build_mc8051, bubblesort


def main(count: int = 15) -> None:
    workload = bubblesort([23, 7, 250, 1, 99, 42, 180, 16])
    iss = Iss(workload.rom)
    iss.run_until_idle()
    cycles = iss.cycles + 4
    print(f"workload: {workload.description}")
    print(f"golden run: {iss.cycles} clock cycles, "
          f"P1 stream {workload.expected_p1}")

    model = build_mc8051(workload.rom)
    fades = build_fades(model.netlist, seed=42)
    print(fades.impl.describe())
    period = fades.impl.timing.period

    experiments = [
        ("bitflip", "Registers", FaultModel.BITFLIP, "ffs", {}),
        ("bitflip", "RAM", FaultModel.BITFLIP, "memory:iram",
         {"mem_addr_range": (0x00, 0x38)}),
        ("pulse", "ALU", FaultModel.PULSE, "luts:ALU", {}),
        ("pulse", "MEM", FaultModel.PULSE, "luts:MEM", {}),
        ("pulse", "FSM", FaultModel.PULSE, "luts:FSM", {}),
        ("delay", "Sequential", FaultModel.DELAY, "nets:seq",
         {"magnitude_range_ns": (0.1 * period, 0.8 * period)}),
        ("indetermination", "Registers", FaultModel.INDETERMINATION,
         "ffs", {}),
        ("indetermination", "ALU", FaultModel.INDETERMINATION,
         "luts:ALU", {}),
    ]

    rows = []
    for model_name, location, fault_model, pool, extra in experiments:
        spec = FaultLoadSpec(fault_model, pool, count=count,
                             workload_cycles=cycles,
                             duration_range=(1.0, 10.0), **extra)
        result = fades.run(spec)
        rows.append(row_from_campaign(result, model_name, location, "1-10"))

    print()
    print(render_table(
        "Fault emulation campaign on the 8051 (Bubblesort workload)",
        rows,
        note=f"{count} faults per class; durations uniform in 1-10 cycles; "
             "emulated times use the 2006-era board model"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15)
