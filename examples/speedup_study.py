#!/usr/bin/env python
"""Speed-up study: FADES (FPGA emulation) vs VFIT (simulator commands).

Regenerates the paper's table 2 on a reduced campaign and projects the
per-fault costs to the paper's scale (3000 faults, 1303-cycle workload,
~6000-element model).  Also demonstrates the crossover the paper discusses
in section 7.1: on a small model with a short workload, a fast CPU
simulator beats the reconfiguration-bound emulator, while at realistic
model sizes the emulator wins by an order of magnitude.

Run:  python examples/speedup_study.py  [faults-per-class, default 8]
"""

import sys

from repro.analysis import (Evaluation, PAPER_FAULTS_PER_EXPERIMENT,
                            generate_table2, render_table2)


def main(count: int = 8) -> None:
    evaluation = Evaluation()
    print(f"testbed: {evaluation.fades.impl.describe()}")
    print(f"workload: {evaluation.workload.description}, "
          f"{evaluation.cycles} cycles per experiment\n")

    rows = generate_table2(evaluation, count=count)
    print(render_table2(rows))

    print("\nReading the table:")
    print("- 'FADES s/f' / 'VFIT s/f': emulated seconds per fault on THIS")
    print("  testbed (small model, short workload).  As the paper's §7.1")
    print("  notes, here 'modern CPUs overpower FPGAs'.")
    print("- 'proj ...': the same mechanism costs at the paper's scale")
    print(f"  ({PAPER_FAULTS_PER_EXPERIMENT} faults, 1303-cycle workload,")
    print("  ~6000-element model) - the speed-up column should match the")
    print("  paper's table 2 within noise.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
