"""Routing: connect placed resources through programmable matrices.

Paper, section 3: "PMs interconnect the CBs by linking lines that cross the
device both in vertical and horizontal directions...  each connection is
established by means of a pass transistor."  The router walks an L-shaped
(horizontal-then-vertical) path from each net's driver to each of its sinks,
claiming one pass transistor per programmable matrix it traverses.  Trunk
segments are shared: a net claims at most one pass transistor per PM no
matter how many of its sinks pass through it.

The resulting :class:`RoutingDb` is both the structural database (which JBits
exposed for Virtex devices) and the source of the net-load information the
timing model uses — including *extra* loads switched on by the delay-fault
injector (paper, section 4.3, figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import RoutingError
from ..hdl.netlist import CONST0, CONST1
from .architecture import PM_PASS_TRANSISTORS
from .placement import Placement, Site

Pm = Tuple[int, int]


@dataclass
class Pin:
    """A routed input pin of some resource."""

    kind: str          # 'lut' | 'ffin' | 'bram' | 'out'
    index: int         # lut/ff/bram index, or -1 for primary outputs
    pos: int           # input position within the resource
    site: Site


@dataclass
class SinkRoute:
    """The path from a net's driver to one sink pin."""

    pin: Pin
    hops: List[Tuple[int, int, int]] = field(default_factory=list)
    # each hop is (row, col, pass_transistor_index)

    @property
    def length(self) -> int:
        """Number of programmable matrices traversed."""
        return len(self.hops)


@dataclass
class NetRoute:
    """Complete routing of one net."""

    net: int
    driver_site: Site
    sinks: List[SinkRoute] = field(default_factory=list)
    extra_loads: List[Tuple[int, int, int]] = field(default_factory=list)
    detour_hops: int = 0   # extra PM segments (reroute delay faults)
    detour_luts: int = 0   # extra buffer stages (shift-register detours)
    detour_bits: List[Tuple[int, int, int]] = field(default_factory=list)

    @property
    def fanout(self) -> int:
        """Number of sinks plus injected extra loads."""
        return len(self.sinks) + len(self.extra_loads)

    @property
    def pms(self) -> List[Pm]:
        """Distinct programmable matrices the net is routed through."""
        seen: Set[Pm] = set()
        ordered: List[Pm] = []
        for sink in self.sinks:
            for row, col, _pt in sink.hops:
                if (row, col) not in seen:
                    seen.add((row, col))
                    ordered.append((row, col))
        return ordered

    def pass_transistors(self) -> List[Tuple[int, int, int]]:
        """All (row, col, index) pass-transistor bits the net occupies."""
        seen: Set[Tuple[int, int, int]] = set()
        bits: List[Tuple[int, int, int]] = []
        for sink in self.sinks:
            for hop in sink.hops:
                if hop not in seen:
                    seen.add(hop)
                    bits.append(hop)
        bits.extend(self.extra_loads)
        bits.extend(self.detour_bits)
        return bits


class RoutingDb:
    """All net routes of one implementation, plus PM occupancy."""

    def __init__(self, placement: Placement):
        self.placement = placement
        self.routes: Dict[int, NetRoute] = {}
        self.pm_used: Dict[Pm, int] = {}
        #: Bumped on every run-time structural change; consumers (the
        #: device's routing-plane decoder) cache against it.
        self.version = 0

    # -- construction helpers -------------------------------------------
    def claim_pass_transistor(self, pm: Pm) -> int:
        """Allocate the next free pass transistor of *pm*."""
        used = self.pm_used.get(pm, 0)
        if used >= PM_PASS_TRANSISTORS:
            raise RoutingError(
                f"programmable matrix {pm} exhausted its "
                f"{PM_PASS_TRANSISTORS} pass transistors (congestion)")
        self.pm_used[pm] = used + 1
        return used

    def free_pass_transistors(self, pm: Pm) -> int:
        """Unused pass transistors remaining in *pm*."""
        return PM_PASS_TRANSISTORS - self.pm_used.get(pm, 0)

    # -- run-time reconfiguration hooks ----------------------------------
    def add_extra_load(self, net: int, pm: Optional[Pm] = None
                       ) -> Tuple[int, int, int]:
        """Enable an unused pass transistor on the net's path (fan-out
        delay fault, paper figure 8).  Returns the claimed (row, col, pt).
        """
        route = self.route_of(net)
        candidates = route.pms if pm is None else [pm]
        for candidate in candidates:
            if self.free_pass_transistors(candidate) > 0:
                index = self.claim_pass_transistor(candidate)
                bit = (candidate[0], candidate[1], index)
                route.extra_loads.append(bit)
                self.version += 1
                return bit
        raise RoutingError(
            f"no free pass transistor available on the path of net {net}")

    def remove_extra_load(self, net: int,
                          bit: Tuple[int, int, int]) -> None:
        """Undo :meth:`add_extra_load`."""
        route = self.route_of(net)
        route.extra_loads.remove(bit)
        self.pm_used[(bit[0], bit[1])] -= 1
        self.version += 1

    def set_detour(self, net: int, extra_hops: int,
                   through_luts: int = 0) -> None:
        """Lengthen the net's route by *extra_hops* PM segments and
        *through_luts* buffer stages (reroute delay fault, figure 7)."""
        route = self.route_of(net)
        route.detour_hops = extra_hops
        route.detour_luts = through_luts
        self.version += 1

    def clear_detour(self, net: int) -> None:
        """Restore the net's original routing."""
        route = self.route_of(net)
        route.detour_hops = 0
        route.detour_luts = 0
        route.detour_bits.clear()
        self.version += 1

    # -- queries -----------------------------------------------------------
    def route_of(self, net: int) -> NetRoute:
        """Route of *net*; raise :class:`RoutingError` if not routed."""
        route = self.routes.get(net)
        if route is None:
            raise RoutingError(f"net {net} is not routed")
        return route

    def is_routed(self, net: int) -> bool:
        """Whether the net exists in the routing database."""
        return net in self.routes

    def stats(self) -> Dict[str, int]:
        """Routing totals for reports and the cost model."""
        total_pts = sum(len(r.pass_transistors())
                        for r in self.routes.values())
        total_hops = sum(s.length for r in self.routes.values()
                         for s in r.sinks)
        return {
            "nets": len(self.routes),
            "pass_transistors": total_pts,
            "hops": total_hops,
            "pms_used": len(self.pm_used),
        }


def _clamp_site(site: Site, rows: int, cols: int) -> Site:
    """Pull I/O pseudo-sites onto the PM grid."""
    row = min(max(site[0], 0), rows - 1)
    col = min(max(site[1], 0), cols - 1)
    return (row, col)


def _l_path(src: Site, dst: Site) -> List[Pm]:
    """Horizontal-then-vertical Manhattan path, inclusive of both ends."""
    path: List[Pm] = []
    row, col = src
    step = 1 if dst[1] >= col else -1
    for c in range(col, dst[1] + step, step):
        path.append((row, c))
    step = 1 if dst[0] >= row else -1
    for r in range(row + step if path else row, dst[0] + step, step):
        path.append((r, dst[1]))
    return path


def route(placement: Placement) -> RoutingDb:
    """Route every net of a placed design.

    Nets driven by constants are local ties and are not routed; a packed
    flip-flop's D input is internal to its CB and needs no routing either.
    """
    mapped = placement.mapped
    arch = placement.arch
    db = RoutingDb(placement)

    # Identify each net's driver site.
    driver_site: Dict[int, Site] = {}
    for lut_index, lut in enumerate(mapped.luts):
        driver_site[lut.out] = placement.site_of_lut[lut_index]
    for ff_index, ff in enumerate(mapped.ffs):
        driver_site[ff.q] = placement.site_of_ff[ff_index]
    for name, nets in mapped.inputs.items():
        for net in nets:
            driver_site[net] = placement.input_site[name]
    for bram_index, bram in enumerate(mapped.brams):
        for net in bram.rdata:
            driver_site[net] = placement.bram_site(bram_index)

    # Collect sinks per net.
    sinks: Dict[int, List[Pin]] = {}

    def add_sink(net: int, pin: Pin) -> None:
        if net in (CONST0, CONST1):
            return
        sinks.setdefault(net, []).append(pin)

    packed_d_nets: Set[int] = set()
    for cb in placement.sites.values():
        if cb.packed and cb.ff is not None:
            packed_d_nets.add(mapped.ffs[cb.ff].d)
    for lut_index, lut in enumerate(mapped.luts):
        site = placement.site_of_lut[lut_index]
        for pos, net in enumerate(lut.ins):
            add_sink(net, Pin("lut", lut_index, pos, site))
    for ff_index, ff in enumerate(mapped.ffs):
        site = placement.site_of_ff[ff_index]
        cb = placement.sites[site]
        if cb.packed and cb.lut is not None:
            continue  # D comes from the local LUT, no routing
        add_sink(ff.d, Pin("ffin", ff_index, 0, site))
    for bram_index, bram in enumerate(mapped.brams):
        site = placement.bram_site(bram_index)
        ports = [("raddr", bram.raddr), ("waddr", bram.waddr),
                 ("wdata", bram.wdata), ("we", (bram.we,))]
        for _port_name, nets in ports:
            for pos, net in enumerate(nets):
                add_sink(net, Pin("bram", bram_index, pos, site))
    for name, nets in mapped.outputs.items():
        site = placement.output_site[name]
        for pos, net in enumerate(nets):
            add_sink(net, Pin("out", -1, pos, site))

    # Route each net sink by sink, sharing trunk pass transistors.
    for net, pins in sinks.items():
        src = driver_site.get(net)
        if src is None:
            raise RoutingError(f"net {net} has sinks but no placed driver")
        src = _clamp_site(src, arch.rows, arch.cols)
        net_route = NetRoute(net=net, driver_site=src)
        claimed: Dict[Pm, int] = {}
        for pin in pins:
            dst = _clamp_site(pin.site, arch.rows, arch.cols)
            hops: List[Tuple[int, int, int]] = []
            for pm in _l_path(src, dst):
                index = claimed.get(pm)
                if index is None:
                    index = db.claim_pass_transistor(pm)
                    claimed[pm] = index
                hops.append((pm[0], pm[1], index))
            net_route.sinks.append(SinkRoute(pin=pin, hops=hops))
        db.routes[net] = net_route
    return db
