"""Placement: assign mapped resources to configurable blocks.

Each configurable block hosts one LUT and one flip-flop, with a single
output selected by ``LUTorFFMux`` (paper, figure 2).  The placer therefore
*packs* a flip-flop together with its driving LUT only when that LUT has no
other reader — otherwise the LUT output would be unobservable.  Everything
else receives its own CB; embedded memory blocks go to the device's
dedicated block sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import PlacementError
from ..synth.mapped import MappedNetlist
from .architecture import Architecture

Site = Tuple[int, int]


@dataclass
class CbSite:
    """Occupancy of one configurable block."""

    lut: Optional[int] = None   # index into mapped.luts
    ff: Optional[int] = None    # index into mapped.ffs
    packed: bool = False        # FF's D comes from the local LUT

    @property
    def empty(self) -> bool:
        """Whether the CB hosts no user logic."""
        return self.lut is None and self.ff is None


@dataclass
class Placement:
    """Result of placing a mapped netlist on a device."""

    arch: Architecture
    mapped: MappedNetlist
    sites: Dict[Site, CbSite] = field(default_factory=dict)
    site_of_lut: Dict[int, Site] = field(default_factory=dict)
    site_of_ff: Dict[int, Site] = field(default_factory=dict)
    block_of_bram: Dict[int, int] = field(default_factory=dict)
    input_site: Dict[str, Site] = field(default_factory=dict)
    output_site: Dict[str, Site] = field(default_factory=dict)

    def bram_site(self, block: int) -> Site:
        """Grid-coordinate proxy of a memory block (for distance costs)."""
        rows = self.arch.rows
        spread = rows * block // max(1, self.arch.mem_blocks)
        return (spread % rows, self.arch.cols - 1)

    def utilisation(self) -> Dict[str, float]:
        """Occupied fraction of each resource class."""
        return {
            "cbs": len(self.sites) / self.arch.n_cbs,
            "mem_blocks": (len(self.block_of_bram)
                           / max(1, self.arch.mem_blocks)),
        }


def place(mapped: MappedNetlist, arch: Architecture) -> Placement:
    """Place *mapped* onto *arch*; raise :class:`PlacementError` if unfit.

    The fill order is column-major from column 0, which keeps related logic
    (emitted together by the builder) in neighbouring columns and gives the
    timing model plausible locality.
    """
    stats = mapped.stats()
    if stats["luts"] > arch.n_cbs or stats["ffs"] > arch.n_cbs:
        raise PlacementError(
            f"design needs {stats['luts']} LUTs / {stats['ffs']} FFs; "
            f"device {arch.name} offers {arch.n_cbs} CBs")
    if stats["brams"] > arch.mem_blocks:
        raise PlacementError(
            f"design needs {stats['brams']} memory blocks; device has "
            f"{arch.mem_blocks}")
    geometry = arch.mem_geometry
    for bram in mapped.brams:
        if bram.depth > geometry.depth or bram.width > geometry.width:
            raise PlacementError(
                f"memory {bram.name!r} ({bram.depth}x{bram.width}) exceeds "
                f"the block geometry {geometry.depth}x{geometry.width}")

    placement = Placement(arch=arch, mapped=mapped)
    lut_fanout: Dict[int, int] = {}
    for lut in mapped.luts:
        for net in lut.ins:
            lut_fanout[net] = lut_fanout.get(net, 0) + 1
    for ff in mapped.ffs:
        lut_fanout[ff.d] = lut_fanout.get(ff.d, 0) + 1
    for bram in mapped.brams:
        for net in (*bram.raddr, *bram.waddr, *bram.wdata, bram.we):
            lut_fanout[net] = lut_fanout.get(net, 0) + 1
    for nets in mapped.outputs.values():
        for net in nets:
            lut_fanout[net] = lut_fanout.get(net, 0) + 1

    lut_of_net = mapped.lut_of_net()
    site_iter = arch.sites()

    def next_site() -> Site:
        try:
            return next(site_iter)
        except StopIteration:
            raise PlacementError(
                f"device {arch.name} ran out of CB sites") from None

    # Pack FF with its driving LUT when the LUT feeds only that FF.
    packed_luts: Dict[int, int] = {}  # lut index -> ff index
    for ff_index, ff in enumerate(mapped.ffs):
        lut_index = lut_of_net.get(ff.d)
        if lut_index is None:
            continue
        if lut_fanout.get(ff.d, 0) == 1 and lut_index not in packed_luts:
            packed_luts[lut_index] = ff_index

    placed_ffs = set()
    for lut_index in range(len(mapped.luts)):
        site = next_site()
        ff_index = packed_luts.get(lut_index)
        cb = CbSite(lut=lut_index, ff=ff_index, packed=ff_index is not None)
        placement.sites[site] = cb
        placement.site_of_lut[lut_index] = site
        if ff_index is not None:
            placement.site_of_ff[ff_index] = site
            placed_ffs.add(ff_index)
    for ff_index in range(len(mapped.ffs)):
        if ff_index in placed_ffs:
            continue
        site = next_site()
        placement.sites[site] = CbSite(ff=ff_index, packed=False)
        placement.site_of_ff[ff_index] = site

    for bram_index in range(len(mapped.brams)):
        placement.block_of_bram[bram_index] = bram_index

    # I/O pseudo-sites on the west (inputs) and east (outputs) edges.
    for index, name in enumerate(mapped.inputs):
        placement.input_site[name] = (index % arch.rows, -1)
    for index, name in enumerate(mapped.outputs):
        placement.output_site[name] = (index % arch.rows, arch.cols)
    return placement
