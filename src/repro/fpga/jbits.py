"""JBits-like run-time reconfiguration API.

The paper's fault-emulation module "makes use of the JBits package that
provides some functions to read, modify and write again the configuration
memory of the FPGA" (section 5).  This module is that interface for the
generic device: frame-granular readback and partial reconfiguration, plus
resource-level helpers (LUT contents, CB control bits, memory-block bits,
pass transistors) built on frame read-modify-write.

Every call is routed through the :class:`~repro.fpga.board.Board` so that
emulated transfer time and byte counts are accounted exactly where the real
tool paid them.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..obs import metrics
from .architecture import CB_BYTES, CMD_PULSE_GSR, PM_BYTES, FrameAddr
from .bitstream import Bitstream, CbConfig
from .board import Board
from .device import Device

_TRANSACTIONS = metrics.counter(
    "reconfig_transactions_total",
    "Host-board reconfiguration transactions by operation and frame kind.")
_BYTES = metrics.counter(
    "reconfig_bytes_total",
    "Bytes moved over the host-board link by operation and frame kind.")


class JBits:
    """Host-side handle for reconfiguring a configured :class:`Device`."""

    def __init__(self, device: Device, board: Optional[Board] = None):
        self.device = device
        self.board = board if board is not None else Board()

    def _transaction(self, op: str, kind: str, nbytes: int) -> float:
        """Account one bus transaction (board cost model + metrics)."""
        _TRANSACTIONS.inc(op=op, kind=kind)
        _BYTES.inc(nbytes, op=op, kind=kind)
        return self.board.transaction(op, kind, nbytes)

    # ------------------------------------------------------------------
    # frame-level primitives (each one is a bus transaction)
    # ------------------------------------------------------------------
    def read_frame(self, addr: FrameAddr) -> bytes:
        """Readback of one frame."""
        data = self.device.read_frame(addr)
        self._transaction("read", addr.kind, len(data))
        return data

    def write_frame(self, addr: FrameAddr, data: bytes) -> None:
        """Partial reconfiguration of one frame."""
        self.device.write_frame(addr, data)
        self._transaction("write", addr.kind, len(data))

    def write_full(self, bitstream: Bitstream) -> None:
        """Download a full configuration file (one large transaction).

        The paper had to fall back to this for delay faults because of
        "experimental problems with the JBits package and the prototyping
        board driver" (section 6.2) — it is the expensive path.
        """
        for addr, frame in bitstream.frames.items():
            self.device.write_frame(addr, bytes(frame))
        self._transaction("write_full", "full", bitstream.total_bytes())

    def readback_full(self) -> Bitstream:
        """Read the whole configuration back (one large transaction)."""
        image = Bitstream(self.device.arch)
        for addr in image.frames:
            image.frames[addr][:] = self.device.read_frame(addr)
        self._transaction("read_full", "full", image.total_bytes())
        return image

    def pulse_gsr(self) -> None:
        """Trigger the Global Set/Reset through the command register."""
        addr = FrameAddr("cmd", 0)
        self.device.write_frame(addr, bytes([CMD_PULSE_GSR, 0, 0, 0]))
        self._transaction("write", "cmd",
                          self.device.arch.frame_size(addr))

    # ------------------------------------------------------------------
    # CB-level helpers (frame read-modify-write, host-cached writes)
    # ------------------------------------------------------------------
    def read_cb(self, row: int, col: int) -> CbConfig:
        """Readback and decode one CB's configuration."""
        addr, offset = self.device.arch.cb_frame(row, col)
        frame = self.read_frame(addr)
        return CbConfig.unpack(frame[offset:offset + CB_BYTES])

    def write_cb(self, row: int, col: int, config: CbConfig) -> None:
        """Encode and write one CB's configuration (whole-frame write).

        The host keeps the current image (it generated it), so no prior
        readback is required — we modify our copy of the column frame and
        download it.
        """
        addr, offset = self.device.arch.cb_frame(row, col)
        frame = bytearray(self.device.config.get_frame(addr))
        frame[offset:offset + CB_BYTES] = config.pack()
        self.write_frame(addr, bytes(frame))

    def read_ff_state(self, row: int, col: int) -> int:
        """Capture one flip-flop's live state via its column state frame."""
        addr, byte_off, bit_off = self.device.arch.state_bit(row, col)
        frame = self.read_frame(addr)
        return (frame[byte_off] >> bit_off) & 1

    # ------------------------------------------------------------------
    # memory-block helpers
    # ------------------------------------------------------------------
    def read_bram_frame(self, block: int) -> bytes:
        """Readback of one memory block's live contents."""
        return self.read_frame(FrameAddr("bram", block))

    def write_bram_frame(self, block: int, data: bytes) -> None:
        """Overwrite one memory block's contents."""
        self.write_frame(FrameAddr("bram", block), data)

    def flip_bram_bit(self, block: int, addr: int, bit: int) -> int:
        """Read-modify-write flip of one memory bit (paper, figure 4).

        Returns the value the bit had *before* the flip.
        """
        frame_addr, byte_off, bit_off = self.device.arch.bram_bit(
            block, addr, bit)
        frame = bytearray(self.read_frame(frame_addr))
        old = (frame[byte_off] >> bit_off) & 1
        frame[byte_off] ^= 1 << bit_off
        self.write_frame(frame_addr, bytes(frame))
        return old

    # ------------------------------------------------------------------
    # routing helpers (structural API over the routing database)
    # ------------------------------------------------------------------
    def enable_extra_load(self, net: int) -> Tuple[int, int, int]:
        """Turn on an unused pass transistor along *net*'s path.

        Structural registration goes through the routing database, then the
        corresponding configuration bit is actually written (one routing
        frame transaction).  Returns the (row, col, index) bit claimed.
        """
        bit = self.device.impl.routing.add_extra_load(net)
        row, col, index = bit
        addr, _offset = self.device.arch.pm_frame(row, col)
        frame = bytearray(self.device.config.get_frame(addr))
        self._set_pt(frame, row, index, 1)
        self.write_frame(addr, bytes(frame))
        return bit

    def disable_extra_load(self, net: int,
                           bit: Tuple[int, int, int]) -> None:
        """Undo :meth:`enable_extra_load`."""
        self.device.impl.routing.remove_extra_load(net, bit)
        row, col, index = bit
        addr, _offset = self.device.arch.pm_frame(row, col)
        frame = bytearray(self.device.config.get_frame(addr))
        self._set_pt(frame, row, index, 0)
        self.write_frame(addr, bytes(frame))

    @staticmethod
    def _set_pt(frame: bytearray, row: int, index: int, value: int) -> None:
        offset = row * PM_BYTES + index // 8
        if value:
            frame[offset] |= 1 << (index % 8)
        else:
            frame[offset] &= ~(1 << (index % 8))

    def set_detour(self, net: int, extra_hops: int,
                   full_download: bool = True) -> None:
        """Reroute *net* through *extra_hops* additional PM segments
        (paper, figure 7).

        ``full_download`` reproduces the paper's observed behaviour: the
        JBits/driver combination forced a full configuration download for
        rerouting.  With ``False`` only the affected routing frames are
        written (the partial path the paper could not use).
        """
        routing = self.device.impl.routing
        routing.set_detour(net, extra_hops)
        self._commit_routing(net, full_download)

    def clear_detour(self, net: int, full_download: bool = False) -> None:
        """Restore the original route of *net*."""
        routing = self.device.impl.routing
        routing.clear_detour(net)
        self._commit_routing(net, full_download)

    def _commit_routing(self, net: int, full_download: bool) -> None:
        if full_download:
            # The whole current image is re-downloaded.
            self.write_full(self.device.config.copy())
            return
        route = self.device.impl.routing.route_of(net)
        cols = sorted({col for _row, col in route.pms})
        if not cols:
            # Zero-length route (driver and sink co-located): still pay
            # one frame write for the PM at the driver site.
            cols = [route.driver_site[1] if route.driver_site[1] >= 0 else 0]
        for col in cols:
            addr = FrameAddr("route", col)
            self.write_frame(addr, self.device.config.get_frame(addr))

    # ------------------------------------------------------------------
    def raise_if_state_write(self, addr: FrameAddr) -> None:
        """Guard helper used by tests: state frames are not writable."""
        if addr.kind == "state":
            raise ConfigurationError("state frames are readback-only")
