"""Configuration memory: frames, bit accessors, CB configuration words.

The configuration memory of the generic FPGA "controls the configuration of
all these elements" (paper, section 3): LUT truth tables, storage-element
modes, multiplexer control inputs, PM pass transistors and the contents of
the internal memory blocks.  A :class:`Bitstream` is a complete image of
that memory, organised in frames (see
:class:`~repro.fpga.architecture.FrameAddr`); run-time reconfiguration reads
and writes individual frames.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List

from ..errors import BitstreamError
from .architecture import (CB_BYTES, CB_FLAGS, CB_FLAG_FF_D_EXTERNAL,
                           CB_FLAG_INVERT_FFIN, CB_FLAG_INVERT_LSR,
                           CB_FLAG_LATCH_MODE, CB_FLAG_SRVAL, CB_FLAG_USE_FF,
                           CB_TT_HI, CB_TT_LO, PM_BYTES, Architecture,
                           FrameAddr)


@dataclass
class CbConfig:
    """Decoded configuration of one configurable block (paper, figure 2).

    Attributes mirror the generic CB's programmable elements:

    * ``tt`` — the 16-bit LUT truth table;
    * ``use_ff`` — ``LUTorFFMux``: the CB output is the FF (sequential) or
      the LUT (combinational);
    * ``ff_d_external`` — the FF's D input comes from the routed ``FFin``
      pin instead of the local LUT output;
    * ``invert_ffin`` — ``InvertFFinMux`` control bit (pulse-fault target);
    * ``invert_lsr`` — ``InvertLSRMux``: inverting the idle-low local
      set/reset line *asserts* it, forcing the FF to ``srval``;
    * ``srval`` — ``PRMux``/``CLRMux`` selection: the value the FF takes
      when GSR or its LSR fires;
    * ``latch_mode`` — storage element configured as a latch (reserved).
    """

    tt: int = 0
    use_ff: bool = False
    ff_d_external: bool = False
    invert_ffin: bool = False
    invert_lsr: bool = False
    srval: int = 0
    latch_mode: bool = False

    def pack(self) -> bytes:
        """Encode into the :data:`CB_BYTES`-byte configuration word."""
        flags = ((self.use_ff << CB_FLAG_USE_FF)
                 | (self.ff_d_external << CB_FLAG_FF_D_EXTERNAL)
                 | (self.invert_ffin << CB_FLAG_INVERT_FFIN)
                 | (self.invert_lsr << CB_FLAG_INVERT_LSR)
                 | ((self.srval & 1) << CB_FLAG_SRVAL)
                 | (self.latch_mode << CB_FLAG_LATCH_MODE))
        word = bytearray(CB_BYTES)
        word[CB_TT_LO] = self.tt & 0xFF
        word[CB_TT_HI] = (self.tt >> 8) & 0xFF
        word[CB_FLAGS] = flags
        return bytes(word)

    @classmethod
    def unpack(cls, word: bytes) -> "CbConfig":
        """Decode a configuration word back into field form."""
        if len(word) < CB_BYTES:
            raise BitstreamError(
                f"CB configuration word needs {CB_BYTES} bytes")
        flags = word[CB_FLAGS]
        return cls(
            tt=word[CB_TT_LO] | (word[CB_TT_HI] << 8),
            use_ff=bool((flags >> CB_FLAG_USE_FF) & 1),
            ff_d_external=bool((flags >> CB_FLAG_FF_D_EXTERNAL) & 1),
            invert_ffin=bool((flags >> CB_FLAG_INVERT_FFIN) & 1),
            invert_lsr=bool((flags >> CB_FLAG_INVERT_LSR) & 1),
            srval=(flags >> CB_FLAG_SRVAL) & 1,
            latch_mode=bool((flags >> CB_FLAG_LATCH_MODE) & 1),
        )


class Bitstream:
    """A full configuration image for one :class:`Architecture`.

    Frames are dense ``bytearray`` blocks addressed by
    :class:`~repro.fpga.architecture.FrameAddr`.  The image covers only the
    *writable* planes (CB, routing, memory contents); FF-state frames exist
    on the device but never inside a configuration file.
    """

    def __init__(self, arch: Architecture):
        self.arch = arch
        self.frames: Dict[FrameAddr, bytearray] = {
            addr: bytearray(arch.frame_size(addr))
            for addr in arch.config_frames()}

    # -- frame access ----------------------------------------------------
    def get_frame(self, addr: FrameAddr) -> bytes:
        """Read a frame's bytes."""
        try:
            return bytes(self.frames[addr])
        except KeyError:
            raise BitstreamError(f"no frame {addr} in this image") from None

    def set_frame(self, addr: FrameAddr, data: bytes) -> None:
        """Replace a frame's bytes (length must match exactly)."""
        frame = self.frames.get(addr)
        if frame is None:
            raise BitstreamError(f"no frame {addr} in this image")
        if len(data) != len(frame):
            raise BitstreamError(
                f"frame {addr} is {len(frame)} bytes, got {len(data)}")
        frame[:] = data

    # -- bit-level helpers -------------------------------------------------
    def get_bit(self, addr: FrameAddr, byte_off: int, bit_off: int) -> int:
        """Read one configuration bit."""
        return (self.frames[addr][byte_off] >> bit_off) & 1

    def set_bit(self, addr: FrameAddr, byte_off: int, bit_off: int,
                value: int) -> None:
        """Write one configuration bit."""
        frame = self.frames[addr]
        if value:
            frame[byte_off] |= 1 << bit_off
        else:
            frame[byte_off] &= ~(1 << bit_off)

    # -- CB configuration ---------------------------------------------------
    def get_cb(self, row: int, col: int) -> CbConfig:
        """Decode the configuration of CB(row, col)."""
        addr, offset = self.arch.cb_frame(row, col)
        return CbConfig.unpack(self.frames[addr][offset:offset + CB_BYTES])

    def set_cb(self, row: int, col: int, config: CbConfig) -> None:
        """Encode *config* into CB(row, col)'s configuration word."""
        addr, offset = self.arch.cb_frame(row, col)
        self.frames[addr][offset:offset + CB_BYTES] = config.pack()

    # -- PM pass transistors -------------------------------------------------
    def get_pass_transistor(self, row: int, col: int, index: int) -> int:
        """Read the control bit of one pass transistor of PM(row, col)."""
        addr, offset = self.arch.pm_frame(row, col)
        return self.get_bit(addr, offset + index // 8, index % 8)

    def set_pass_transistor(self, row: int, col: int, index: int,
                            value: int) -> None:
        """Turn a pass transistor of PM(row, col) on or off."""
        addr, offset = self.arch.pm_frame(row, col)
        self.set_bit(addr, offset + index // 8, index % 8, value)

    def pm_used_count(self, row: int, col: int) -> int:
        """Number of pass transistors currently enabled in PM(row, col)."""
        addr, offset = self.arch.pm_frame(row, col)
        frame = self.frames[addr]
        return sum(bin(frame[offset + i]).count("1") for i in range(PM_BYTES))

    # -- memory blocks --------------------------------------------------------
    def get_bram_bit(self, block: int, addr: int, bit: int) -> int:
        """Read one bit of an embedded memory block's contents."""
        frame_addr, byte_off, bit_off = self.arch.bram_bit(block, addr, bit)
        return self.get_bit(frame_addr, byte_off, bit_off)

    def set_bram_bit(self, block: int, addr: int, bit: int,
                     value: int) -> None:
        """Write one bit of an embedded memory block's contents."""
        frame_addr, byte_off, bit_off = self.arch.bram_bit(block, addr, bit)
        self.set_bit(frame_addr, byte_off, bit_off, value)

    def get_bram_word(self, block: int, addr: int) -> int:
        """Read a whole memory word from the configuration image."""
        width = self.arch.mem_geometry.width
        value = 0
        for bit in range(width):
            value |= self.get_bram_bit(block, addr, bit) << bit
        return value

    def set_bram_word(self, block: int, addr: int, value: int) -> None:
        """Write a whole memory word into the configuration image."""
        width = self.arch.mem_geometry.width
        for bit in range(width):
            self.set_bram_bit(block, addr, bit, (value >> bit) & 1)

    # -- whole-image operations -------------------------------------------
    def copy(self) -> "Bitstream":
        """Deep copy of the configuration image."""
        clone = Bitstream(self.arch)
        for addr, frame in self.frames.items():
            clone.frames[addr][:] = frame
        return clone

    def total_bytes(self) -> int:
        """Size of the full configuration file."""
        return sum(len(frame) for frame in self.frames.values())

    def diff_frames(self, other: "Bitstream") -> List[FrameAddr]:
        """Frames whose contents differ between two images."""
        return [addr for addr, frame in self.frames.items()
                if bytes(frame) != bytes(other.frames[addr])]

    # -- configuration files -------------------------------------------
    # On-disk format: magic, device name, frame records (kind, major,
    # length, payload), trailing CRC32 over everything before it — the
    # "configuration file resulting from the model synthesis and
    # implementation process" of the paper's figure 1, persistable.
    _MAGIC = b"RPRObit1"

    def save(self, path: str) -> None:
        """Write the image as a configuration file with a CRC trailer."""
        chunks = [self._MAGIC]
        name = self.arch.name.encode()
        chunks.append(struct.pack("<H", len(name)))
        chunks.append(name)
        chunks.append(struct.pack("<I", len(self.frames)))
        for addr, frame in self.frames.items():
            kind = addr.kind.encode()
            chunks.append(struct.pack("<B", len(kind)))
            chunks.append(kind)
            chunks.append(struct.pack("<iI", addr.major, len(frame)))
            chunks.append(bytes(frame))
        blob = b"".join(chunks)
        with open(path, "wb") as handle:
            handle.write(blob)
            handle.write(struct.pack("<I", zlib.crc32(blob)))

    @classmethod
    def load(cls, path: str, arch: Architecture) -> "Bitstream":
        """Read a configuration file back; verify CRC and device match."""
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < len(cls._MAGIC) + 4:
            raise BitstreamError(f"{path}: truncated configuration file")
        body, crc = blob[:-4], struct.unpack("<I", blob[-4:])[0]
        if zlib.crc32(body) != crc:
            raise BitstreamError(f"{path}: CRC mismatch (corrupt file)")
        if not body.startswith(cls._MAGIC):
            raise BitstreamError(f"{path}: not a configuration file")
        offset = len(cls._MAGIC)
        (name_len,) = struct.unpack_from("<H", body, offset)
        offset += 2
        name = body[offset:offset + name_len].decode()
        offset += name_len
        if name != arch.name:
            raise BitstreamError(
                f"{path}: built for device {name!r}, not {arch.name!r}")
        (n_frames,) = struct.unpack_from("<I", body, offset)
        offset += 4
        image = cls(arch)
        for _ in range(n_frames):
            (kind_len,) = struct.unpack_from("<B", body, offset)
            offset += 1
            kind = body[offset:offset + kind_len].decode()
            offset += kind_len
            major, length = struct.unpack_from("<iI", body, offset)
            offset += 8
            payload = body[offset:offset + length]
            offset += length
            image.set_frame(FrameAddr(kind, major), payload)
        return image
