"""The FPGA device simulator: executes a design *from configuration memory*.

This is the key substrate property for reproducing run-time-reconfiguration
fault emulation: the device's behaviour is a function of its configuration
bits, so every fault-injection mechanism of the paper acts by rewriting
those bits (through :class:`~repro.fpga.jbits.JBits`), never by poking
simulation state directly.  Concretely:

* LUT truth tables are re-read from the CB frames — rewriting a frame
  changes the logic (pulse and indetermination faults, sections 4.2/4.4);
* the ``InvertFFinMux``/``InvertLSRMux``/``PRMux``/``CLRMux`` control bits
  are honoured every cycle (CB-input pulses and FF bit-flips);
* memory-block contents live in (and are read back from) the ``bram``
  frames (memory bit-flips, section 4.1, figure 4);
* flip-flop state is *readback only* — it can be observed through ``state``
  frames and changed only by GSR/LSR mechanisms, like real SRAM FPGAs;
* setup violations caused by delay faults make the affected flip-flops
  capture the previous value of their data input (section 4.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import ConfigurationError
from ..hdl.netlist import CONST0
from .architecture import CMD_PULSE_GSR, FrameAddr
from .bitstream import Bitstream
from .implement import Implementation


class Device:
    """A configured generic FPGA.

    The device must be configured with a full :class:`Bitstream` plus the
    :class:`Implementation` structural database (placement/routing), the
    moral equivalent of the symbolic resource information the JBits API
    carried for Virtex devices.  After that, behaviour is driven purely by
    the configuration image: partial reconfiguration through
    :meth:`write_frame` immediately affects execution.
    """

    def __init__(self, impl: Implementation):
        self.arch = impl.arch
        self.impl = impl
        self.mapped = impl.mapped
        self.config = impl.golden_bitstream.copy()
        self._values: List[int] = [0] * self.mapped.n_nets
        self._held: Dict[str, int] = {name: 0 for name in self.mapped.inputs}
        self.cycle = 0
        self.total_cycles = 0  # never reset; feeds the emulation-time model
        # Decoded per-FF control state (from CB flags).
        n_ffs = len(self.mapped.ffs)
        self._ff_state = [ff.init for ff in self.mapped.ffs]
        self._ff_srval = [0] * n_ffs
        self._ff_lsr = [False] * n_ffs
        self._ff_invert_d = [False] * n_ffs
        self._d_prev = [ff.init for ff in self.mapped.ffs]
        # Runtime memory contents (initialised from the bram frames).
        # Writes go through to the configuration image: on a real SRAM
        # FPGA the memory-block cells ARE configuration cells, so a
        # readback or a full re-download always sees live contents.
        self._mem: Dict[int, List[int]] = {}
        self._block_of = dict(impl.placement.block_of_bram)
        # Compiled LUT evaluation list; rebuilt per column on reconfig.
        self._compiled: List[Tuple[int, int, int, int, int, int]] = []
        self._lut_pad: List[Tuple[int, ...]] = []
        self._violating: Set[int] = set()
        self._timing_dirty = False
        # Routing-plane decode state: configuration bits that disagree
        # with the structural database manifest as broken nets (an
        # allocated pass transistor turned off: the line floats low) or
        # phantom loads (an unused pass transistor turned on: extra
        # capacitance on whatever net owns that matrix).
        self._route_anomalies: Dict[int, Tuple[Set[int], Dict[int, int]]] = {}
        self._broken_nets: Set[int] = set()
        self._expected_cache_version = -1
        self._expected_by_col: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._pm_owner_by_col: Dict[int, Dict[Tuple[int, int], int]] = {}
        self._decode_all()

    # ------------------------------------------------------------------
    # configuration decode
    # ------------------------------------------------------------------
    def _decode_all(self) -> None:
        self._compiled = []
        self._lut_pad = []
        for lut_index, lut in enumerate(self.mapped.luts):
            ins = list(lut.ins) + [CONST0] * (4 - len(lut.ins))
            self._lut_pad.append(tuple(ins))
            row, col = self.impl.placement.site_of_lut[lut_index]
            tt = self.config.get_cb(row, col).tt
            self._compiled.append((lut.out, tt, ins[0], ins[1], ins[2],
                                   ins[3]))
        for ff_index in range(len(self.mapped.ffs)):
            self._decode_ff(ff_index)
        for bram_index, bram in enumerate(self.mapped.brams):
            block = self.impl.placement.block_of_bram[bram_index]
            self._mem[bram_index] = [
                self.config.get_bram_word(block, addr)
                for addr in range(bram.depth)]
        self.refresh_timing()

    def _decode_ff(self, ff_index: int) -> None:
        row, col = self.impl.placement.site_of_ff[ff_index]
        cb = self.config.get_cb(row, col)
        self._ff_srval[ff_index] = cb.srval
        was_asserted = self._ff_lsr[ff_index]
        self._ff_lsr[ff_index] = cb.invert_lsr
        self._ff_invert_d[ff_index] = (cb.invert_ffin and cb.ff_d_external)
        if cb.invert_lsr and not was_asserted:
            # The local set/reset line is asynchronous: reconfiguring
            # InvertLSRMux forces the FF immediately, without a clock edge
            # (this is how LSR bit-flips land between cycles, paper 4.1).
            self._ff_state[ff_index] = cb.srval
            self._d_prev[ff_index] = cb.srval

    def _recompile_column(self, col: int) -> None:
        """Re-decode every placed resource in one CB column."""
        placement = self.impl.placement
        for lut_index, site in placement.site_of_lut.items():
            if site[1] == col:
                row = site[0]
                tt = self.config.get_cb(row, col).tt
                ins = self._lut_pad[lut_index]
                self._compiled[lut_index] = (
                    self.mapped.luts[lut_index].out, tt,
                    ins[0], ins[1], ins[2], ins[3])
        for ff_index, site in placement.site_of_ff.items():
            if site[1] == col:
                self._decode_ff(ff_index)

    def _expected_routes(self) -> None:
        """(Re)build the expected pass-transistor map from the routing
        database, cached against its version counter."""
        routing = self.impl.routing
        if self._expected_cache_version == routing.version:
            return
        expected: Dict[int, Dict[Tuple[int, int], int]] = {}
        owner: Dict[int, Dict[Tuple[int, int], int]] = {}
        for net, route in routing.routes.items():
            for row, col, index in route.pass_transistors():
                expected.setdefault(col, {})[(row, index)] = net
                owner.setdefault(col, {})[(row, index)] = net
            for pm in route.pms:
                owner.setdefault(pm[1], {}).setdefault((pm[0], -1), net)
        self._expected_by_col = expected
        self._pm_owner_by_col = owner
        self._expected_cache_version = routing.version

    def _decode_route_column(self, col: int) -> None:
        """Diff one routing frame against the structural database.

        A cleared bit that the database says belongs to a routed net
        breaks that net (its sinks see a floating-low line).  A set bit
        the database does not know about loads the net whose trunk passes
        through that matrix (or nothing, if the matrix is unused).
        """
        self._expected_routes()
        expected = self._expected_by_col.get(col, {})
        addr = FrameAddr("route", col)
        frame = self.config.frames[addr]
        from .architecture import PM_BYTES
        broken: Set[int] = set()
        phantom: Dict[int, int] = {}
        # Check every expected bit is still set.
        for (row, index), net in expected.items():
            if not (frame[row * PM_BYTES + index // 8] >> (index % 8)) & 1:
                broken.add(net)
        # Scan for set bits the database does not expect.
        owner = self._pm_owner_by_col.get(col, {})
        for row in range(self.arch.rows):
            base = row * PM_BYTES
            for byte_off in range(PM_BYTES):
                byte = frame[base + byte_off]
                if not byte:
                    continue
                for bit_off in range(8):
                    if not (byte >> bit_off) & 1:
                        continue
                    index = byte_off * 8 + bit_off
                    if (row, index) in expected:
                        continue
                    net = owner.get((row, index))
                    if net is None:
                        # Any net whose trunk crosses this PM gains load.
                        net = owner.get((row, -1))
                    if net is not None:
                        phantom[net] = phantom.get(net, 0) + 1
        if broken or phantom:
            self._route_anomalies[col] = (broken, phantom)
        else:
            self._route_anomalies.pop(col, None)
        self._aggregate_route_anomalies()
        self._timing_dirty = True

    def _aggregate_route_anomalies(self) -> None:
        broken: Set[int] = set()
        seu_extra: Dict[int, float] = {}
        t_load = self.impl.timing.params.t_load
        for col_broken, col_phantom in self._route_anomalies.values():
            broken |= col_broken
            for net, count in col_phantom.items():
                seu_extra[net] = seu_extra.get(net, 0.0) + count * t_load
        self._broken_nets = broken
        self.impl.timing.seu_extra = seu_extra

    def refresh_timing(self) -> None:
        """Re-run the timing analysis (after delay-affecting changes)."""
        self.impl.timing.refresh_routing()
        self._violating = self.impl.timing.violating_ffs()
        self._timing_dirty = False

    # ------------------------------------------------------------------
    # reconfiguration and readback (used by the JBits layer)
    # ------------------------------------------------------------------
    def write_frame(self, addr: FrameAddr, data: bytes) -> None:
        """Partial reconfiguration of one frame."""
        if addr.kind == "cmd":
            if data and data[0] == CMD_PULSE_GSR:
                self.pulse_gsr()
            return
        if addr.kind == "state":
            raise ConfigurationError(
                "FF state frames are readback-only; use GSR/LSR "
                "reconfiguration to change flip-flop contents")
        self.config.set_frame(addr, data)
        if addr.kind == "cb":
            self._recompile_column(addr.major)
        elif addr.kind == "bram":
            for bram_index, block in (
                    self.impl.placement.block_of_bram.items()):
                if block == addr.major:
                    bram = self.mapped.brams[bram_index]
                    self._mem[bram_index] = [
                        self.config.get_bram_word(block, a)
                        for a in range(bram.depth)]
        elif addr.kind == "route":
            # Decode the column against the structural database: bits that
            # disagree with it are configuration upsets (broken nets or
            # phantom loads).  Timing is re-analysed lazily before the
            # next clock cycle (a full download touches every column).
            self._decode_route_column(addr.major)

    def read_frame(self, addr: FrameAddr) -> bytes:
        """Readback of one frame.

        ``state`` frames capture live flip-flop values; ``bram`` frames
        hold live memory contents by construction (write-through); other
        frames return the current configuration bits.
        """
        if addr.kind == "cmd":
            return bytes(self.arch.frame_size(addr))
        if addr.kind == "state":
            col = addr.major
            size = self.arch.frame_size(addr)
            data = bytearray(size)
            for ff_index, site in self.impl.placement.site_of_ff.items():
                if site[1] == col:
                    row = site[0]
                    if self._ff_state[ff_index]:
                        data[row // 8] |= 1 << (row % 8)
            return bytes(data)
        return self.config.get_frame(addr)

    def pulse_gsr(self) -> None:
        """Assert the Global Set/Reset: every FF loads its ``srval``."""
        for ff_index in range(len(self.mapped.ffs)):
            self._ff_state[ff_index] = self._ff_srval[ff_index]
            self._d_prev[ff_index] = self._ff_srval[ff_index]

    def reset_system(self) -> None:
        """Return to the initial state: GSR plus memory re-initialisation.

        Used between experiments (paper figure 1: "reset system to initial
        state").  Memories are restored from the *golden* image so that a
        previous experiment's workload writes do not leak into the next.
        """
        from .architecture import FrameAddr
        for bram_index, bram in enumerate(self.mapped.brams):
            block = self.impl.placement.block_of_bram[bram_index]
            addr = FrameAddr("bram", block)
            self.config.set_frame(
                addr, self.impl.golden_bitstream.get_frame(addr))
            self._mem[bram_index] = [
                self.impl.golden_bitstream.get_bram_word(block, a)
                for a in range(bram.depth)]
            for net in bram.rdata:
                self._values[net] = 0
        self.pulse_gsr()
        for name in self._held:
            self._held[name] = 0
        self.cycle = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self, inputs: Optional[Dict[str, int]] = None
             ) -> Dict[str, int]:
        """Advance one clock cycle; return the settled primary outputs."""
        if self._timing_dirty:
            self.refresh_timing()
        if inputs:
            for name, value in inputs.items():
                self._held[name] = value
        values = self._values
        values[CONST0] = 0
        values[1] = 1
        for name, nets in self.mapped.inputs.items():
            held = self._held[name]
            for position, net in enumerate(nets):
                values[net] = (held >> position) & 1
        # LSR-forced flip-flops are pinned to srval while the line is
        # asserted (InvertLSRMux reconfigured).
        ff_state = self._ff_state
        for ff_index, forced in enumerate(self._ff_lsr):
            if forced:
                ff_state[ff_index] = self._ff_srval[ff_index]
        for ff, state in zip(self.mapped.ffs, ff_state):
            values[ff.q] = state
        broken = self._broken_nets
        if broken:
            # A net whose routing pass transistor was knocked out floats;
            # the receiving buffers read it as logic low.
            for net in broken:
                values[net] = 0
            for out, tt, i0, i1, i2, i3 in self._compiled:
                value = (tt >> (values[i0] | values[i1] << 1
                                | values[i2] << 2 | values[i3] << 3)) & 1
                values[out] = 0 if out in broken else value
        else:
            for out, tt, i0, i1, i2, i3 in self._compiled:
                values[out] = (tt >> (values[i0] | values[i1] << 1
                                      | values[i2] << 2 | values[i3] << 3)) & 1
        outputs: Dict[str, int] = {}
        for name, nets in self.mapped.outputs.items():
            value = 0
            for position, net in enumerate(nets):
                value |= values[net] << position
            outputs[name] = value
        # Capture phase.
        violating = self._violating
        d_prev = self._d_prev
        for ff_index, ff in enumerate(self.mapped.ffs):
            new_value = values[ff.d]
            if ff_index in violating:
                captured = d_prev[ff_index]
            else:
                captured = new_value
            if self._ff_invert_d[ff_index]:
                captured ^= 1
            if self._ff_lsr[ff_index]:
                captured = self._ff_srval[ff_index]
            ff_state[ff_index] = captured
            d_prev[ff_index] = new_value
        for bram_index, bram in enumerate(self.mapped.brams):
            cells = self._mem[bram_index]
            raddr = 0
            for position, net in enumerate(bram.raddr):
                raddr |= values[net] << position
            read = cells[raddr] if raddr < bram.depth else 0
            if not bram.rom and values[bram.we]:
                waddr = 0
                for position, net in enumerate(bram.waddr):
                    waddr |= values[net] << position
                wdata = 0
                for position, net in enumerate(bram.wdata):
                    wdata |= values[net] << position
                if waddr < bram.depth:
                    cells[waddr] = wdata
                    self.config.set_bram_word(
                        self._block_of[bram_index], waddr, wdata)
            for position, net in enumerate(bram.rdata):
                values[net] = (read >> position) & 1
        self.cycle += 1
        self.total_cycles += 1
        return outputs

    def run(self, cycles: int,
            inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Step *cycles* times with constant inputs; return last outputs."""
        outputs: Dict[str, int] = {}
        for index in range(cycles):
            outputs = self.step(inputs if index == 0 else None)
            inputs = None
        return outputs

    # ------------------------------------------------------------------
    # checkpointing (host-side campaign optimisation)
    # ------------------------------------------------------------------
    def save_state(self) -> Tuple:
        """Capture the complete execution state for later restoration.

        Covers flip-flop state, the delay-violation shadow, memory
        contents, the settled net values (registered read ports live
        there) and held inputs.  Only valid to restore onto the *same*
        configuration the snapshot was taken under.
        """
        return (
            self.cycle,
            tuple(self._ff_state),
            tuple(self._d_prev),
            {index: tuple(cells) for index, cells in self._mem.items()},
            tuple(self._values),
            dict(self._held),
        )

    def load_state(self, snapshot: Tuple) -> None:
        """Restore a :meth:`save_state` snapshot (same configuration).

        Memory contents are written through to the configuration image,
        preserving the invariant that BRAM cells *are* config cells.
        """
        cycle, ff_state, d_prev, mem, values, held = snapshot
        self.cycle = cycle
        self._ff_state = list(ff_state)
        self._d_prev = list(d_prev)
        self._values = list(values)
        self._held = dict(held)
        for index, cells in mem.items():
            self._mem[index] = list(cells)
            block = self._block_of[index]
            for addr, word in enumerate(cells):
                self.config.set_bram_word(block, addr, word)

    # ------------------------------------------------------------------
    # observation helpers (host-side convenience, not fault paths)
    # ------------------------------------------------------------------
    def ff_state(self) -> Tuple[int, ...]:
        """Live flip-flop state, in mapped-netlist order."""
        return tuple(self._ff_state)

    def mem_words(self, bram_index: int) -> Tuple[int, ...]:
        """Live contents of one mapped memory block."""
        return tuple(self._mem[bram_index])

    def state_snapshot(self) -> Tuple:
        """Hashable architectural state snapshot (FFs + memories)."""
        mems = tuple(
            (self.mapped.brams[index].name, tuple(cells))
            for index, cells in sorted(self._mem.items()))
        return (tuple(self._ff_state), mems)

    def peek(self, name: str) -> Optional[int]:
        """Read a named HDL signal from the last settled evaluation."""
        nets = self.mapped.names.get(name)
        if nets is None:
            return None
        value = 0
        for position, net in enumerate(nets):
            value |= self._values[net] << position
        return value
