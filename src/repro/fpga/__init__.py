"""Generic FPGA substrate (S3): architecture, implementation flow, device.

The package models the paper's generic SRAM-FPGA (section 3) end to end:
configurable blocks, programmable matrices, embedded memory blocks, a
frame-oriented configuration memory, an implementation flow (place, route,
time, generate bitstream), a device simulator that executes *from* its
configuration, and a JBits-like run-time reconfiguration API with
board-level transfer accounting.
"""

from .architecture import (Architecture, FrameAddr, MemBlockGeometry,
                           demo_device, device_for, virtex1000_like)
from .bitstream import Bitstream, CbConfig
from .board import Board, BoardParams
from .device import Device
from .implement import Implementation, generate_bitstream, implement
from .jbits import JBits
from .placement import Placement, place
from .routing import NetRoute, RoutingDb, route
from .timing import TimingAnalysis, TimingParams

__all__ = [
    "Architecture",
    "CbConfig",
    "FrameAddr",
    "MemBlockGeometry",
    "demo_device",
    "device_for",
    "virtex1000_like",
    "Bitstream",
    "Board",
    "BoardParams",
    "Device",
    "Implementation",
    "generate_bitstream",
    "implement",
    "JBits",
    "Placement",
    "place",
    "NetRoute",
    "RoutingDb",
    "route",
    "TimingAnalysis",
    "TimingParams",
]
