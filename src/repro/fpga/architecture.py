"""Generic FPGA architecture: geometry and configuration layout.

Paper, section 3: "every FPGA integrates a grid of configurable blocks (CB)
that are connected by means of programmable matrixes (PM).  A number of
memory blocks are also embedded into the FPGA."  This module defines that
generic device: the grid dimensions, the per-CB configuration word, the
per-PM pass-transistor bitmap, the embedded memory blocks, and the frame
organisation of the configuration memory.

Two presets are provided:

* :func:`virtex1000_like` — 24 576 CBs (matching the paper's count of
  24 576 FFs / 24 576 LUTs in the Virtex 1000) whose full configuration
  image lands near the real device's ~766 KiB bitstream, so the emulation
  time model sees realistic transfer sizes;
* :func:`demo_device` — a small fabric for unit tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import BitstreamError

# ---------------------------------------------------------------------------
# Per-resource configuration layout
# ---------------------------------------------------------------------------

#: Bytes of configuration per configurable block.
CB_BYTES = 6

#: Bytes of pass-transistor configuration per programmable matrix.
PM_BYTES = 24

#: Pass transistors controllable in one programmable matrix.
PM_PASS_TRANSISTORS = PM_BYTES * 8

# Offsets/bit positions inside a CB's configuration word ------------------
CB_TT_LO = 0          # byte 0: LUT truth table bits 0..7
CB_TT_HI = 1          # byte 1: LUT truth table bits 8..15
CB_FLAGS = 2          # byte 2: mux and FF-mode flags
CB_FLAG_USE_FF = 0        # LUTorFFMux: CB output is the FF (1) or LUT (0)
CB_FLAG_FF_D_EXTERNAL = 1  # FF D source: routed FFin (1) or LUT output (0)
CB_FLAG_INVERT_FFIN = 2    # InvertFFinMux control bit
CB_FLAG_INVERT_LSR = 3     # InvertLSRMux control bit (asserts local S/R)
CB_FLAG_SRVAL = 4          # PRMux/CLRMux selection: value loaded on GSR/LSR
CB_FLAG_LATCH_MODE = 5     # storage element acts as latch (reserved)
# bytes 3..5 are reserved/manufacturer bits.


@dataclass(frozen=True)
class FrameAddr:
    """Address of one configuration frame.

    ``kind`` selects the resource plane:

    ``'cb'``
        CB configuration for one column (``major`` = column index).
    ``'route'``
        PM pass-transistor bitmaps for one column.
    ``'bram'``
        Contents of one embedded memory block (``major`` = block index).
    ``'state'``
        Flip-flop state capture for one column — *readback only*; FF state
        is never written directly, only through GSR/LSR reconfiguration,
        exactly as on the real device.
    ``'cmd'``
        The command register (GSR pulse and friends).
    """

    kind: str
    major: int

    def __str__(self) -> str:
        return f"{self.kind}[{self.major}]"


#: Command-register value that pulses the Global Set/Reset line.
CMD_PULSE_GSR = 0x47


@dataclass(frozen=True)
class MemBlockGeometry:
    """Geometry of every embedded memory block (uniform across the device)."""

    depth: int = 512
    width: int = 8

    @property
    def bits(self) -> int:
        """Capacity of one block in bits."""
        return self.depth * self.width

    @property
    def frame_bytes(self) -> int:
        """Size of the configuration frame holding one block's contents."""
        return (self.bits + 7) // 8


class Architecture:
    """Geometry and configuration-frame layout of one device."""

    def __init__(self, name: str, rows: int, cols: int, mem_blocks: int,
                 mem_geometry: MemBlockGeometry = MemBlockGeometry()):
        self.name = name
        self.rows = rows
        self.cols = cols
        self.mem_blocks = mem_blocks
        self.mem_geometry = mem_geometry

    # -- capacity -------------------------------------------------------
    @property
    def n_cbs(self) -> int:
        """Total configurable blocks (one LUT + one FF each)."""
        return self.rows * self.cols

    @property
    def n_pms(self) -> int:
        """Total programmable matrices (one per CB site)."""
        return self.rows * self.cols

    def sites(self) -> Iterator[Tuple[int, int]]:
        """All (row, col) CB coordinates, column-major."""
        for col in range(self.cols):
            for row in range(self.rows):
                yield (row, col)

    def check_site(self, row: int, col: int) -> None:
        """Raise :class:`BitstreamError` for an out-of-range coordinate."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise BitstreamError(
                f"CB({row},{col}) outside the {self.rows}x{self.cols} grid")

    # -- frame layout ----------------------------------------------------
    def frame_size(self, addr: FrameAddr) -> int:
        """Byte size of the frame at *addr*."""
        if addr.kind == "cb":
            self._check_col(addr.major)
            return self.rows * CB_BYTES
        if addr.kind == "route":
            self._check_col(addr.major)
            return self.rows * PM_BYTES
        if addr.kind == "bram":
            if not 0 <= addr.major < self.mem_blocks:
                raise BitstreamError(f"no memory block {addr.major}")
            return self.mem_geometry.frame_bytes
        if addr.kind == "state":
            self._check_col(addr.major)
            return (self.rows + 7) // 8
        if addr.kind == "cmd":
            return 4
        raise BitstreamError(f"unknown frame kind {addr.kind!r}")

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.cols:
            raise BitstreamError(f"no column {col}")

    def config_frames(self) -> List[FrameAddr]:
        """Every writable configuration frame of the device."""
        frames = [FrameAddr("cb", col) for col in range(self.cols)]
        frames += [FrameAddr("route", col) for col in range(self.cols)]
        frames += [FrameAddr("bram", block)
                   for block in range(self.mem_blocks)]
        return frames

    @property
    def full_config_bytes(self) -> int:
        """Size of a full configuration file (all writable frames)."""
        return sum(self.frame_size(addr) for addr in self.config_frames())

    # -- resource-to-bit mapping -----------------------------------------
    def cb_frame(self, row: int, col: int) -> Tuple[FrameAddr, int]:
        """Frame and byte offset of CB(row, col)'s configuration word."""
        self.check_site(row, col)
        return FrameAddr("cb", col), row * CB_BYTES

    def pm_frame(self, row: int, col: int) -> Tuple[FrameAddr, int]:
        """Frame and byte offset of PM(row, col)'s pass-transistor bitmap."""
        self.check_site(row, col)
        return FrameAddr("route", col), row * PM_BYTES

    def bram_bit(self, block: int, addr: int,
                 bit: int) -> Tuple[FrameAddr, int, int]:
        """Frame, byte offset and bit offset of one memory-block bit."""
        geometry = self.mem_geometry
        if not 0 <= block < self.mem_blocks:
            raise BitstreamError(f"no memory block {block}")
        if not 0 <= addr < geometry.depth or not 0 <= bit < geometry.width:
            raise BitstreamError(
                f"bit ({addr},{bit}) outside a {geometry.depth}x"
                f"{geometry.width} memory block")
        bit_index = addr * geometry.width + bit
        return FrameAddr("bram", block), bit_index // 8, bit_index % 8

    def state_bit(self, row: int, col: int) -> Tuple[FrameAddr, int, int]:
        """Frame, byte and bit offset of a FF's captured state."""
        self.check_site(row, col)
        return FrameAddr("state", col), row // 8, row % 8

    def describe(self) -> str:
        """Human-readable inventory (used by reports)."""
        return (f"{self.name}: {self.rows}x{self.cols} CBs "
                f"({self.n_cbs} LUTs, {self.n_cbs} FFs), "
                f"{self.mem_blocks} memory blocks of "
                f"{self.mem_geometry.depth}x{self.mem_geometry.width} bits, "
                f"full configuration {self.full_config_bytes} bytes")


def virtex1000_like() -> Architecture:
    """The paper's device class: 24 576 LUTs/FFs, ~750 KiB configuration."""
    return Architecture("virtex1000-like", rows=64, cols=384, mem_blocks=32)


def demo_device(rows: int = 16, cols: int = 16,
                mem_blocks: int = 4) -> Architecture:
    """A small fabric for tests and examples."""
    return Architecture(f"demo-{rows}x{cols}", rows=rows, cols=cols,
                        mem_blocks=mem_blocks)


def device_for(n_luts: int, n_ffs: int, n_brams: int,
               margin: float = 1.3) -> Architecture:
    """Pick the smallest preset that fits a design of the given size."""
    demo = demo_device()
    if (max(n_luts, n_ffs) * margin <= demo.n_cbs
            and n_brams <= demo.mem_blocks):
        return demo
    return virtex1000_like()
