"""Host prototyping-board model: configuration-port transfer accounting.

The paper's prototype ran on a Celoxica RC1000-PP board; reconfiguration
and readback crossed the host PCI bus through the JBits API and the board
driver, and that traffic — not the workload execution — dominated each
experiment's wall-clock time (sections 6.2 and 7.1).

:class:`Board` emulates that cost: every transaction pays a fixed
latency (driver + JBits overhead) plus a bandwidth-proportional term.  The
defaults are calibrated so that the mechanism recipes of
:mod:`repro.core.injector` land on the per-fault times of the paper's
figure 10 / table 2 (e.g. a full ~750 KiB configuration download costs
about 0.8 s, a three-transaction LSR bit-flip about 0.26 s).

Emulated time is bookkeeping only — no real sleeping happens; benchmarks
read the accumulated totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class BoardParams:
    """Cost constants of the host/board/driver path."""

    latency_s: float = 0.085        # per-transaction fixed overhead
    bandwidth_bytes_per_s: float = 1.0e6  # effective configuration port rate
    clock_hz: float = 40e6          # emulation clock fed to the design


@dataclass
class Transaction:
    """One logged configuration-port transaction."""

    op: str          # 'read' | 'write' | 'write_full' | 'read_full'
    kind: str        # frame kind, or 'full'
    nbytes: int
    seconds: float
    label: str = ""  # optional mechanism tag for reports


class Board:
    """Transfer accounting for one emulation session."""

    def __init__(self, params: BoardParams = BoardParams()):
        self.params = params
        self.transactions: List[Transaction] = []
        self._label = ""

    def set_label(self, label: str) -> None:
        """Tag subsequent transactions (e.g. with the fault model name)."""
        self._label = label

    def transaction(self, op: str, kind: str, nbytes: int) -> float:
        """Log one transaction; returns its emulated duration in seconds."""
        seconds = (self.params.latency_s
                   + nbytes / self.params.bandwidth_bytes_per_s)
        self.transactions.append(
            Transaction(op=op, kind=kind, nbytes=nbytes, seconds=seconds,
                        label=self._label))
        return seconds

    # -- aggregation -----------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Accumulated emulated transfer time."""
        return sum(t.seconds for t in self.transactions)

    @property
    def total_bytes(self) -> int:
        """Accumulated bytes moved over the configuration port."""
        return sum(t.nbytes for t in self.transactions)

    def seconds_by_label(self) -> Dict[str, float]:
        """Emulated seconds grouped by mechanism label."""
        totals: Dict[str, float] = {}
        for transaction in self.transactions:
            totals[transaction.label] = (totals.get(transaction.label, 0.0)
                                         + transaction.seconds)
        return totals

    def workload_seconds(self, cycles: int) -> float:
        """Emulated time to execute *cycles* on the FPGA clock."""
        return cycles / self.params.clock_hz

    def clear(self) -> None:
        """Drop the log (start of a new campaign)."""
        self.transactions.clear()

    def snapshot(self) -> Tuple[int, float]:
        """(transaction count, emulated seconds) marker for deltas."""
        return (len(self.transactions), self.total_seconds)

    def since(self, marker: Tuple[int, float]) -> Tuple[int, float]:
        """Transactions and seconds accumulated since *marker*."""
        count, seconds = marker
        return (len(self.transactions) - count,
                self.total_seconds - seconds)
