"""Implementation flow: place, route, analyse timing, emit the bitstream.

This is the back half of the paper's "synthesis and implementation" box in
figure 1: it turns a technology-mapped netlist into a configuration file for
a concrete device, together with the structural databases (placement,
routing, timing) that the run-time-reconfiguration API needs to locate
resources inside that file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..synth.mapped import MappedNetlist
from .architecture import Architecture, device_for
from .bitstream import Bitstream, CbConfig
from .placement import Placement, place
from .routing import RoutingDb, route
from .timing import TimingAnalysis, TimingParams


@dataclass
class Implementation:
    """A design implemented on a device: all structural views plus the
    golden (fault-free) configuration image."""

    arch: Architecture
    mapped: MappedNetlist
    placement: Placement
    routing: RoutingDb
    timing: TimingAnalysis
    golden_bitstream: Bitstream

    def describe(self) -> str:
        """One-paragraph summary for reports."""
        stats = self.mapped.stats()
        rstats = self.routing.stats()
        return (f"design {self.mapped.name!r} on {self.arch.name}: "
                f"{stats['luts']} LUTs, {stats['ffs']} FFs, "
                f"{stats['brams']} memory blocks; {rstats['nets']} nets, "
                f"{rstats['pass_transistors']} pass transistors; clock "
                f"period {self.timing.period:.2f} ns")


def generate_bitstream(placement: Placement,
                       routing: RoutingDb) -> Bitstream:
    """Encode a placed-and-routed design into a configuration image."""
    arch = placement.arch
    mapped = placement.mapped
    image = Bitstream(arch)
    for (row, col), cb in placement.sites.items():
        config = CbConfig()
        if cb.lut is not None:
            config.tt = mapped.luts[cb.lut].padded_tt()
        if cb.ff is not None:
            ff = mapped.ffs[cb.ff]
            config.use_ff = True
            config.srval = ff.init
            config.ff_d_external = not cb.packed
        image.set_cb(row, col, config)
    for net_route in routing.routes.values():
        for row, col, index in net_route.pass_transistors():
            image.set_pass_transistor(row, col, index, 1)
    for bram_index, bram in enumerate(mapped.brams):
        block = placement.block_of_bram[bram_index]
        for addr, word in enumerate(bram.init):
            image.set_bram_word(block, addr, word)
    return image


def implement(mapped: MappedNetlist, arch: Optional[Architecture] = None,
              params: TimingParams = TimingParams(),
              period: Optional[float] = None) -> Implementation:
    """Run the full implementation flow onto *arch* (auto-sized if None)."""
    stats = mapped.stats()
    if arch is None:
        arch = device_for(stats["luts"], stats["ffs"], stats["brams"])
    placement = place(mapped, arch)
    routing = route(placement)
    timing = TimingAnalysis(mapped, routing, params=params, period=period)
    golden = generate_bitstream(placement, routing)
    return Implementation(arch=arch, mapped=mapped, placement=placement,
                          routing=routing, timing=timing,
                          golden_bitstream=golden)
