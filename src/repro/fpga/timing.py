"""Static timing analysis and the delay model of the generic FPGA.

The delay-fault mechanisms of the paper (section 4.3) act on physical
quantities this module models:

* *routing length* — "extend its length or increase the number of elements
  it traverses": each PM segment adds :attr:`TimingParams.t_hop`;
* *fan-out load* — "the propagation delay of a line depends on its load
  capacitance, which is proportional to the fan-out of the line": each
  extra sink or enabled pass transistor adds :attr:`TimingParams.t_load`.

The default constants follow the paper's Virtex numbers: a LUT costs
0.29–0.8 ns (we use 0.5 ns) and one extra fan-out adds 0.001–0.018 ns
(we use 0.012 ns).

A flip-flop whose data arrival time exceeds ``period - t_setup`` misses the
clock edge and captures the *previous* value of its data input — the
behavioural consequence the device simulator applies, which "may or may not
affect the circuit driven by this cell" (paper, section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..hdl.netlist import CONST0, CONST1
from ..synth.mapped import MappedNetlist
from .routing import RoutingDb


@dataclass(frozen=True)
class TimingParams:
    """Delay constants, in nanoseconds."""

    t_lut: float = 0.5       # function-generator propagation delay
    t_net_base: float = 0.35  # intrinsic net delay (buffer + entry)
    t_hop: float = 0.06      # one PM segment of routing
    t_load: float = 0.012    # one additional fan-out load
    t_setup: float = 0.4     # FF setup time
    t_clk_q: float = 0.35    # FF clock-to-output delay
    period_margin: float = 1.2  # clock period = critical path * margin


class TimingAnalysis:
    """Arrival times and slacks of a placed-and-routed design."""

    def __init__(self, mapped: MappedNetlist, routing: RoutingDb,
                 params: TimingParams = TimingParams(),
                 period: Optional[float] = None):
        self.mapped = mapped
        self.routing = routing
        self.params = params
        #: Per-net injected extra delay (delay faults), in ns.
        self.injected_delay: Dict[int, float] = {}
        #: Per-net extra delay caused by configuration-memory upsets
        #: (phantom pass-transistor loads); owned by the device's
        #: routing-plane decoder.
        self.seu_extra: Dict[int, float] = {}
        self.arrival: Dict[int, float] = {}
        self._topo_luts = list(mapped.luts)  # mapper emits in topo order
        self.recompute()
        critical = self.critical_path()
        self.period = (period if period is not None
                       else max(critical * params.period_margin, 1.0))

    # ------------------------------------------------------------------
    def net_delay(self, net: int) -> float:
        """Propagation delay of *net* from driver to (worst) sink.

        Includes the configured routing length, the fan-out load, any
        detour hops and any injected delta.
        """
        if net in (CONST0, CONST1):
            return 0.0
        params = self.params
        delay = params.t_net_base
        if self.routing.is_routed(net):
            route = self.routing.route_of(net)
            worst = max((sink.length for sink in route.sinks), default=0)
            delay += params.t_hop * (worst + route.detour_hops)
            delay += (params.t_lut + params.t_net_base) * route.detour_luts
            delay += params.t_load * max(0, route.fanout - 1)
        delay += self.injected_delay.get(net, 0.0)
        delay += self.seu_extra.get(net, 0.0)
        return delay

    def recompute(self) -> None:
        """Recompute all arrival times (one topological pass)."""
        params = self.params
        arrival: Dict[int, float] = {CONST0: 0.0, CONST1: 0.0}
        for nets in self.mapped.inputs.values():
            for net in nets:
                arrival[net] = 0.0
        for ff in self.mapped.ffs:
            arrival[ff.q] = params.t_clk_q
        for bram in self.mapped.brams:
            for net in bram.rdata:
                arrival[net] = params.t_clk_q
        for lut in self._topo_luts:
            worst = 0.0
            for net in lut.ins:
                at = arrival.get(net, 0.0) + self.net_delay(net)
                if at > worst:
                    worst = at
            arrival[lut.out] = worst + params.t_lut
        self.arrival = arrival

    # ------------------------------------------------------------------
    def data_arrival_at_ff(self, ff_index: int) -> float:
        """Arrival time of the D input of flip-flop *ff_index*."""
        ff = self.mapped.ffs[ff_index]
        base = self.arrival.get(ff.d, 0.0)
        site = self.routing.placement.site_of_ff.get(ff_index)
        cb = self.routing.placement.sites.get(site)
        if cb is not None and cb.packed:
            return base  # local LUT-to-FF connection, no routed net
        return base + self.net_delay(ff.d)

    def ff_slack(self, ff_index: int) -> float:
        """Setup slack of one flip-flop at the configured period."""
        return (self.period - self.params.t_setup
                - self.data_arrival_at_ff(ff_index))

    def critical_path(self) -> float:
        """Worst data arrival across all flip-flops and outputs."""
        worst = 0.0
        for ff_index in range(len(self.mapped.ffs)):
            worst = max(worst, self.data_arrival_at_ff(ff_index))
        for bram in self.mapped.brams:
            for net in (*bram.raddr, *bram.waddr, *bram.wdata, bram.we):
                worst = max(worst,
                            self.arrival.get(net, 0.0) + self.net_delay(net))
        for nets in self.mapped.outputs.values():
            for net in nets:
                worst = max(worst,
                            self.arrival.get(net, 0.0) + self.net_delay(net))
        return worst

    def violating_ffs(self) -> Set[int]:
        """Flip-flops currently missing setup at the configured period."""
        return {index for index in range(len(self.mapped.ffs))
                if self.ff_slack(index) < 0.0}

    # ------------------------------------------------------------------
    # delay-fault interface
    # ------------------------------------------------------------------
    def inject_delay(self, net: int, delta_ns: float) -> None:
        """Add *delta_ns* of propagation delay to *net* and re-analyse."""
        self.injected_delay[net] = (self.injected_delay.get(net, 0.0)
                                    + delta_ns)
        self.recompute()

    def remove_delay(self, net: int) -> None:
        """Remove any injected delay from *net* and re-analyse."""
        if self.injected_delay.pop(net, None) is not None:
            self.recompute()

    def refresh_routing(self) -> None:
        """Re-analyse after the routing database changed (loads/detours)."""
        self.recompute()

    def summary(self) -> Dict[str, float]:
        """Headline numbers for reports."""
        return {
            "period_ns": self.period,
            "critical_ns": self.critical_path(),
            "violating_ffs": float(len(self.violating_ffs())),
        }

    def worst_ffs(self, count: int = 10) -> List[Tuple[int, float]]:
        """The *count* flip-flops with the least setup slack.

        Delay-fault studies use this to pick near-critical targets: a
        small injected delta on a low-slack path flips outcomes, while
        the same delta elsewhere is absorbed.
        """
        slacks = [(index, self.ff_slack(index))
                  for index in range(len(self.mapped.ffs))]
        slacks.sort(key=lambda pair: pair[1])
        return slacks[:count]

    def slack_histogram(self, bins: int = 8) -> List[Tuple[float, int]]:
        """(bin upper bound, count) pairs over all FF slacks."""
        slacks = [self.ff_slack(index)
                  for index in range(len(self.mapped.ffs))]
        if not slacks:
            return []
        low, high = min(slacks), max(slacks)
        width = (high - low) / bins or 1.0
        histogram = []
        for bin_index in range(bins):
            upper = low + (bin_index + 1) * width
            lower = low + bin_index * width
            count = sum(1 for s in slacks
                        if lower <= s < upper
                        or (bin_index == bins - 1 and s == high))
            histogram.append((upper, count))
        return histogram
