"""Netlist optimiser: constant propagation, deduplication, dead-code removal.

Real synthesis "renames, merges or removes" HDL elements (paper, section 2),
which is precisely why the fault-location process needs a mapping database.
This optimiser reproduces those effects mechanically and reports them through
the returned net map, so :mod:`repro.synth.locmap` can tell a fault-injection
campaign which HDL elements survived implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hdl.netlist import CONST0, CONST1, Bram, Dff, Gate, Netlist


@dataclass
class OptimizeResult:
    """Outcome of :func:`optimize`.

    Attributes
    ----------
    netlist:
        The optimised netlist (a fresh object; the input is not mutated).
    net_map:
        Maps every *input* net id to the corresponding net in the optimised
        netlist, or ``None`` when the net was removed as dead logic.
        Constants map to the constant nets.
    stats:
        Counters: gates merged by hashing, gates folded to constants,
        dead gates and dead flip-flops removed.
    """

    netlist: Netlist
    net_map: Dict[int, Optional[int]]
    stats: Dict[str, int] = field(default_factory=dict)


def _fold(tt: int, ins: Tuple[int, ...]) -> Optional[Tuple[int, ...]]:
    """Partially evaluate a gate whose inputs include constants.

    Returns ``(new_tt, new_ins)`` with constants removed, or a 1-tuple
    ``(net,)`` when the gate collapses to an existing net/constant.
    Returns ``None`` when nothing can be folded.
    """
    if CONST0 not in ins and CONST1 not in ins:
        # Check for repeated inputs, which also shrink the support.
        if len(set(ins)) == len(ins):
            return None
    # Substitute constants/duplicates by cofactoring the truth table.
    seen: Dict[int, int] = {}
    new_ins: List[int] = []
    positions: List[Tuple[int, Optional[int], Optional[int]]] = []
    for position, net in enumerate(ins):
        if net == CONST0:
            positions.append((position, 0, None))
        elif net == CONST1:
            positions.append((position, 1, None))
        elif net in seen:
            positions.append((position, None, seen[net]))
        else:
            seen[net] = len(new_ins)
            positions.append((position, None, None))
            new_ins.append(net)
    new_tt = 0
    for new_index in range(1 << len(new_ins)):
        old_index = 0
        for position, const, duplicate_of in positions:
            if const is not None:
                bit = const
            elif duplicate_of is not None:
                bit = (new_index >> duplicate_of) & 1
            else:
                slot = sum(1 for p, c, d in positions[:position]
                           if c is None and d is None)
                bit = (new_index >> slot) & 1
            if bit:
                old_index |= 1 << position
        if (tt >> old_index) & 1:
            new_tt |= 1 << new_index
    # Collapse trivial results.
    full = (1 << (1 << len(new_ins))) - 1
    if new_tt == 0:
        return (CONST0,)
    if new_tt == full:
        return (CONST1,)
    if len(new_ins) == 1 and new_tt == 0b10:  # buffer
        return (new_ins[0],)
    return (new_tt, tuple(new_ins))


def optimize(netlist: Netlist, remove_dead_ffs: bool = True) -> OptimizeResult:
    """Optimise *netlist*; see :class:`OptimizeResult` for the contract.

    Passes, applied in one forward sweep plus a mark/sweep fixpoint:

    1. constant propagation / input deduplication via truth-table cofactors;
    2. structural hashing — gates with identical function and operands merge;
    3. dead-logic elimination, including flip-flops that feed only dead
       logic (disable with ``remove_dead_ffs=False`` to keep all state).
    """
    stats = {"merged": 0, "folded": 0, "dead_gates": 0, "dead_ffs": 0}
    replace: Dict[int, int] = {CONST0: CONST0, CONST1: CONST1}
    for nets in netlist.inputs.values():
        for net in nets:
            replace[net] = net
    for dff in netlist.dffs:
        replace[dff.q] = dff.q
    for bram in netlist.brams:
        for net in bram.rdata:
            replace[net] = net

    hashed: Dict[Tuple[int, Tuple[int, ...]], int] = {}
    surviving: List[Tuple[int, str, Tuple[int, ...], int, str]] = []
    for gate in netlist.gates:
        ins = tuple(replace[n] for n in gate.ins)
        tt = gate.tt
        folded = _fold(tt, ins)
        if folded is not None:
            if len(folded) == 1:
                replace[gate.out] = folded[0]
                stats["folded"] += 1
                continue
            tt, ins = folded
        key = (tt, ins)
        existing = hashed.get(key)
        if existing is not None:
            replace[gate.out] = existing
            stats["merged"] += 1
            continue
        hashed[key] = gate.out
        replace[gate.out] = gate.out
        surviving.append((gate.out, gate.kind, ins, tt, gate.unit))

    # ---- mark/sweep over gates and flip-flops -------------------------
    gate_of: Dict[int, int] = {out: idx
                               for idx, (out, *_rest) in enumerate(surviving)}
    used = set()

    def mark(net: int) -> None:
        stack = [net]
        while stack:
            current = stack.pop()
            if current in used:
                continue
            used.add(current)
            index = gate_of.get(current)
            if index is not None:
                stack.extend(surviving[index][2])

    for nets in netlist.outputs.values():
        for net in nets:
            mark(replace[net])
    for bram in netlist.brams:
        for net in (*bram.raddr, *bram.waddr, *bram.wdata, bram.we):
            mark(replace[net])

    live_ffs = [False] * len(netlist.dffs)
    if remove_dead_ffs:
        changed = True
        while changed:
            changed = False
            for index, dff in enumerate(netlist.dffs):
                if not live_ffs[index] and dff.q in used:
                    live_ffs[index] = True
                    mark(replace[dff.d])
                    changed = True
    else:
        for index, dff in enumerate(netlist.dffs):
            live_ffs[index] = True
            mark(replace[dff.d])

    # ---- rebuild -------------------------------------------------------
    out = Netlist(netlist.name)
    out.n_nets = netlist.n_nets  # keep the id space: simplifies mapping
    for name, nets in netlist.inputs.items():
        out.add_input(name, nets)
    for index, dff in enumerate(netlist.dffs):
        if live_ffs[index]:
            new = Dff(q=dff.q, d=replace[dff.d], init=dff.init,
                      name=dff.name, unit=dff.unit)
            out.dffs.append(new)
            out._driver[new.q] = "dff"
        else:
            stats["dead_ffs"] += 1
    for bram in netlist.brams:
        out.add_bram(Bram(
            name=bram.name, depth=bram.depth, width=bram.width,
            raddr=tuple(replace[n] for n in bram.raddr),
            rdata=bram.rdata,
            waddr=tuple(replace[n] for n in bram.waddr),
            wdata=tuple(replace[n] for n in bram.wdata),
            we=replace[bram.we], init=list(bram.init), rom=bram.rom,
            unit=bram.unit))
    for net, kind, ins, tt, unit in surviving:
        if net not in used:
            stats["dead_gates"] += 1
            continue
        out.gates.append(Gate(net, kind, ins, tt, unit))
        out._driver[net] = "gate"
    for name, nets in netlist.outputs.items():
        out.add_output(name, [replace[n] for n in nets])

    dead_q = {netlist.dffs[i].q for i in range(len(netlist.dffs))
              if not live_ffs[i]}
    net_map: Dict[int, Optional[int]] = {}
    for net in range(netlist.n_nets):
        mapped = replace.get(net)
        if mapped is None or mapped in dead_q:
            net_map[net] = None
        elif mapped in (CONST0, CONST1):
            net_map[net] = mapped
        elif (mapped in used or out._driver.get(mapped) in
              ("input", "dff", "bram")):
            net_map[net] = mapped
        else:
            net_map[net] = None
    for name, nets in netlist.names.items():
        mapped = [net_map.get(n) for n in nets]
        kept = [m if m is not None else CONST0 for m in mapped]
        # Record the name even if some bits died; locmap reconstructs the
        # per-bit survival from net_map.
        out.add_name(name, kept, netlist.name_units.get(name, ""))
    out.check()
    return OptimizeResult(netlist=out, net_map=net_map, stats=stats)
