"""Fault-location database: mapping HDL elements onto FPGA resources.

Paper, section 2 — *fault location process*: "it is necessary to establish a
mapping between HDL model elements and FPGA internal resources", because
synthesis may rename, merge or remove the ports, signals and variables a
model-based campaign wants to target.  :class:`LocationMap` is that mapping.
It is built once per implementation run from:

* the optimiser's net map (which HDL nets survived, and as what),
* the mapped netlist (which LUT/FF/BRAM produces each surviving net), and
* later, placement (which CB/PM/memory-block coordinates host each element —
  attached by :func:`attach_placement` so campaign code can go straight from
  an HDL name to configuration-memory bits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import LocationError
from ..hdl.netlist import Netlist
from .mapped import MappedNetlist
from .optimize import OptimizeResult


@dataclass
class BitLocation:
    """Where one bit of an HDL signal lives after implementation.

    ``kind`` is one of:

    ``'ff'``
        The bit is stored in flip-flop ``index`` of the mapped design.
    ``'lut'``
        The bit is the combinational output of LUT ``index``.
    ``'input'``
        The bit is a primary input net.
    ``'bram'``
        The bit is a registered memory-block read port.
    ``'const'``
        Synthesis proved the bit constant (``index`` is the value).
    ``'removed'``
        The bit was optimised away entirely.
    ``'merged'``
        The net survives but only as an interior node absorbed into some
        LUT's cone — it is no longer individually addressable.
    """

    kind: str
    index: int = -1
    net: int = -1

    @property
    def targetable(self) -> bool:
        """Whether a fault can be attached to this bit at all."""
        return self.kind in ("ff", "lut", "bram", "input")


@dataclass
class SignalLocation:
    """Implementation location of a whole HDL signal."""

    name: str
    unit: str
    bits: List[BitLocation] = field(default_factory=list)

    @property
    def fully_targetable(self) -> bool:
        """All bits survived implementation as addressable resources."""
        return all(bit.targetable for bit in self.bits)

    @property
    def lost_bits(self) -> List[int]:
        """Indices of bits that were removed, merged or proven constant."""
        return [i for i, bit in enumerate(self.bits) if not bit.targetable]


class LocationMap:
    """The HDL-name -> FPGA-resource mapping for one implementation run."""

    def __init__(self, mapped: MappedNetlist):
        self.mapped = mapped
        self.signals: Dict[str, SignalLocation] = {}
        self.ff_names: Dict[str, int] = {
            ff.name: index for index, ff in enumerate(mapped.ffs) if ff.name}
        self.memories: Dict[str, int] = {
            bram.name: index for index, bram in enumerate(mapped.brams)}
        # Unit partitions, as used by the paper's per-unit experiments
        # (ALU / MEM / FSM ...).
        self.unit_luts: Dict[str, List[int]] = {}
        self.unit_ffs: Dict[str, List[int]] = {}
        for index, lut in enumerate(mapped.luts):
            self.unit_luts.setdefault(lut.unit, []).append(index)
        for index, ff in enumerate(mapped.ffs):
            self.unit_ffs.setdefault(ff.unit, []).append(index)
        # Placement annotations, filled by attach_placement().
        self.placement = None

    # ------------------------------------------------------------------
    def signal(self, name: str) -> SignalLocation:
        """Look up a signal; raise :class:`LocationError` if unknown."""
        try:
            return self.signals[name]
        except KeyError:
            raise LocationError(f"no HDL signal named {name!r}") from None

    def require_targetable(self, name: str) -> SignalLocation:
        """Look up a signal and insist every bit is injectable."""
        location = self.signal(name)
        if not location.fully_targetable:
            raise LocationError(
                f"signal {name!r} lost bits {location.lost_bits} during "
                "implementation (renamed/merged/removed by optimisation)")
        return location

    def units(self) -> List[str]:
        """All functional-unit tags present in the implementation."""
        return sorted(set(self.unit_luts) | set(self.unit_ffs))

    def luts_in_unit(self, unit: str) -> List[int]:
        """Mapped LUT indices belonging to *unit*."""
        return list(self.unit_luts.get(unit, []))

    def ffs_in_unit(self, unit: str) -> List[int]:
        """Mapped FF indices belonging to *unit*."""
        return list(self.unit_ffs.get(unit, []))

    def memory(self, name: str) -> int:
        """BRAM index of a named memory block."""
        try:
            return self.memories[name]
        except KeyError:
            raise LocationError(f"no memory block named {name!r}") from None

    def summary(self) -> Dict[str, int]:
        """Counts of signal-survival outcomes, for reports."""
        counts = {"targetable": 0, "degraded": 0}
        for location in self.signals.values():
            if location.fully_targetable:
                counts["targetable"] += 1
            else:
                counts["degraded"] += 1
        return counts

    # ------------------------------------------------------------------
    # placement annotations
    # ------------------------------------------------------------------
    def attach_placement(self, placement) -> None:
        """Attach placement so names resolve all the way to CB sites."""
        self.placement = placement

    def site_of(self, name: str, bit: int = 0) -> Tuple[int, int]:
        """The CB (row, col) hosting one bit of an HDL signal.

        This is the complete fault-location chain of the paper's section 2:
        HDL element -> surviving net -> mapped resource -> device site ->
        (via the architecture) configuration-frame bits.  Requires
        :meth:`attach_placement`.
        """
        if self.placement is None:
            raise LocationError(
                "no placement attached; run the implementation flow first")
        location = self.signal(name)
        bit_location = location.bits[bit]
        if bit_location.kind == "ff":
            return self.placement.site_of_ff[bit_location.index]
        if bit_location.kind == "lut":
            return self.placement.site_of_lut[bit_location.index]
        raise LocationError(
            f"signal {name!r} bit {bit} is {bit_location.kind}; only "
            "FF- and LUT-backed bits occupy a CB site")

    def describe_signal(self, name: str) -> str:
        """Human-readable implementation report for one HDL signal."""
        location = self.signal(name)
        parts = []
        for index, bit_location in enumerate(location.bits):
            entry = f"[{index}] {bit_location.kind}"
            if bit_location.kind in ("ff", "lut", "bram"):
                entry += f" #{bit_location.index}"
            if bit_location.kind == "const":
                entry += f"={bit_location.index}"
            if self.placement is not None and bit_location.kind == "ff":
                entry += f" @CB{self.placement.site_of_ff[bit_location.index]}"
            elif self.placement is not None and bit_location.kind == "lut":
                entry += \
                    f" @CB{self.placement.site_of_lut[bit_location.index]}"
            parts.append(entry)
        return f"{name} ({location.unit or 'top'}): " + ", ".join(parts)


def build_location_map(source: Netlist, optimized: OptimizeResult,
                       mapped: MappedNetlist) -> LocationMap:
    """Construct the :class:`LocationMap` for an implementation run."""
    locmap = LocationMap(mapped)
    lut_of = mapped.lut_of_net()
    ff_of = mapped.ff_of_net()
    input_nets = set()
    for nets in mapped.inputs.values():
        input_nets.update(nets)
    bram_nets = {}
    for index, bram in enumerate(mapped.brams):
        for net in bram.rdata:
            bram_nets[net] = index

    for name, nets in source.names.items():
        location = SignalLocation(
            name=name, unit=source.name_units.get(name, ""))
        for net in nets:
            mapped_net = optimized.net_map.get(net)
            if mapped_net is None:
                location.bits.append(BitLocation("removed"))
            elif mapped_net in (0, 1):
                location.bits.append(
                    BitLocation("const", index=mapped_net, net=mapped_net))
            elif mapped_net in ff_of:
                location.bits.append(
                    BitLocation("ff", index=ff_of[mapped_net],
                                net=mapped_net))
            elif mapped_net in lut_of:
                location.bits.append(
                    BitLocation("lut", index=lut_of[mapped_net],
                                net=mapped_net))
            elif mapped_net in input_nets:
                location.bits.append(
                    BitLocation("input", net=mapped_net))
            elif mapped_net in bram_nets:
                location.bits.append(
                    BitLocation("bram", index=bram_nets[mapped_net],
                                net=mapped_net))
            else:
                location.bits.append(
                    BitLocation("merged", net=mapped_net))
        locmap.signals[name] = location
    return locmap
