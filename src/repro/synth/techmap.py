"""Technology mapping: cover a gate netlist with 4-input LUTs.

A greedy cone-packing mapper: every gate's fan-in cone is grown by absorbing
single-fanout predecessor gates while the cone's leaf support stays within
four nets; the cone is then collapsed into one LUT by exhaustive truth-table
evaluation (at most 16 rows).  LUTs whose outputs end up unread are swept at
the end, so absorption never duplicates logic.

This mirrors the paper's observation (section 4.2 and figure 5) that after
implementation "the contents of the LUT represent the truth table of a
circuit" from which a structural representation can be extracted — the FADES
pulse injector performs exactly that extraction in reverse.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import SynthesisError
from ..hdl.netlist import CONST0, CONST1, Dff, Gate, Netlist
from .mapped import LUT_INPUTS, Lut, MappedNetlist


def _cone_truth_table(root: Gate, leaves: Tuple[int, ...],
                      gate_of: Dict[int, Gate]) -> int:
    """Exhaustively evaluate the cone rooted at *root* over its *leaves*."""
    tt = 0
    for assignment in range(1 << len(leaves)):
        values: Dict[int, int] = {CONST0: 0, CONST1: 1}
        for position, leaf in enumerate(leaves):
            values[leaf] = (assignment >> position) & 1

        def eval_net(net: int) -> int:
            cached = values.get(net)
            if cached is not None:
                return cached
            gate = gate_of[net]
            index = 0
            for position, in_net in enumerate(gate.ins):
                if eval_net(in_net):
                    index |= 1 << position
            value = (gate.tt >> index) & 1
            values[net] = value
            return value

        if eval_net(root.out):
            tt |= 1 << assignment
    return tt


def techmap(netlist: Netlist,
            keep_nets: Optional[Set[int]] = None) -> MappedNetlist:
    """Map an optimised gate netlist onto 4-input LUTs.

    Parameters
    ----------
    netlist:
        The design to map; gates must have at most three inputs (the IR
        guarantees this).
    keep_nets:
        Nets that must survive mapping as explicit LUT outputs even when
        absorbable — used to protect observation points.  By default only
        structurally required nets (multi-fanout, state inputs, primary
        outputs) survive, matching real tools where internal HDL signals
        may disappear.

    Returns the :class:`MappedNetlist`; net identifiers are preserved.
    """
    keep = set(keep_nets or ())
    fanout = netlist.fanout_counts()
    gate_of: Dict[int, Gate] = {gate.out: gate for gate in netlist.gates}

    mapped = MappedNetlist(netlist.name, netlist.n_nets)
    for name, nets in netlist.inputs.items():
        mapped.inputs[name] = list(nets)
    for name, nets in netlist.outputs.items():
        mapped.outputs[name] = list(nets)
    mapped.names = {name: list(nets) for name, nets in netlist.names.items()}
    mapped.name_units = dict(netlist.name_units)
    for dff in netlist.dffs:
        mapped.ffs.append(Dff(q=dff.q, d=dff.d, init=dff.init,
                              name=dff.name, unit=dff.unit))
    mapped.brams = netlist.brams  # immutable from the mapper's viewpoint

    # ---- grow a cone for every gate ----------------------------------
    candidate_luts: List[Lut] = []
    for gate in netlist.gates:
        leaves: List[int] = []
        for net in gate.ins:
            if net not in leaves:
                leaves.append(net)
        changed = True
        while changed:
            changed = False
            for position, leaf in enumerate(leaves):
                inner = gate_of.get(leaf)
                if inner is None:
                    continue
                if fanout[leaf] != 1 or leaf in keep:
                    continue
                merged: List[int] = leaves[:position] + leaves[position + 1:]
                for in_net in inner.ins:
                    if in_net in (CONST0, CONST1):
                        continue
                    if in_net not in merged:
                        merged.append(in_net)
                if len(merged) <= LUT_INPUTS:
                    leaves = merged
                    changed = True
                    break
        if not leaves:
            raise SynthesisError(
                f"gate {gate.kind}->{gate.out} collapsed to a constant; "
                "run the optimiser before mapping")
        tt = _cone_truth_table(gate, tuple(leaves), gate_of)
        candidate_luts.append(Lut(out=gate.out, ins=tuple(leaves), tt=tt,
                                  unit=gate.unit))

    # ---- sweep LUTs made redundant by absorption ----------------------
    lut_of: Dict[int, Lut] = {lut.out: lut for lut in candidate_luts}
    used: Set[int] = set()
    stack: List[int] = list(keep)
    for nets in netlist.outputs.values():
        stack.extend(nets)
    for dff in mapped.ffs:
        stack.append(dff.d)
    for bram in mapped.brams:
        stack.extend((*bram.raddr, *bram.waddr, *bram.wdata, bram.we))
    while stack:
        net = stack.pop()
        if net in used:
            continue
        used.add(net)
        lut = lut_of.get(net)
        if lut is not None:
            stack.extend(lut.ins)

    mapped.luts = [lut for lut in candidate_luts if lut.out in used]
    mapped.check()
    return mapped
