"""Synthesis substrate (S2): optimisation, technology mapping, location map.

:func:`synthesize` is the convenience entry point: it takes an elaborated
:class:`~repro.hdl.netlist.Netlist` and returns the mapped design plus the
HDL-to-resource :class:`~repro.synth.locmap.LocationMap` the fault-location
process consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.netlist import Netlist
from .locmap import BitLocation, LocationMap, SignalLocation, build_location_map
from .mapped import LUT_INPUTS, Lut, MappedNetlist, MappedSim
from .optimize import OptimizeResult, optimize
from .techmap import techmap


@dataclass
class SynthesisResult:
    """Output of a full synthesis + implementation-mapping run."""

    mapped: MappedNetlist
    locmap: LocationMap
    optimize_stats: dict


def synthesize(netlist: Netlist, remove_dead_ffs: bool = True,
               keep_nets=None) -> SynthesisResult:
    """Run the full front-end flow: optimise, map, build the location map."""
    optimized = optimize(netlist, remove_dead_ffs=remove_dead_ffs)
    mapped = techmap(optimized.netlist, keep_nets=keep_nets)
    locmap = build_location_map(netlist, optimized, mapped)
    return SynthesisResult(mapped=mapped, locmap=locmap,
                           optimize_stats=optimized.stats)


__all__ = [
    "BitLocation",
    "LocationMap",
    "SignalLocation",
    "build_location_map",
    "LUT_INPUTS",
    "Lut",
    "MappedNetlist",
    "MappedSim",
    "OptimizeResult",
    "optimize",
    "techmap",
    "SynthesisResult",
    "synthesize",
]
