"""Technology-mapped netlist: 4-input LUTs, flip-flops and memory blocks.

This is the implementation-level view of a design — the paper's "synthesis
and implementation" output — expressed in the resource vocabulary of the
generic FPGA architecture (section 3): function generators built as 4-input
look-up tables, D flip-flops, and embedded memory blocks.  Net identifiers
are shared with the source :class:`~repro.hdl.netlist.Netlist`, which lets
the location map trace HDL names down to mapped resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SynthesisError
from ..hdl.netlist import CONST0, CONST1, Bram, Dff

LUT_INPUTS = 4


@dataclass
class Lut:
    """A mapped look-up table.

    ``tt`` is the little-endian truth table over ``ins``; with fewer than
    four inputs only the low ``2**len(ins)`` bits are meaningful.  The FPGA
    substrate pads the table to 16 bits when generating configuration data.
    """

    out: int
    ins: Tuple[int, ...]
    tt: int
    unit: str = ""

    def eval(self, values: Sequence[int]) -> int:
        """Evaluate over binary *values* indexed by net id."""
        index = 0
        for position, net in enumerate(self.ins):
            if values[net]:
                index |= 1 << position
        return (self.tt >> index) & 1

    def padded_tt(self) -> int:
        """Truth table replicated over exactly four variables (16 bits)."""
        mask = (1 << len(self.ins)) - 1
        tt = 0
        for index in range(16):
            if (self.tt >> (index & mask)) & 1:
                tt |= 1 << index
        return tt


class MappedNetlist:
    """A design after technology mapping."""

    def __init__(self, name: str, n_nets: int):
        self.name = name
        self.n_nets = n_nets
        self.luts: List[Lut] = []
        self.ffs: List[Dff] = []
        self.brams: List[Bram] = []
        self.inputs: Dict[str, List[int]] = {}
        self.outputs: Dict[str, List[int]] = {}
        self.names: Dict[str, List[int]] = {}
        self.name_units: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Resource usage summary (the numbers quoted in paper §6/7.1)."""
        return {
            "luts": len(self.luts),
            "ffs": len(self.ffs),
            "brams": len(self.brams),
            "bram_bits": sum(b.depth * b.width for b in self.brams),
            "inputs": sum(len(v) for v in self.inputs.values()),
            "outputs": sum(len(v) for v in self.outputs.values()),
        }

    def lut_of_net(self) -> Dict[int, int]:
        """Map net id -> index of the LUT driving it."""
        return {lut.out: index for index, lut in enumerate(self.luts)}

    def ff_of_net(self) -> Dict[int, int]:
        """Map net id -> index of the flip-flop driving it."""
        return {ff.q: index for index, ff in enumerate(self.ffs)}

    def check(self) -> None:
        """Validate structural invariants of the mapped design."""
        produced = {CONST0, CONST1}

        def produce(net: int, driver: str) -> None:
            if net in produced:
                raise SynthesisError(
                    f"net {net} driven twice (second driver: {driver})")
            produced.add(net)

        for name, nets in self.inputs.items():
            for net in nets:
                produce(net, f"input {name!r}")
        for ff in self.ffs:
            produce(ff.q, f"FF {ff.name!r}")
        for bram in self.brams:
            for net in bram.rdata:
                produce(net, f"BRAM {bram.name!r}")
        for lut in self.luts:
            if len(lut.ins) > LUT_INPUTS:
                raise SynthesisError(
                    f"LUT {lut.out} has {len(lut.ins)} inputs")
            if not 0 <= lut.tt < (1 << (1 << len(lut.ins))):
                raise SynthesisError(
                    f"LUT {lut.out} truth table {lut.tt:#x} wider than "
                    f"its {len(lut.ins)}-input arity allows")
            for net in lut.ins:
                if net not in produced:
                    raise SynthesisError(
                        f"LUT {lut.out} reads unproduced net {net} "
                        "(not topological)")
            produce(lut.out, f"LUT {lut.out}")
        for ff in self.ffs:
            if ff.d not in produced:
                raise SynthesisError(f"FF {ff.name!r} D reads dangling net")
        for bram in self.brams:
            for net in (*bram.raddr, *bram.waddr, *bram.wdata, bram.we):
                if net not in produced:
                    raise SynthesisError(
                        f"BRAM {bram.name!r} reads dangling net {net}")
        for nets in self.outputs.values():
            for net in nets:
                if net not in produced:
                    raise SynthesisError(f"output reads dangling net {net}")


class MappedSim:
    """Reference cycle simulator for a mapped netlist.

    Used by the test-suite to prove that technology mapping preserved the
    design's behaviour; the actual FADES experiments run on the FPGA device
    simulator, which executes from configuration memory instead.
    """

    def __init__(self, mapped: MappedNetlist):
        mapped.check()
        self.mapped = mapped
        self.cycle = 0
        self._values = [0] * mapped.n_nets
        self._ff_state = [ff.init for ff in mapped.ffs]
        self._mem_state = {b.name: list(b.init) for b in mapped.brams}
        self._held = {name: 0 for name in mapped.inputs}
        compiled = []
        for lut in mapped.luts:
            ins = list(lut.ins) + [CONST0] * (4 - len(lut.ins))
            compiled.append((lut.out, lut.padded_tt(),
                             ins[0], ins[1], ins[2], ins[3]))
        self._compiled = compiled

    def reset(self) -> None:
        """Restore initial state (GSR-like global reset)."""
        self.cycle = 0
        self._ff_state = [ff.init for ff in self.mapped.ffs]
        for bram in self.mapped.brams:
            self._mem_state[bram.name] = list(bram.init)
            for net in bram.rdata:
                self._values[net] = 0
        for name in self._held:
            self._held[name] = 0

    def step(self, inputs: Optional[Dict[str, int]] = None
             ) -> Dict[str, Optional[int]]:
        """Advance one clock cycle; return settled primary outputs."""
        if inputs:
            for name, value in inputs.items():
                self._held[name] = value
        values = self._values
        values[CONST0] = 0
        values[CONST1] = 1
        for name, nets in self.mapped.inputs.items():
            held = self._held[name]
            for position, net in enumerate(nets):
                values[net] = (held >> position) & 1
        for ff, state in zip(self.mapped.ffs, self._ff_state):
            values[ff.q] = state
        for out, tt, i0, i1, i2, i3 in self._compiled:
            values[out] = (tt >> (values[i0] | values[i1] << 1
                                  | values[i2] << 2 | values[i3] << 3)) & 1
        outputs = {}
        for name, nets in self.mapped.outputs.items():
            value = 0
            for position, net in enumerate(nets):
                value |= values[net] << position
            outputs[name] = value
        for index, ff in enumerate(self.mapped.ffs):
            self._ff_state[index] = values[ff.d]
        for bram in self.mapped.brams:
            cells = self._mem_state[bram.name]
            raddr = 0
            for position, net in enumerate(bram.raddr):
                raddr |= values[net] << position
            read = cells[raddr] if raddr < bram.depth else 0
            if not bram.rom and values[bram.we]:
                waddr = 0
                for position, net in enumerate(bram.waddr):
                    waddr |= values[net] << position
                wdata = 0
                for position, net in enumerate(bram.wdata):
                    wdata |= values[net] << position
                if waddr < bram.depth:
                    cells[waddr] = wdata
            for position, net in enumerate(bram.rdata):
                values[net] = (read >> position) & 1
        self.cycle += 1
        return outputs

    def state_snapshot(self) -> Tuple:
        """Hashable snapshot of all architectural state."""
        mems = tuple(sorted(
            (name, tuple(cells)) for name, cells in self._mem_state.items()))
        return (tuple(self._ff_state), mems)
