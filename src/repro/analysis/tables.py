"""Generators for the paper's tables 1–4.

Each function regenerates one table as structured data plus a plain-text
rendering; the corresponding bench in ``benchmarks/`` prints it and checks
the shape assertions recorded in ``DESIGN.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core import (FaultModel, Target, TargetKind)
from ..core.faults import Fault
from ..errors import UnsupportedFaultError
from .experiments import (Evaluation, PAPER_FAULTS_PER_EXPERIMENT,
                          PAPER_TABLE2, default_fault_count)


# ---------------------------------------------------------------------------
# Table 1 — fault model / FPGA target / mechanism matrix
# ---------------------------------------------------------------------------
@dataclass
class MechanismRow:
    """One row of table 1, validated by actually executing the mechanism."""

    fault_model: str
    fpga_target: str
    description: str
    observations: str
    transactions: int = 0  # proof the mechanism really reconfigured


TABLE1_ROWS: List[Tuple[str, str, str, str]] = [
    ("bitflip", "FFs (GSR line)", "Pulse GSR line", "Slower than LSR"),
    ("bitflip", "FFs (LSR line)", "Pulse LSR line", "Faster than GSR"),
    ("bitflip", "Memory blocks", "Modify memory bit",
     "Persists until rewritten"),
    ("pulse", "CB inputs", "Use the input inverter mux",
     "Not applicable to LUT inputs"),
    ("pulse", "LUTs", "Modify LUT contents", "Any LUT line"),
    ("delay", "PMs (fan-out)", "Increase fan-out", "Good for small delays"),
    ("delay", "PMs (reroute)", "Increase routing path",
     "Good for large delays"),
    ("indetermination", "FFs", "See Bit-flip",
     "Randomly generate the final value"),
    ("indetermination", "LUTs", "See Pulse",
     "Randomly generate the final value"),
]


def generate_table1(evaluation: Evaluation) -> List[MechanismRow]:
    """Execute every mechanism once; report the transactions it used."""
    fades = evaluation.fades
    cycles = min(evaluation.cycles, 120)
    locmap = fades.locmap
    mapped = locmap.mapped
    routed_ff = next(
        (i for i, _ff in enumerate(mapped.ffs)
         if not fades.impl.placement.sites[
             fades.impl.placement.site_of_ff[i]].packed),
        0)
    mag = sum(evaluation.delay_magnitudes()) / 2
    exemplars = [
        Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 10,
              mechanism="gsr"),
        Fault(FaultModel.BITFLIP, Target(TargetKind.FF, 0), 10,
              mechanism="lsr"),
        Fault(FaultModel.BITFLIP,
              Target(TargetKind.MEMORY_BIT, locmap.memory("iram"),
                     addr=0x30, bit=0), 10),
        Fault(FaultModel.PULSE, Target(TargetKind.CB_INPUT, routed_ff), 10,
              duration_cycles=2),
        Fault(FaultModel.PULSE, Target(TargetKind.LUT, 0), 10,
              duration_cycles=2),
        Fault(FaultModel.DELAY, Target(TargetKind.NET, mapped.ffs[0].q), 10,
              duration_cycles=2, magnitude_ns=0.1, mechanism="fanout"),
        Fault(FaultModel.DELAY, Target(TargetKind.NET, mapped.ffs[0].q), 10,
              duration_cycles=2, magnitude_ns=mag, mechanism="reroute"),
        Fault(FaultModel.INDETERMINATION, Target(TargetKind.FF, 0), 10,
              duration_cycles=2),
        Fault(FaultModel.INDETERMINATION, Target(TargetKind.LUT, 0), 10,
              duration_cycles=2),
    ]
    rows: List[MechanismRow] = []
    for (model, target, descr, obs), fault in zip(TABLE1_ROWS, exemplars):
        result = fades.run_experiment(fault, cycles)
        rows.append(MechanismRow(model, target, descr, obs,
                                 transactions=result.cost.transactions))
    return rows


def render_table1(rows: List[MechanismRow]) -> str:
    lines = ["Table 1. Emulation of transient fault models with FPGAs",
             f"{'Fault model':<16} {'FPGA target':<18} "
             f"{'Description':<28} {'Observations':<30} txns"]
    for row in rows:
        lines.append(f"{row.fault_model:<16} {row.fpga_target:<18} "
                     f"{row.description:<28} {row.observations:<30} "
                     f"{row.transactions}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 2 — emulation time and speed-up, FADES vs VFIT
# ---------------------------------------------------------------------------
@dataclass
class SpeedupRow:
    """One row of table 2."""

    experiment: str
    fades_mean_s: float          # measured on this testbed
    vfit_mean_s: float           # measured (model-size-scaled) VFIT time
    speedup: float               # measured ratio
    fades_projected_s: float     # projected to the paper's scale
    vfit_projected_s: float
    speedup_projected: float
    paper_speedup: Optional[float] = None


def generate_table2(evaluation: Evaluation,
                    count: Optional[int] = None) -> List[SpeedupRow]:
    """Run every experiment class through both tools and compare times."""
    fades = evaluation.fades
    vfit = evaluation.vfit
    rows: List[SpeedupRow] = []
    vfit_projected = evaluation.project_vfit_seconds()
    for name, spec in evaluation.experiment_matrix(count):
        fades_result = evaluation.run_fades(spec)
        try:
            vfit_result = vfit.run(spec, seed=evaluation.seed)
            vfit_mean = vfit_result.mean_emulation_s
        except UnsupportedFaultError:
            vfit_mean = float("nan")
        fades_mean = fades_result.mean_emulation_s
        projected = evaluation.project_fades_seconds(
            fades_mean - fades_result.golden.cycles
            / fades.board.params.clock_hz)
        rows.append(SpeedupRow(
            experiment=name,
            fades_mean_s=fades_mean,
            vfit_mean_s=vfit_mean,
            speedup=(vfit_mean / fades_mean) if fades_mean else 0.0,
            fades_projected_s=projected,
            vfit_projected_s=vfit_projected,
            speedup_projected=vfit_projected / projected if projected else 0,
            paper_speedup=(PAPER_TABLE2.get(name) or (None, None, None))[2],
        ))
    return rows


def render_table2(rows: List[SpeedupRow]) -> str:
    lines = [
        "Table 2. Speed-up obtained when performing the experiments "
        "via FADES",
        f"{'Experiment':<18} {'FADES s/f':>10} {'VFIT s/f':>9} "
        f"{'speedup':>8} | {'proj FADES':>10} {'proj VFIT':>9} "
        f"{'proj x':>7} {'paper x':>8}"]
    for row in rows:
        lines.append(
            f"{row.experiment:<18} {row.fades_mean_s:>10.3f} "
            f"{row.vfit_mean_s:>9.3f} {row.speedup:>8.2f} | "
            f"{row.fades_projected_s:>10.3f} {row.vfit_projected_s:>9.3f} "
            f"{row.speedup_projected:>7.2f} "
            f"{row.paper_speedup if row.paper_speedup else float('nan'):>8.2f}")
    mean_proj = sum(r.fades_projected_s for r in rows) / len(rows)
    lines.append(
        f"Estimated mean time for {PAPER_FAULTS_PER_EXPERIMENT} faults "
        f"(all models): FADES {mean_proj * PAPER_FAULTS_PER_EXPERIMENT:.0f} s"
        f" vs VFIT {rows[0].vfit_projected_s * PAPER_FAULTS_PER_EXPERIMENT:.0f} s"
        f" -> x{rows[0].vfit_projected_s / mean_proj:.2f} "
        "(paper: 1379 s vs 21600 s -> x15.66)")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 3 — percentage of failures, FADES vs VFIT
# ---------------------------------------------------------------------------
@dataclass
class ComparisonRow:
    """One row of table 3: failure %, per duration band, both tools."""

    fault_model: str
    location: str
    fades_pct: Tuple[float, ...]
    vfit_pct: Optional[Tuple[float, ...]]


def generate_table3(evaluation: Evaluation,
                    count: Optional[int] = None) -> List[ComparisonRow]:
    """The paper's FADES-vs-VFIT agreement experiment (section 6.3)."""
    vfit = evaluation.vfit
    experiments = [
        (FaultModel.BITFLIP, "ffs", "FFs", (1,)),
        (FaultModel.BITFLIP, "memory:iram", "Memory", (1,)),
        (FaultModel.PULSE, "luts:ALU", "ALU", (0, 1, 2)),
        (FaultModel.DELAY, "nets:seq", "FFs", (0, 1, 2)),
        (FaultModel.DELAY, "nets:comb:ALU", "ALU", (0, 1, 2)),
        (FaultModel.INDETERMINATION, "ffs", "FFs", (0, 1, 2)),
        (FaultModel.INDETERMINATION, "luts:ALU", "ALU", (0, 1, 2)),
    ]
    rows: List[ComparisonRow] = []
    for model, pool, location, bands in experiments:
        fades_pct: List[float] = []
        vfit_pct: List[float] = []
        vfit_supported = True
        for band in bands:
            spec = evaluation.spec(model, pool, band, count)
            fades_pct.append(
                evaluation.run_fades(spec, seed=evaluation.seed + band)
                .failure_percent())
            if vfit_supported:
                try:
                    vfit_pct.append(
                        vfit.run(spec, seed=evaluation.seed + band)
                        .failure_percent())
                except UnsupportedFaultError:
                    vfit_supported = False
        rows.append(ComparisonRow(
            fault_model=model.value, location=location,
            fades_pct=tuple(fades_pct),
            vfit_pct=tuple(vfit_pct) if vfit_supported else None))
    return rows


def render_table3(rows: List[ComparisonRow]) -> str:
    lines = ["Table 3. Comparison of the results obtained via FADES and "
             "VFIT (percentage of failures, duration bands <1 / 1-10 / "
             "11-20 cycles)",
             f"{'Fault model':<16} {'Location':<9} {'FADES':<24} {'VFIT'}"]
    for row in rows:
        fades = " / ".join(f"{p:.2f}" for p in row.fades_pct)
        vfit = (" / ".join(f"{p:.2f}" for p in row.vfit_pct)
                if row.vfit_pct is not None else "-")
        lines.append(f"{row.fault_model:<16} {row.location:<9} "
                     f"{fades:<24} {vfit}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Table 4 — a combinational pulse manifests as a multiple bit-flip
# ---------------------------------------------------------------------------
@dataclass
class MultipleBitflipRow:
    """Registers affected by one combinational pulse (table 4)."""

    injection_point: str
    affected: List[Tuple[str, int, int]]  # (register, golden, faulty)


def generate_table4(evaluation: Evaluation,
                    max_rows: int = 2) -> List[MultipleBitflipRow]:
    """Find LUTs whose single-cycle pulse flips several registers at once.

    Reproduces the paper's section 7.2 observation: "the occurrence of a
    fault in a combinational path, which can drive many FFs, may lead to
    the occurrence of a bit-flip in many of these FFs".
    """
    fades = evaluation.fades
    device = fades.device
    locmap = fades.locmap
    registers = [name for name in evaluation.model.register_signals
                 if name in locmap.signals]

    def register_values() -> Dict[str, int]:
        values = {}
        for name in registers:
            bits = locmap.signals[name].bits
            value = 0
            ok = True
            for position, bit in enumerate(bits):
                if bit.kind != "ff":
                    ok = False
                    break
                value |= device.ff_state()[bit.index] << position
            if ok:
                values[name] = value
        return values

    candidates = (locmap.luts_in_unit("MEM") + locmap.luts_in_unit("FSM")
                  + locmap.luts_in_unit("ALU"))
    inject_cycle = max(4, evaluation.cycles // 3)
    rows: List[MultipleBitflipRow] = []
    for lut_index in candidates:
        if len(rows) >= max_rows:
            break
        # Golden register snapshot one cycle after the injection point.
        device.reset_system()
        device.run(inject_cycle + 1)
        golden = register_values()
        # Faulty run: one-cycle pulse on the LUT output at inject_cycle.
        fault = Fault(FaultModel.PULSE, Target(TargetKind.LUT, lut_index),
                      inject_cycle, duration_cycles=1.0)
        device.reset_system()
        injection = fades.injector.prepare(fault)
        device.run(inject_cycle)
        injection.inject()
        device.step()
        injection.remove()
        faulty = register_values()
        fades._restore_configuration()
        affected = [(name, golden[name], faulty[name])
                    for name in golden if golden[name] != faulty[name]]
        if len(affected) >= 2:
            site = fades.impl.placement.site_of_lut[lut_index]
            rows.append(MultipleBitflipRow(
                injection_point=f"CB{site} LUT {lut_index}",
                affected=affected))
    return rows


def render_table4(rows: List[MultipleBitflipRow]) -> str:
    lines = ["Table 4. Effects of the occurrence of pulses in "
             "combinational logic",
             f"{'Injection point':<26} {'Affected register':<16} "
             f"{'Fault free':>10} {'Faulty':>7}"]
    for row in rows:
        first = True
        for name, golden, faulty in row.affected:
            point = row.injection_point if first else ""
            lines.append(f"{point:<26} {name:<16} "
                         f"{golden:>10X} {faulty:>7X}")
            first = False
    return "\n".join(lines)
