"""Analysis & reporting (A): regenerate the paper's tables and figures."""

from .experiments import (Evaluation, PAPER_FAULTS_PER_EXPERIMENT,
                          PAPER_MODEL_ELEMENTS, PAPER_TABLE2, PAPER_TABLE3,
                          PAPER_VFIT_MEAN_S, PAPER_WORKLOAD_CYCLES,
                          default_fault_count)
from .figures import (Figure, FigureBar, generate_fig10, generate_fig11,
                      generate_fig12, generate_fig13, generate_fig14,
                      generate_fig15)
from .report import full_report
from .specfile import load_spec, run_spec, run_spec_file
from .stats import (Proportion, failure_interval, sample_size_for,
                    wilson)
from .tables import (ComparisonRow, MechanismRow, MultipleBitflipRow,
                     SpeedupRow, generate_table1, generate_table2,
                     generate_table3, generate_table4, render_table1,
                     render_table2, render_table3, render_table4)

__all__ = [
    "Evaluation",
    "PAPER_FAULTS_PER_EXPERIMENT",
    "PAPER_MODEL_ELEMENTS",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "PAPER_VFIT_MEAN_S",
    "PAPER_WORKLOAD_CYCLES",
    "default_fault_count",
    "Figure",
    "FigureBar",
    "generate_fig10",
    "generate_fig11",
    "generate_fig12",
    "generate_fig13",
    "generate_fig14",
    "generate_fig15",
    "full_report",
    "load_spec",
    "run_spec",
    "run_spec_file",
    "Proportion",
    "failure_interval",
    "sample_size_for",
    "wilson",
    "ComparisonRow",
    "MechanismRow",
    "MultipleBitflipRow",
    "SpeedupRow",
    "generate_table1",
    "generate_table2",
    "generate_table3",
    "generate_table4",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
]
