"""Statistical helpers for campaign results.

The paper reports plain percentages over 3000 faults; our default bench
campaigns are far smaller, so every percentage deserves a confidence
interval.  Wilson score intervals behave well at small *n* and extreme
proportions (0 or 100 %), which is exactly the regime of the
combinational-fault experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Tuple

from ..core.classify import OutcomeCounts

# The z values the docs (and years of journals/tests) quote for the three
# standard confidence levels.  NormalDist().inv_cdf returns full-precision
# quantiles (1.95996… for 0.95); keeping the documented 4-decimal values
# for exactly these keys preserves bit-identical intervals.  Lookup is by
# exact float key on purpose: 0.951 must get the exact quantile, not the
# rounded 0.95 entry.
_Z_DOCUMENTED = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def z_value(confidence: float) -> float:
    """Two-sided standard-normal critical value for a confidence level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0, 1)")
    z = _Z_DOCUMENTED.get(confidence)
    if z is None:
        z = NormalDist().inv_cdf(0.5 + confidence / 2)
    return z


@dataclass(frozen=True)
class Proportion:
    """An estimated proportion with its Wilson confidence interval."""

    successes: int
    trials: int
    low: float    # interval bounds as fractions in [0, 1]
    high: float

    @property
    def point(self) -> float:
        """The plain point estimate (fraction)."""
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    def percent(self) -> Tuple[float, float, float]:
        """(point, low, high) as percentages."""
        return (100 * self.point, 100 * self.low, 100 * self.high)

    def render(self) -> str:
        point, low, high = self.percent()
        return f"{point:.1f}% [{low:.1f}, {high:.1f}]"

    def overlaps(self, other: "Proportion") -> bool:
        """Whether the two intervals intersect (a crude same-rate test)."""
        return self.low <= other.high and other.low <= self.high


def wilson(successes: int, trials: int,
           confidence: float = 0.95) -> Proportion:
    """Wilson score interval for a binomial proportion.

    ``confidence`` picks the z value via the exact inverse normal CDF
    (:func:`z_value`); the documented 0.90/0.95/0.99 levels keep their
    historical 4-decimal z values bit-for-bit.
    """
    if trials < 0 or not 0 <= successes <= max(trials, 0):
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if trials == 0:
        return Proportion(0, 0, 0.0, 1.0)
    z = z_value(confidence)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return Proportion(successes, trials, low=low, high=high)


def failure_interval(counts: OutcomeCounts,
                     confidence: float = 0.95) -> Proportion:
    """Wilson interval for a campaign's failure rate."""
    return wilson(counts.failure, counts.total, confidence)


def sample_size_for(margin: float, worst_p: float = 0.5,
                    confidence: float = 0.95) -> int:
    """Faults needed so the interval half-width stays below *margin*.

    With the paper's 3000 faults the worst-case margin is ~1.8 points;
    the default bench campaigns trade that for wall-clock time.
    """
    if not 0 < margin < 1:
        raise ValueError("margin must be a fraction in (0, 1)")
    z = z_value(confidence)
    return math.ceil(z * z * worst_p * (1 - worst_p) / (margin * margin))
