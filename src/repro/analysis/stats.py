"""Statistical helpers for campaign results.

The paper reports plain percentages over 3000 faults; our default bench
campaigns are far smaller, so every percentage deserves a confidence
interval.  Wilson score intervals behave well at small *n* and extreme
proportions (0 or 100 %), which is exactly the regime of the
combinational-fault experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..core.classify import OutcomeCounts


@dataclass(frozen=True)
class Proportion:
    """An estimated proportion with its Wilson confidence interval."""

    successes: int
    trials: int
    low: float    # interval bounds as fractions in [0, 1]
    high: float

    @property
    def point(self) -> float:
        """The plain point estimate (fraction)."""
        if self.trials == 0:
            return 0.0
        return self.successes / self.trials

    def percent(self) -> Tuple[float, float, float]:
        """(point, low, high) as percentages."""
        return (100 * self.point, 100 * self.low, 100 * self.high)

    def render(self) -> str:
        point, low, high = self.percent()
        return f"{point:.1f}% [{low:.1f}, {high:.1f}]"

    def overlaps(self, other: "Proportion") -> bool:
        """Whether the two intervals intersect (a crude same-rate test)."""
        return self.low <= other.high and other.low <= self.high


def wilson(successes: int, trials: int,
           confidence: float = 0.95) -> Proportion:
    """Wilson score interval for a binomial proportion.

    ``confidence`` picks the z value (0.90/0.95/0.99 supported exactly;
    anything else falls back to a normal-quantile approximation).
    """
    if trials < 0 or not 0 <= successes <= max(trials, 0):
        raise ValueError(f"invalid counts: {successes}/{trials}")
    if trials == 0:
        return Proportion(0, 0, 0.0, 1.0)
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(
        round(confidence, 2))
    if z is None:
        z = _normal_quantile(0.5 + confidence / 2)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials))
    low = 0.0 if successes == 0 else max(0.0, centre - margin)
    high = 1.0 if successes == trials else min(1.0, centre + margin)
    return Proportion(successes, trials, low=low, high=high)


def _normal_quantile(q: float) -> float:
    """Acklam's rational approximation of the standard normal quantile."""
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile argument {q} outside (0, 1)")
    # Coefficients for the central region approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low, p_high = 0.02425, 1 - 0.02425
    if q < p_low:
        t = math.sqrt(-2 * math.log(q))
        return (((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t + c[4])
                * t + c[5]) / ((((d[0] * t + d[1]) * t + d[2]) * t
                                + d[3]) * t + 1)
    if q > p_high:
        t = math.sqrt(-2 * math.log(1 - q))
        return -(((((c[0] * t + c[1]) * t + c[2]) * t + c[3]) * t + c[4])
                 * t + c[5]) / ((((d[0] * t + d[1]) * t + d[2]) * t
                                 + d[3]) * t + 1)
    t = q - 0.5
    r = t * t
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4])
            * r + a[5]) * t / (((((b[0] * r + b[1]) * r + b[2]) * r
                                 + b[3]) * r + b[4]) * r + 1)


def failure_interval(counts: OutcomeCounts,
                     confidence: float = 0.95) -> Proportion:
    """Wilson interval for a campaign's failure rate."""
    return wilson(counts.failure, counts.total, confidence)


def sample_size_for(margin: float, worst_p: float = 0.5,
                    confidence: float = 0.95) -> int:
    """Faults needed so the interval half-width stays below *margin*.

    With the paper's 3000 faults the worst-case margin is ~1.8 points;
    the default bench campaigns trade that for wall-clock time.
    """
    if not 0 < margin < 1:
        raise ValueError("margin must be a fraction in (0, 1)")
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(
        round(confidence, 2), _normal_quantile(0.5 + confidence / 2))
    return math.ceil(z * z * worst_p * (1 - worst_p) / (margin * margin))
