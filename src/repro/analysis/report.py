"""Full evaluation report: regenerate every table and figure in one call.

``python -m repro.analysis.report`` prints the whole evaluation section —
useful for refreshing ``EXPERIMENTS.md`` after changes.
"""

from __future__ import annotations

from typing import Optional

from ..obs.tracing import span
from .experiments import Evaluation
from .figures import (generate_fig10, generate_fig11, generate_fig12,
                      generate_fig13, generate_fig14, generate_fig15)
from .tables import (generate_table1, generate_table2, generate_table3,
                     generate_table4, render_table1, render_table2,
                     render_table3, render_table4)


def full_report(evaluation: Optional[Evaluation] = None,
                count: Optional[int] = None) -> str:
    """Regenerate tables 1–4 and figures 10–15 as one text report."""
    evaluation = evaluation if evaluation is not None else Evaluation()
    artefacts = [
        ("implementation", lambda: evaluation.fades.impl.describe()),
        ("table1", lambda: render_table1(generate_table1(evaluation))),
        ("table2", lambda: render_table2(generate_table2(evaluation,
                                                         count))),
        ("table3", lambda: render_table3(generate_table3(evaluation,
                                                         count))),
        ("table4", lambda: render_table4(generate_table4(evaluation))),
        ("fig10", lambda: generate_fig10(evaluation, count).render()),
        ("fig11", lambda: generate_fig11(evaluation, count).render()),
        ("fig12", lambda: generate_fig12(evaluation, count).render()),
        ("fig13", lambda: generate_fig13(evaluation, count).render()),
        ("fig14", lambda: generate_fig14(evaluation, count).render()),
        ("fig15", lambda: generate_fig15(evaluation, count).render()),
    ]
    sections = []
    for name, build in artefacts:
        with span("report", artefact=name):
            sections.append(build())
    if evaluation.prune_silent:
        with span("report", artefact="static-pruning"):
            sections.append(_pruning_summary())
    if (getattr(evaluation, "epsilon", None) is not None
            or getattr(evaluation, "strategy", "uniform") != "uniform"
            or getattr(evaluation, "budget", None) is not None):
        with span("report", artefact="adaptive-planning"):
            sections.append(_adaptive_summary())
    quarantine = _quarantine_summary()
    if quarantine is not None:
        with span("report", artefact="quarantine"):
            sections.append(quarantine)
    return "\n\n".join(sections)


def _pruning_summary() -> str:
    """The "statically pruned" section of a ``--prune-silent`` report.

    Reads the :mod:`repro.sfa` planning counters accumulated across
    every campaign the report ran — how many faults were resolved
    without emulation, and by which rule.
    """
    from ..obs.metrics import REGISTRY
    lines = ["Statically pruned faults (repro.sfa)",
             "===================================="]
    pruned = REGISTRY.get("faults_pruned_total")
    total = pruned.total() if pruned is not None else 0.0
    lines.append(f"resolved without emulation: {total:.0f} faults")
    if pruned is not None:
        for key, value in sorted(pruned.series().items()):
            rule = dict(key).get("rule", "?")
            lines.append(f"  {rule:<16} {value:.0f}")
    classes = REGISTRY.get("fault_classes_total")
    if classes is not None and classes.total():
        lines.append(f"equivalence classes planned: "
                     f"{classes.total():.0f}")
    return "\n".join(lines)


def _adaptive_summary() -> str:
    """The "statistical planner" section of an adaptive report.

    Reads the :mod:`repro.faultload` counters accumulated across every
    campaign the report ran — how many stopping-rule checks fired and
    how many budgeted experiments were never emulated.
    """
    from ..obs.metrics import REGISTRY
    lines = ["Statistical campaign planning (repro.faultload)",
             "==============================================="]
    saved = REGISTRY.get("experiments_saved_total")
    total = saved.total() if saved is not None else 0.0
    lines.append(f"experiments saved by early stopping: {total:.0f}")
    if saved is not None:
        for key, value in sorted(saved.series().items()):
            reason = dict(key).get("reason", "?")
            lines.append(f"  {reason:<16} {value:.0f}")
    checks = REGISTRY.get("stopping_rule_checks_total")
    if checks is not None and checks.total():
        lines.append(f"stopping-rule checks: {checks.total():.0f}")
    return "\n".join(lines)


def _quarantine_summary() -> Optional[str]:
    """The "quarantined faults" section; ``None`` when no campaign of
    the report excised a poison fault.

    Reads the :mod:`repro.runtime` failure-handling counters — faults
    excised after bisection, worker hangs and shard retries — so a
    report produced under infrastructure failures states plainly which
    results rest on excluded experiments (the quarantined faults are
    out of every rate denominator, see EXPERIMENTS.md).
    """
    from ..obs.metrics import REGISTRY
    quarantined = REGISTRY.get("faults_quarantined_total")
    total = quarantined.total() if quarantined is not None else 0.0
    if not total:
        return None
    lines = ["Quarantined faults (repro.runtime)",
             "=================================="]
    lines.append(f"poison faults excised after bisection: {total:.0f}")
    lines.append("(excluded from every outcome-rate denominator and "
                 "Wilson interval)")
    hangs = REGISTRY.get("worker_hangs_total")
    if hangs is not None and hangs.total():
        lines.append(f"worker hangs detected: {hangs.total():.0f}")
    retries = REGISTRY.get("shard_retries_total")
    if retries is not None and retries.total():
        for key, value in sorted(retries.series().items()):
            reason = dict(key).get("reason", "?")
            lines.append(f"shard retries ({reason}): {value:.0f}")
    return "\n".join(lines)


if __name__ == "__main__":
    print(full_report())
