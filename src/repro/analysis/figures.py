"""Generators for the paper's figures 10–15 (data series, text-rendered).

Figures are bar charts in the paper; here each figure is a list of labelled
series (Failure/Latent/Silent percentages, or mean emulation times) plus an
ASCII rendering for bench output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core import FaultModel, Outcome
from ..core.faults import BAND_LABELS, Fault, Target, TargetKind
from .experiments import Evaluation, default_fault_count


@dataclass
class FigureBar:
    """One bar (or bar group) of a figure."""

    label: str
    failure: float = 0.0
    latent: float = 0.0
    silent: float = 0.0
    mean_time_s: Optional[float] = None
    n: int = 0
    failure_ci: str = ""  # Wilson interval rendering of the failure rate


@dataclass
class Figure:
    """A complete figure: a title plus its bars."""

    title: str
    bars: List[FigureBar] = field(default_factory=list)

    def render(self) -> str:
        lines = [self.title, "-" * len(self.title)]
        for bar in self.bars:
            if bar.mean_time_s is not None:
                lines.append(f"{bar.label:<28} {bar.mean_time_s:8.3f} s/fault"
                             f"  (n={bar.n})")
            else:
                blocks = int(round(bar.failure / 5))
                ci = f" CI{bar.failure_ci}" if bar.failure_ci else ""
                lines.append(
                    f"{bar.label:<28} F {bar.failure:5.1f}% "
                    f"L {bar.latent:5.1f}% S {bar.silent:5.1f}%  "
                    f"|{'#' * blocks:<20}| (n={bar.n}){ci}")
        return "\n".join(lines)


def _bar_from(result, label: str) -> FigureBar:
    from .stats import failure_interval
    counts = result.counts()
    interval = failure_interval(counts)
    _point, low, high = interval.percent()
    return FigureBar(
        label=label,
        failure=counts.percent(Outcome.FAILURE),
        latent=counts.percent(Outcome.LATENT),
        silent=counts.percent(Outcome.SILENT),
        n=counts.total,
        failure_ci=f"[{low:.0f},{high:.0f}]",
    )


# ---------------------------------------------------------------------------
def generate_fig10(evaluation: Evaluation,
                   count: Optional[int] = None) -> Figure:
    """Figure 10: mean emulation time of experiments performed via FADES.

    Includes the oscillating-indetermination variant the paper quotes in
    the text (~4605 s for 3000 faults of 10–20 cycles).
    """
    figure = Figure("Figure 10. Mean emulation time per experiment class "
                    "(emulated seconds per fault)")
    for name, spec in evaluation.experiment_matrix(count):
        result = evaluation.run_fades(spec)
        figure.bars.append(FigureBar(
            label=name, mean_time_s=result.mean_emulation_s,
            n=len(result.experiments)))
    oscillating = evaluation.spec(FaultModel.INDETERMINATION, "ffs", 2,
                                  count, oscillate=True)
    result = evaluation.run_fades(oscillating)
    figure.bars.append(FigureBar(
        label="indet/Sequential osc. 11-20",
        mean_time_s=result.mean_emulation_s, n=len(result.experiments)))
    return figure


def generate_fig11(evaluation: Evaluation, count: Optional[int] = None,
                   screen: bool = True) -> Figure:
    """Figure 11: bit-flip outcomes into registers vs memory.

    The paper pre-screens locations (section 6.3): only the registers that
    can cause failures ("14 registers, 81 FFs out of 637") and the memory
    positions the workload occupies are targeted.
    """
    import random
    fades = evaluation.fades
    n = count if count is not None else default_fault_count()
    figure = Figure("Figure 11. Results from the bit-flip emulation")

    if screen:
        eligible = fades.screen_sensitive_ffs(evaluation.cycles,
                                              samples_per_ff=1)
    else:
        eligible = list(range(len(fades.locmap.mapped.ffs)))
    rng = random.Random(evaluation.seed)
    faults = [Fault(FaultModel.BITFLIP,
                    Target(TargetKind.FF, rng.choice(eligible)),
                    rng.randrange(evaluation.cycles))
              for _ in range(n)]
    result = fades.run_faults(faults, evaluation.cycles, label="bitflip/ffs")
    bar = _bar_from(result, f"Registers ({len(eligible)} eligible FFs)")
    figure.bars.append(bar)

    spec = evaluation.spec(FaultModel.BITFLIP, "memory:iram", 1, n)
    result = evaluation.run_fades(spec)
    figure.bars.append(_bar_from(result, "Memory (occupied positions)"))
    return figure


def _band_sweep(evaluation: Evaluation, model: FaultModel, pool: str,
                label: str, count: Optional[int]) -> List[FigureBar]:
    bars = []
    for band, band_label in enumerate(BAND_LABELS):
        spec = evaluation.spec(model, pool, band, count)
        result = evaluation.run_fades(spec, seed=evaluation.seed + band)
        bars.append(_bar_from(result, f"{label} {band_label}"))
    return bars


def generate_fig12(evaluation: Evaluation,
                   count: Optional[int] = None) -> Figure:
    """Figure 12: delay and indetermination into sequential logic."""
    figure = Figure("Figure 12. Delay and indetermination emulation into "
                    "sequential logic (by fault duration)")
    figure.bars += _band_sweep(evaluation, FaultModel.DELAY, "nets:seq",
                               "delay", count)
    figure.bars += _band_sweep(evaluation, FaultModel.INDETERMINATION,
                               "ffs", "indetermination", count)
    return figure


def generate_fig13(evaluation: Evaluation,
                   count: Optional[int] = None) -> Figure:
    """Figure 13: pulse emulation per combinational unit (ALU/MEM/FSM)."""
    figure = Figure("Figure 13. Results from pulse emulation "
                    "(per unit, by fault duration)")
    for unit in ("ALU", "MEM", "FSM"):
        figure.bars += _band_sweep(evaluation, FaultModel.PULSE,
                                   f"luts:{unit}", f"pulse {unit}", count)
    return figure


def generate_fig14(evaluation: Evaluation,
                   count: Optional[int] = None) -> Figure:
    """Figure 14: indetermination into combinational units."""
    figure = Figure("Figure 14. Results from indetermination emulation "
                    "into combinational logic")
    for unit in ("ALU", "MEM", "FSM"):
        figure.bars += _band_sweep(evaluation, FaultModel.INDETERMINATION,
                                   f"luts:{unit}", f"indet {unit}", count)
    return figure


def generate_fig15(evaluation: Evaluation,
                   count: Optional[int] = None) -> Figure:
    """Figure 15: delay into combinational units."""
    figure = Figure("Figure 15. Results from delay emulation into "
                    "combinational logic")
    for unit in ("ALU", "MEM", "FSM"):
        figure.bars += _band_sweep(evaluation, FaultModel.DELAY,
                                   f"nets:comb:{unit}", f"delay {unit}",
                                   count)
    return figure
