"""Declarative campaign specifications (JSON in, JSON report out).

The paper's setup GUI let users describe whole experiment suites; the
headless equivalent is a JSON spec file::

    {
      "workload": {"type": "bubblesort", "values": [9, 3, 12, 5]},
      "seed": 7,
      "experiments": [
        {"name": "alu-pulses", "tool": "fades", "model": "pulse",
         "pool": "luts:ALU", "count": 20, "band": 1},
        {"name": "register-flips", "tool": "vfit", "model": "bitflip",
         "pool": "ffs", "count": 20}
      ]
    }

run through ``python -m repro run-spec spec.json -o report.json`` or
:func:`run_spec_file`.  The report carries, per experiment, the outcome
tally, failure percentage with its Wilson interval, and the emulated
campaign time.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from ..core import FaultModel, Outcome
from ..errors import UnsupportedFaultError, WorkloadError
from ..mc8051 import (array_sum, bubblesort, fibonacci, multiply,
                      sum_of_squares, table_lookup)
from .experiments import Evaluation
from .stats import failure_interval

#: Workload constructors addressable from spec files.
WORKLOADS = {
    "bubblesort": bubblesort,
    "array_sum": array_sum,
    "fibonacci": fibonacci,
    "multiply": multiply,
    "sum_of_squares": sum_of_squares,
    "table_lookup": table_lookup,
}


def load_spec(path: str) -> Dict:
    """Read and structurally validate a campaign spec file."""
    with open(path) as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict) or "experiments" not in spec:
        raise WorkloadError(f"{path}: spec needs an 'experiments' list")
    if not isinstance(spec["experiments"], list) or not spec["experiments"]:
        raise WorkloadError(f"{path}: 'experiments' must be non-empty")
    for index, experiment in enumerate(spec["experiments"]):
        for key in ("model",):
            if key not in experiment:
                raise WorkloadError(
                    f"{path}: experiment {index} lacks {key!r}")
        FaultModel(experiment["model"])  # raises on unknown model
    workload = spec.get("workload", {})
    kind = workload.get("type", "bubblesort")
    if kind not in WORKLOADS:
        raise WorkloadError(
            f"{path}: unknown workload type {kind!r} "
            f"(available: {sorted(WORKLOADS)})")
    return spec


def _build_evaluation(spec: Dict) -> Evaluation:
    workload = spec.get("workload", {})
    kind = workload.get("type", "bubblesort")
    if kind == "bubblesort":
        values = tuple(workload.get("values", (9, 3, 12, 5)))
        return Evaluation(values=values, seed=spec.get("seed", 2006))
    # Non-default workloads: build the Evaluation around their ROM.
    evaluation = Evaluation(seed=spec.get("seed", 2006))
    if kind == "fibonacci":
        built = WORKLOADS[kind](workload.get("terms", 8))
    elif kind == "multiply":
        built = WORKLOADS[kind](workload.get("a", 13), workload.get("b", 11))
    else:
        built = WORKLOADS[kind](workload.get("values", [9, 3, 12, 5]))
    evaluation._workload = built
    return evaluation


def run_spec(spec: Dict) -> Dict:
    """Execute every experiment of a loaded spec; return the report."""
    evaluation = _build_evaluation(spec)
    report: Dict = {
        "workload": evaluation.workload.name,
        "cycles": evaluation.cycles,
        "implementation": evaluation.fades.impl.describe(),
        "experiments": [],
    }
    for index, entry in enumerate(spec["experiments"]):
        model = FaultModel(entry["model"])
        fault_spec = evaluation.spec(
            model, entry.get("pool", "ffs"),
            band=entry.get("band", 1),
            count=entry.get("count", 20),
            oscillate=entry.get("oscillate", False),
            mechanism=entry.get("mechanism", ""))
        tool_name = entry.get("tool", "fades")
        tool = evaluation.fades if tool_name == "fades" else evaluation.vfit
        record: Dict = {
            "name": entry.get("name", f"experiment{index}"),
            "tool": tool_name,
            "model": model.value,
            "pool": fault_spec.pool,
            "count": fault_spec.count,
        }
        try:
            result = tool.run(fault_spec,
                              seed=entry.get("seed", spec.get("seed", 0)))
        except UnsupportedFaultError as error:
            record["error"] = str(error)
            report["experiments"].append(record)
            continue
        counts = result.counts()
        interval = failure_interval(counts)
        record.update({
            "failure": counts.failure,
            "latent": counts.latent,
            "silent": counts.silent,
            "failure_pct": counts.percent(Outcome.FAILURE),
            "failure_ci_pct": list(interval.percent()[1:]),
            "mean_emulation_s": result.mean_emulation_s,
            "total_emulation_s": result.total_emulation_s,
        })
        report["experiments"].append(record)
    return report


def run_spec_file(path: str, output: Optional[str] = None) -> Dict:
    """Load, run and (optionally) write the report of one spec file."""
    report = run_spec(load_spec(path))
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
    return report
