"""Shared evaluation setup: the 8051 + Bubblesort testbed of section 6.

One :class:`Evaluation` object lazily builds everything the paper's
evaluation needs — the microcontroller model, the synthesised/implemented
design, a FADES campaign and a VFIT campaign — and exposes the experiment
classes (fault model x location x duration band) that tables 2/3 and
figures 10–15 sweep.

Scaling: the paper injects 3000 faults per experiment on a 1303-cycle
workload.  A pure-Python substrate cannot afford that per bench run, so
``faults_per_experiment`` defaults to a small count and can be raised via
the ``REPRO_FAULTS`` / ``REPRO_PAPER_SCALE`` environment knobs; emulated
times are additionally *projected* to paper scale (3000 faults, 1303
cycles, the paper's 6000-element model) so table 2's speed-ups can be
compared directly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core import (CampaignResult, FadesCampaign, FaultLoadSpec,
                    FaultModel, build_fades)
from ..core.faults import DURATION_BANDS
from ..mc8051 import Iss, Mc8051Model, Workload, build_mc8051, bubblesort
from ..vfit import VfitCampaign

#: Golden-run snapshot spacing of the standard testbed (kept in sync
#: with :data:`repro.runtime.jobspec.DEFAULT_CHECKPOINT_INTERVAL`).
CHECKPOINT_INTERVAL = 128

#: Paper constants (section 6).
PAPER_FAULTS_PER_EXPERIMENT = 3000
PAPER_WORKLOAD_CYCLES = 1303
PAPER_VFIT_MEAN_S = 7.2          # 21600 s / 3000 faults
PAPER_MODEL_ELEMENTS = 6000      # ~5310 LUTs + 637 FFs


def default_fault_count(fallback: int = 24) -> int:
    """Faults per experiment, honouring the environment knobs."""
    if os.environ.get("REPRO_PAPER_SCALE"):
        return PAPER_FAULTS_PER_EXPERIMENT
    value = os.environ.get("REPRO_FAULTS")
    if value:
        return max(1, int(value))
    return fallback


@dataclass
class Evaluation:
    """Lazily constructed testbed shared by tables, figures and benches."""

    values: Tuple[int, ...] = (9, 3, 12, 5)   # short sort for fast benches
    seed: int = 2006
    #: With ``workers >= 2``, :meth:`run_fades` fans each experiment
    #: class out across the :mod:`repro.runtime` worker pool.
    workers: int = 0
    #: Simulator backend for FADES campaigns: ``reference`` steps the
    #: device model per experiment; ``compiled`` packs experiments into
    #: the bit-parallel :mod:`repro.emu` engine (same classification).
    backend: str = "reference"
    #: Static fault analysis (:mod:`repro.sfa`): resolve provably
    #: Silent faults without emulating them.  Outcome tallies are
    #: guaranteed identical; only the wall-clock changes.
    prune_silent: bool = False
    #: Statistical campaign planning (:mod:`repro.faultload`):
    #: ``strategy`` picks the sampler (``uniform`` is the historical
    #: draw; ``stratified``/``importance`` allocate per resource
    #: group), ``epsilon`` enables confidence-driven early stopping at
    #: ±epsilon Wilson half-width, ``budget`` caps the experiment
    #: count.  All defaults keep the fixed-budget behaviour bit-exact.
    strategy: str = "uniform"
    confidence: float = 0.95
    epsilon: Optional[float] = None
    budget: Optional[int] = None
    _workload: Optional[Workload] = None
    _model: Optional[Mc8051Model] = None
    _cycles: int = 0
    _fades: Optional[FadesCampaign] = None
    _vfit: Optional[VfitCampaign] = None

    # -- lazy pieces -----------------------------------------------------
    @property
    def workload(self) -> Workload:
        if self._workload is None:
            self._workload = bubblesort(list(self.values))
        return self._workload

    @property
    def model(self) -> Mc8051Model:
        if self._model is None:
            self._model = build_mc8051(self.workload.rom)
        return self._model

    @property
    def cycles(self) -> int:
        """Experiment length: golden run to the terminal loop, plus slack."""
        if not self._cycles:
            iss = Iss(self.workload.rom)
            iss.run_until_idle()
            self._cycles = iss.cycles + 4
        return self._cycles

    @property
    def fades(self) -> FadesCampaign:
        if self._fades is None:
            self._fades = build_fades(
                self.model.netlist, seed=self.seed,
                checkpoint_interval=CHECKPOINT_INTERVAL,
                backend=self.backend,
                prune_silent=self.prune_silent)
        return self._fades

    @property
    def vfit(self) -> VfitCampaign:
        if self._vfit is None:
            self._vfit = VfitCampaign(self.model.netlist, seed=self.seed)
        return self._vfit

    # -- campaign execution -----------------------------------------------
    def run_fades(self, spec: FaultLoadSpec,
                  seed: Optional[int] = None) -> CampaignResult:
        """Run one FADES experiment class, honouring :attr:`workers`.

        ``workers < 2`` keeps the historical serial path (bit-exact with
        previous releases); ``workers >= 2`` dispatches through the
        campaign runtime, whose determinism contract re-seeds the
        injector per fault index (identical results for any worker
        count, and for serial engine runs).  Adaptive settings
        (non-uniform :attr:`strategy`, :attr:`epsilon` or
        :attr:`budget`) always route through the runtime engine — its
        incremental dispatch loop hosts the stopping controller.
        """
        seed = self.seed if seed is None else seed
        adaptive = (self.strategy != "uniform" or self.epsilon is not None
                    or self.budget is not None)
        if self.workers >= 2 or adaptive:
            from ..runtime import CampaignJobSpec, run_campaign
            jobspec = CampaignJobSpec.from_evaluation(
                self, spec, faultload_seed=seed)
            return run_campaign(jobspec, workers=self.workers)
        return self.fades.run(spec, seed=seed)

    # -- derived parameters -------------------------------------------------
    @property
    def period_ns(self) -> float:
        return self.fades.impl.timing.period

    def delay_magnitudes(self) -> Tuple[float, float]:
        """Delay-fault magnitude range, calibrated to the design's clock.

        Uniform over (0.1, 0.8) of the period: small enough that many
        injections are absorbed by slack (the paper's "may or may not
        affect the circuit"), large enough that long paths violate.
        """
        return (0.1 * self.period_ns, 0.8 * self.period_ns)

    @property
    def occupied_memory(self) -> Tuple[int, int]:
        """The workload's data array in IRAM.

        The paper pre-selected memory positions whose corruption is likely
        observable ("the occurrence of a bit-flip in the selected memory
        positions will very likely cause a failure", section 6.3); for
        Bubblesort that is the array being sorted.
        """
        return (0x30, 0x30 + len(self.values))

    # -- experiment classes ---------------------------------------------------
    def spec(self, model: FaultModel, pool: str, band: int = 1,
             count: Optional[int] = None, oscillate: bool = False,
             mechanism: str = "") -> FaultLoadSpec:
        """Build one experiment class over a paper duration band."""
        duration = DURATION_BANDS[band]
        magnitudes = (self.delay_magnitudes()
                      if model is FaultModel.DELAY else (0.0, 0.0))
        mem_range = (self.occupied_memory
                     if pool.startswith("memory") else None)
        return FaultLoadSpec(
            model=model,
            pool=pool,
            count=count if count is not None else default_fault_count(),
            duration_range=duration,
            workload_cycles=self.cycles,
            mem_addr_range=mem_range,
            magnitude_range_ns=magnitudes,
            oscillate=oscillate,
            mechanism=mechanism,
        )

    def experiment_matrix(self, count: Optional[int] = None
                          ) -> List[Tuple[str, FaultLoadSpec]]:
        """The paper's experiment classes (table 2 / figure 10 rows)."""
        return [
            ("bitflip/FFs", self.spec(FaultModel.BITFLIP, "ffs", 1, count)),
            ("bitflip/Memory",
             self.spec(FaultModel.BITFLIP, "memory:iram", 1, count)),
            ("pulse/Comb(<1)",
             self.spec(FaultModel.PULSE, "luts", 0, count)),
            ("pulse/Comb(>=1)",
             self.spec(FaultModel.PULSE, "luts", 1, count)),
            ("delay/Sequential",
             self.spec(FaultModel.DELAY, "nets:seq", 1, count)),
            ("delay/Comb",
             self.spec(FaultModel.DELAY, "nets:comb", 1, count)),
            ("indet/Sequential",
             self.spec(FaultModel.INDETERMINATION, "ffs", 1, count)),
            ("indet/Comb",
             self.spec(FaultModel.INDETERMINATION, "luts", 1, count)),
        ]

    # -- paper-scale projections ------------------------------------------
    def project_fades_seconds(self, mean_transfer_s: float) -> float:
        """Per-fault FADES time at the paper's workload length."""
        workload_s = (PAPER_WORKLOAD_CYCLES
                      / self.fades.board.params.clock_hz)
        return mean_transfer_s + workload_s

    def project_vfit_seconds(self) -> float:
        """Per-fault VFIT time at paper scale (its measured 7.2 s)."""
        params = self.vfit.time_model.params
        return (PAPER_WORKLOAD_CYCLES * PAPER_MODEL_ELEMENTS
                * params.seconds_per_element_cycle
                + params.experiment_overhead_s)


#: Paper-reported reference values for EXPERIMENTS.md comparisons.
PAPER_TABLE2 = {
    # experiment class -> (FADES mean s/fault, VFIT mean s/fault, speed-up)
    "bitflip/FFs": (916 / 3000, 7.2, 23.60),
    "bitflip/Memory": (536 / 3000, 7.2, 40.30),
    "pulse/Comb(<1)": (755 / 3000, 7.2, 28.60),
    "pulse/Comb(>=1)": (1520 / 3000, 7.2, 14.21),
    "delay/Sequential": (2487 / 3000, 7.2, 8.68),
    "delay/Comb": (2778 / 3000, 7.2, 7.77),
    "indet/Sequential": (1065 / 3000, 7.2, 20.28),
    "indet/Comb": (805 / 3000, 7.2, 26.83),
}

PAPER_TABLE3 = {
    # (model, location) -> failure % per band, FADES vs VFIT
    ("bitflip", "FFs"): {"fades": (43.86,), "vfit": (43.70,)},
    ("bitflip", "Memory"): {"fades": (80.95,), "vfit": (81.76,)},
    ("pulse", "ALU"): {"fades": (0.06, 3.13, 8.86),
                       "vfit": (1.36, 3.53, 7.43)},
    ("delay", "FFs"): {"fades": (5.7, 18.6, 31.67), "vfit": None},
    ("delay", "ALU"): {"fades": (0.0, 0.57, 2.1), "vfit": None},
    ("indetermination", "FFs"): {"fades": (29.53, 45.9, 61.4),
                                 "vfit": (18.87, 35.90, 52.47)},
    ("indetermination", "ALU"): {"fades": (0.37, 1.37, 3.57),
                                 "vfit": (1.30, 3.03, 8.23)},
}
