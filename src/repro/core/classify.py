"""Result classification: Failure / Latent / Silent.

Paper, section 5 (results-analysis module): "Observations taken from each
experiment are compared to a Golden Run (fault free) trace to classify
fault effects into: Failure (the traces present different outputs), Latent
(the traces show the same outputs, but the system is in a different final
state) and Silent (the traces and the final state of the system are
identical)."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable

from ..hdl.trace import Trace


class Outcome(enum.Enum):
    """Effect classification of one fault-injection experiment."""

    FAILURE = "failure"
    LATENT = "latent"
    SILENT = "silent"
    #: The experiment itself could not be completed: the fault crashed
    #: or hung the simulator past the runtime's retry budget and was
    #: isolated by shard bisection (:mod:`repro.runtime.scheduler`).
    #: Never produced by :func:`classify` — it is an infrastructure
    #: verdict, not a device one — and excluded from rate denominators.
    QUARANTINED = "quarantined"


def classify(golden: Trace, observed: Trace) -> Outcome:
    """Classify one experiment against the golden run."""
    if not observed.same_outputs(golden):
        return Outcome.FAILURE
    if not observed.same_state(golden):
        return Outcome.LATENT
    return Outcome.SILENT


@dataclass
class OutcomeCounts:
    """Aggregated campaign outcomes (one bar of the paper's figures)."""

    failure: int = 0
    latent: int = 0
    silent: int = 0
    #: Experiments excised by the runtime (poison faults); kept out of
    #: :attr:`total` so every rate denominator stays classified-only.
    quarantined: int = 0

    def add(self, outcome: Outcome) -> None:
        if outcome is Outcome.FAILURE:
            self.failure += 1
        elif outcome is Outcome.LATENT:
            self.latent += 1
        elif outcome is Outcome.QUARANTINED:
            self.quarantined += 1
        else:
            self.silent += 1

    @property
    def total(self) -> int:
        """Classified experiments (quarantined ones are not outcomes)."""
        return self.failure + self.latent + self.silent

    def percent(self, outcome: Outcome) -> float:
        """Percentage of classified experiments with the given outcome."""
        if self.total == 0:
            return 0.0
        count = {Outcome.FAILURE: self.failure, Outcome.LATENT: self.latent,
                 Outcome.SILENT: self.silent,
                 Outcome.QUARANTINED: self.quarantined}[outcome]
        return 100.0 * count / self.total

    def as_dict(self) -> Dict[str, float]:
        """Percentages keyed by outcome name (figure data points).

        Quarantined experiments appear as a raw count, and only when
        present — a clean campaign's dict is unchanged from before the
        quarantine era.
        """
        data = {outcome.value: self.percent(outcome)
                for outcome in (Outcome.FAILURE, Outcome.LATENT,
                                Outcome.SILENT)}
        if self.quarantined:
            data["quarantined"] = float(self.quarantined)
        return data

    def __str__(self) -> str:
        text = (f"failure {self.percent(Outcome.FAILURE):5.1f}% | "
                f"latent {self.percent(Outcome.LATENT):5.1f}% | "
                f"silent {self.percent(Outcome.SILENT):5.1f}% "
                f"(n={self.total})")
        if self.quarantined:
            text += f" | quarantined {self.quarantined}"
        return text


def tally(golden: Trace, traces: Iterable[Trace]) -> OutcomeCounts:
    """Classify a batch of traces against one golden run."""
    counts = OutcomeCounts()
    for trace in traces:
        counts.add(classify(golden, trace))
    return counts
