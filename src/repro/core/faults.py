"""Fault models and fault descriptors.

The paper's transient fault models (section 4, table 1):

=================  ==========================  ================================
model              FPGA target                 emulation mechanism
=================  ==========================  ================================
bit-flip           FFs                         GSR line (slow) / LSR line (fast)
bit-flip           memory blocks               modify the memory bit
pulse              CB inputs                   input inverter mux
pulse              LUTs                        modify LUT contents
delay              PMs                         increase fan-out (small delays)
delay              PMs                         increase routing path (large)
indetermination    FFs / LUTs                  randomise the final value
=================  ==========================  ================================

plus the permanent models announced as future work (section 8): stuck-at,
open-line, bridging and stuck-open — implemented in
:mod:`repro.core.permanent`.

A :class:`Fault` is tool-agnostic: FADES realises it through run-time
reconfiguration (:mod:`repro.core.injector`), VFIT through simulator
commands (:mod:`repro.vfit.commands`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class FaultModel(enum.Enum):
    """Transient (and extension: permanent) fault models."""

    BITFLIP = "bitflip"
    PULSE = "pulse"
    DELAY = "delay"
    INDETERMINATION = "indetermination"
    # Permanent extensions (paper section 8, future work).
    STUCK_AT = "stuck_at"
    OPEN_LINE = "open_line"
    BRIDGING = "bridging"
    STUCK_OPEN = "stuck_open"
    # Configuration-memory upset (the system manufactured on the FPGA).
    CONFIG_SEU = "config_seu"

    @property
    def transient(self) -> bool:
        """Whether the fault disappears after its duration."""
        return self in (FaultModel.PULSE, FaultModel.DELAY,
                        FaultModel.INDETERMINATION)


class TargetKind(enum.Enum):
    """What class of resource a fault attaches to."""

    FF = "ff"                  # a flip-flop (sequential logic)
    MEMORY_BIT = "memory_bit"  # one bit of an embedded memory block
    LUT = "lut"                # a function generator
    CB_INPUT = "cb_input"      # a routed CB input (the FFin path)
    NET = "net"                # an interconnect line (delay faults)
    CONFIG_BIT = "config_bit"  # one bit of the configuration memory


@dataclass(frozen=True)
class Target:
    """A fault location in implementation terms.

    ``index`` selects the resource (FF index, LUT index, BRAM index or a
    net id depending on :attr:`kind`); the remaining fields qualify it:

    * for :attr:`TargetKind.MEMORY_BIT` — ``addr`` and ``bit``;
    * for :attr:`TargetKind.LUT` — ``line``: ``-1`` targets the LUT output,
      ``0..3`` target an input line (paper, figure 5);
    * for :attr:`TargetKind.NET` — nothing further.
    """

    kind: TargetKind
    index: int
    addr: int = 0
    bit: int = 0
    line: int = -1

    def describe(self) -> str:
        if self.kind is TargetKind.MEMORY_BIT:
            return f"memory[{self.index}] bit ({self.addr},{self.bit})"
        if self.kind is TargetKind.LUT:
            what = "output" if self.line < 0 else f"input {self.line}"
            return f"LUT {self.index} {what}"
        return f"{self.kind.value} {self.index}"


@dataclass(frozen=True)
class Fault:
    """One injectable fault instance.

    Durations are expressed in clock cycles and may be fractional: a pulse
    shorter than one cycle only disturbs a capture edge when its active
    window straddles one, which depends on ``phase`` (the sub-cycle offset
    of the injection instant, uniform in campaigns).

    ``value`` carries the randomised level for indeterminations and the
    stuck level for permanent faults.  ``magnitude_ns`` is the extra
    propagation delay requested from delay faults.  ``mechanism`` lets a
    campaign pin a specific emulation mechanism (``'lsr'``/``'gsr'`` for FF
    bit-flips, ``'fanout'``/``'reroute'`` for delays); empty means the
    tool's default.
    """

    model: FaultModel
    target: Target
    start_cycle: int
    duration_cycles: float = 1.0
    phase: float = 0.0
    value: Optional[int] = None
    magnitude_ns: float = 0.0
    mechanism: str = ""
    oscillate: bool = False
    aux_target: Optional[Target] = None  # second net for bridging faults
    #: Additional simultaneous locations (multiple bit-flips, section 8).
    extra_targets: Tuple[Target, ...] = ()

    @property
    def whole_cycles(self) -> int:
        """Capture edges inside the active window (≥1-cycle faults)."""
        return int(self.duration_cycles)

    @property
    def straddles_edge(self) -> bool:
        """Whether a sub-cycle fault covers a clock edge at all."""
        if self.duration_cycles >= 1.0:
            return True
        return self.phase + self.duration_cycles >= 1.0

    @property
    def all_targets(self) -> Tuple[Target, ...]:
        """Primary plus extra targets (multiplicity >= 1)."""
        return (self.target,) + self.extra_targets

    def describe(self) -> str:
        base = (f"{self.model.value} @ {self.target.describe()} "
                f"t={self.start_cycle} d={self.duration_cycles:g}")
        if self.extra_targets:
            base += f" (+{len(self.extra_targets)} more)"
        if self.mechanism:
            base += f" [{self.mechanism}]"
        return base


#: Duration bands used throughout the paper's evaluation (section 6.1):
#: less than one cycle, 1–10 cycles, 11–20 cycles.
DURATION_BANDS: Tuple[Tuple[float, float], ...] = (
    (0.05, 0.95), (1.0, 10.0), (11.0, 20.0))

BAND_LABELS: Tuple[str, ...] = ("<1", "1-10", "11-20")


def band_label(duration: float) -> str:
    """Label of the paper band a duration falls into."""
    if duration < 1.0:
        return BAND_LABELS[0]
    if duration <= 10.0:
        return BAND_LABELS[1]
    return BAND_LABELS[2]
