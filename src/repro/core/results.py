"""Result aggregation helpers shared by benches and the analysis package."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .campaign import CampaignResult
from .classify import Outcome


@dataclass
class ResultRow:
    """One row of a paper-style results table."""

    fault_model: str
    location: str
    duration_band: str
    failure_pct: float
    latent_pct: float
    silent_pct: float
    mean_emulation_s: float
    n_faults: int
    #: Faults resolved by static analysis instead of emulation
    #: (:mod:`repro.sfa`); they still count in the percentages above.
    n_pruned: int = 0
    #: Faults attributed from an equivalence-class representative.
    n_collapsed: int = 0

    def render(self) -> str:
        static = ""
        if self.n_pruned or self.n_collapsed:
            static = (f"  statically pruned={self.n_pruned}"
                      f" collapsed={self.n_collapsed}")
        return (f"{self.fault_model:<16} {self.location:<14} "
                f"{self.duration_band:<6} "
                f"F {self.failure_pct:5.1f}%  L {self.latent_pct:5.1f}%  "
                f"S {self.silent_pct:5.1f}%  "
                f"t={self.mean_emulation_s:7.3f}s  n={self.n_faults}"
                + static)


def row_from_campaign(result: CampaignResult, fault_model: str,
                      location: str, duration_band: str) -> ResultRow:
    """Flatten one campaign into a table row."""
    counts = result.counts()
    return ResultRow(
        fault_model=fault_model,
        location=location,
        duration_band=duration_band,
        failure_pct=counts.percent(Outcome.FAILURE),
        latent_pct=counts.percent(Outcome.LATENT),
        silent_pct=counts.percent(Outcome.SILENT),
        mean_emulation_s=result.mean_emulation_s,
        n_faults=counts.total,
        n_pruned=result.pruned_count(),
        n_collapsed=result.collapsed_count(),
    )


def render_table(title: str, rows: List[ResultRow],
                 note: str = "") -> str:
    """Plain-text rendering of a results table, ready for stdout."""
    lines = [title, "=" * len(title)]
    lines.extend(row.render() for row in rows)
    if note:
        lines.append(note)
    return "\n".join(lines)
