"""Campaign orchestration: the experiment loop of the paper's figure 1.

Each experiment follows the figure exactly::

    reset system to initial state
    workload execution            (until the fault injection time)
    FPGA reconfiguration          (fault injection purposes)
    workload execution            (until the fault duration expires)
    FPGA reconfiguration          (fault removal purposes)
    workload execution            (until the experiment end time)
    observation -> analysis of results

The observation process records the primary outputs every cycle plus the
final architectural state; classification against the golden run follows
:mod:`repro.core.classify`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..fpga.board import Board
from ..fpga.device import Device
from ..fpga.implement import Implementation
from ..fpga.jbits import JBits
from ..hdl.trace import Trace
from ..synth.locmap import LocationMap
from .classify import Outcome, OutcomeCounts, classify
from .config import FaultLoadSpec, generate_faultload, pool_size
from .faults import Fault
from .injector import FadesInjector
from .timing_model import EmulationTimeModel, ExperimentCost, FadesTimingParams


@dataclass
class ExperimentResult:
    """One fault-injection experiment's record."""

    fault: Fault
    outcome: Outcome
    cost: ExperimentCost
    first_divergence: Optional[int] = None


@dataclass
class CampaignResult:
    """All experiments of one campaign (one experiment class)."""

    spec_label: str
    golden: Trace
    experiments: List[ExperimentResult] = field(default_factory=list)
    mean_emulation_s: float = 0.0
    total_emulation_s: float = 0.0

    def counts(self) -> OutcomeCounts:
        """Failure/Latent/Silent tally."""
        counts = OutcomeCounts()
        for experiment in self.experiments:
            counts.add(experiment.outcome)
        return counts

    def failure_percent(self) -> float:
        """Percentage of failures (the paper's headline metric)."""
        return self.counts().percent(Outcome.FAILURE)


class FadesCampaign:
    """Run fault-emulation campaigns on one implemented design."""

    def __init__(self, impl: Implementation, locmap: LocationMap,
                 board: Optional[Board] = None, seed: int = 0,
                 timing_params: FadesTimingParams = FadesTimingParams(),
                 full_download_delays: bool = True,
                 inputs: Optional[Dict[str, int]] = None,
                 checkpoint_interval: int = 0):
        self.impl = impl
        self.locmap = locmap
        self.inputs = dict(inputs or {})
        #: Fast-forward optimisation: with a positive interval, the golden
        #: run stores device snapshots every N cycles and experiments
        #: restore the nearest one at or before the injection instant
        #: instead of re-executing the fault-free prefix.  Purely a host
        #: optimisation — emulated time is unaffected (the real board
        #: would execute the prefix at full FPGA speed anyway).
        self.checkpoint_interval = checkpoint_interval
        self._checkpoints: Dict[tuple, Dict[int, object]] = {}
        self.device = Device(impl)
        locmap.attach_placement(impl.placement)
        self.board = board if board is not None else Board()
        self.jbits = JBits(self.device, self.board)
        self.rng = random.Random(seed)
        self.injector = FadesInjector(
            self.jbits, rng=random.Random(seed ^ 0xFADE5),
            full_download_delays=full_download_delays)
        self.time_model = EmulationTimeModel(self.board, timing_params)
        self._golden: Dict[tuple, Trace] = {}
        #: How many golden runs were actually *simulated* (as opposed to
        #: served from the cache) — multi-class reports should see 1.
        self.golden_simulations = 0

    # ------------------------------------------------------------------
    def _golden_key(self, cycles: int) -> tuple:
        """Cache key: the workload identity (the constant primary-input
        assignment) plus the experiment length.  Keying by workload too
        means mutating ``self.inputs`` between campaigns can never serve
        a stale golden trace."""
        return (tuple(sorted(self.inputs.items())), cycles)

    def golden_run(self, cycles: int) -> Trace:
        """Fault-free reference trace (cached per workload and length).

        Every campaign sharing this object — e.g. the experiment classes
        of a multi-class report — simulates the golden run exactly once.
        """
        key = self._golden_key(cycles)
        cached = self._golden.get(key)
        if cached is not None:
            return cached
        device = self.device
        device.reset_system()
        trace = Trace(tuple(device.mapped.outputs))
        interval = self.checkpoint_interval
        checkpoints: Dict[int, object] = {}
        for cycle in range(cycles):
            if interval and cycle % interval == 0:
                checkpoints[cycle] = device.save_state()
            trace.record(device.step(self.inputs if cycle == 0 else None))
        trace.final_state = device.state_snapshot()
        trace.cycles = cycles
        self.golden_simulations += 1
        self._golden[key] = trace
        if interval:
            self._checkpoints[key] = checkpoints
        return trace

    # ------------------------------------------------------------------
    def run_experiment(self, fault: Fault, cycles: int,
                       pool: int = 0) -> ExperimentResult:
        """One experiment of figure 1; device ends restored to golden."""
        device = self.device
        marker = self.time_model.begin_experiment()
        self.board.set_label(fault.model.value)

        injection = self.injector.prepare(fault)
        if fault.duration_cycles >= 1.0:
            window = fault.whole_cycles
        else:
            window = 1 if fault.straddles_edge else 0
        start = min(fault.start_cycle, max(0, cycles - 1))

        # Fast-forward over the fault-free prefix when a golden checkpoint
        # at or before the injection instant is available.
        first_cycle = 0
        trace = Trace(tuple(device.mapped.outputs))
        checkpoints = self._checkpoints.get(self._golden_key(cycles))
        golden_cached = self._golden.get(self._golden_key(cycles))
        if checkpoints and golden_cached is not None and start > 0:
            usable = [c for c in checkpoints if c <= start]
            if usable:
                first_cycle = max(usable)
                device.load_state(checkpoints[first_cycle])
                trace.samples = list(golden_cached.samples[:first_cycle])
            else:
                device.reset_system()
        else:
            device.reset_system()

        removed = False
        injected = False
        for cycle in range(first_cycle, cycles):
            if cycle == start:
                injection.inject()
                injected = True
                if window == 0 and fault.model.transient:
                    injection.remove()
                    removed = True
            if injected and not removed and start <= cycle < start + window:
                injection.tick(cycle - start)
            trace.record(device.step(self.inputs if cycle == 0 else None))
            if (injected and not removed and fault.model.transient
                    and cycle >= start + window - 1):
                injection.remove()
                removed = True
        if injected and not removed and fault.model.transient:
            injection.remove()
        trace.final_state = device.state_snapshot()
        trace.cycles = cycles

        # Restore the golden image for persistent faults (bit-flips and
        # permanent models leave frames modified) *before* any golden run
        # can execute on this device.
        self._restore_configuration()
        golden = self.golden_run(cycles)
        cost = self.time_model.end_experiment(marker, cycles, pool)
        outcome = classify(golden, trace)
        return ExperimentResult(
            fault=fault, outcome=outcome, cost=cost,
            first_divergence=trace.first_divergence(golden))

    def _restore_configuration(self) -> None:
        golden = self.impl.golden_bitstream
        for addr in self.device.config.diff_frames(golden):
            # Host-side cleanup between experiments; not part of the
            # emulated per-fault cost (the paper reloads state, not the
            # full file, between experiments).
            self.device.write_frame(addr, golden.get_frame(addr))

    # ------------------------------------------------------------------
    def run(self, spec: FaultLoadSpec, seed: Optional[int] = None
            ) -> CampaignResult:
        """Generate and run a whole faultload; returns the aggregate."""
        faults = generate_faultload(
            spec, self.locmap, seed=self.rng.randrange(2**31)
            if seed is None else seed,
            routed_nets=self.impl.routing.is_routed)
        return self.run_faults(faults, spec.workload_cycles,
                               label=spec.label(),
                               pool=pool_size(spec, self.locmap))

    def run_faults(self, faults: Sequence[Fault], cycles: int,
                   label: str = "", pool: int = 0) -> CampaignResult:
        """Run a pre-generated fault list."""
        golden = self.golden_run(cycles)
        result = CampaignResult(spec_label=label, golden=golden)
        start_index = len(self.time_model.costs)
        for fault in faults:
            result.experiments.append(
                self.run_experiment(fault, cycles, pool=pool))
        costs = self.time_model.costs[start_index:]
        result.total_emulation_s = sum(cost.total_s for cost in costs)
        if costs:
            result.mean_emulation_s = result.total_emulation_s / len(costs)
        return result

    # ------------------------------------------------------------------
    def screen_sensitive_ffs(self, cycles: int, samples_per_ff: int = 2,
                             seed: Optional[int] = None) -> List[int]:
        """Pre-screening experiment of section 6.3: find the flip-flops
        "susceptible of causing a failure when executing the selected
        workload" — the paper found 81 of 637 eligible.

        ``seed`` randomises the per-FF injection instants; ``None`` keeps
        the historical default (7) for backward compatibility.
        """
        rng = random.Random(7 if seed is None else seed)
        sensitive: List[int] = []
        from .faults import FaultModel, Target, TargetKind
        for ff_index in range(len(self.locmap.mapped.ffs)):
            for _ in range(samples_per_ff):
                fault = Fault(
                    model=FaultModel.BITFLIP,
                    target=Target(TargetKind.FF, ff_index),
                    start_cycle=rng.randrange(cycles),
                )
                outcome = self.run_experiment(fault, cycles).outcome
                if outcome is Outcome.FAILURE:
                    sensitive.append(ff_index)
                    break
        return sensitive
