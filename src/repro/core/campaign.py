"""Campaign orchestration: the experiment loop of the paper's figure 1.

Each experiment follows the figure exactly::

    reset system to initial state
    workload execution            (until the fault injection time)
    FPGA reconfiguration          (fault injection purposes)
    workload execution            (until the fault duration expires)
    FPGA reconfiguration          (fault removal purposes)
    workload execution            (until the experiment end time)
    observation -> analysis of results

The observation process records the primary outputs every cycle plus the
final architectural state; classification against the golden run follows
:mod:`repro.core.classify`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..fpga.board import Board
from ..fpga.device import Device
from ..fpga.implement import Implementation
from ..fpga.jbits import JBits
from ..hdl.simulator import check_backend
from ..hdl.trace import Trace
from ..obs import metrics as obs_metrics
from ..obs.tracing import span
from ..synth.locmap import LocationMap
from .classify import Outcome, OutcomeCounts, classify
from .config import FaultLoadSpec, generate_faultload, pool_size
from .faults import Fault
from .injector import FadesInjector
from .timing_model import EmulationTimeModel, ExperimentCost, FadesTimingParams

_RECONFIG_SECONDS = obs_metrics.histogram(
    "reconfig_seconds",
    "Emulated reconfiguration seconds per experiment by Table 1 mechanism.",
    buckets=(0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0))
_EXPERIMENTS = obs_metrics.counter(
    "experiments_total", "Completed experiments by outcome.")


@dataclass
class ExperimentResult:
    """One fault-injection experiment's record."""

    fault: Fault
    outcome: Outcome
    cost: ExperimentCost
    first_divergence: Optional[int] = None
    #: Statically proven Silent by :mod:`repro.sfa`; never emulated.
    pruned: bool = False
    #: Faultload index of the equivalence-class representative whose
    #: emulation produced this outcome (fault collapsing), if any.
    collapsed_from: Optional[int] = None
    #: Excised by the runtime after exhausting retries and bisection
    #: (:class:`Outcome.QUARANTINED`); ``error`` carries the failure
    #: fingerprint that condemned it.
    quarantined: bool = False
    error: Optional[str] = None


@dataclass
class CampaignResult:
    """All experiments of one campaign (one experiment class)."""

    spec_label: str
    golden: Trace
    experiments: List[ExperimentResult] = field(default_factory=list)
    mean_emulation_s: float = 0.0
    total_emulation_s: float = 0.0
    #: Stopping decision of an adaptive campaign (reason, achieved n,
    #: Wilson intervals — see :mod:`repro.faultload.sequential`); None
    #: for fixed-budget campaigns.
    stop: Optional[Dict] = None
    #: Per-stratum rate table of an adaptive campaign
    #: (:func:`repro.faultload.strata.summarize_strata`); None when the
    #: statistical planner was not engaged.
    strata: Optional[List[Dict]] = None

    def counts(self) -> OutcomeCounts:
        """Failure/Latent/Silent tally."""
        counts = OutcomeCounts()
        for experiment in self.experiments:
            counts.add(experiment.outcome)
        return counts

    def failure_percent(self) -> float:
        """Percentage of failures (the paper's headline metric)."""
        return self.counts().percent(Outcome.FAILURE)

    def pruned_count(self) -> int:
        """Experiments resolved statically instead of being emulated."""
        return sum(1 for experiment in self.experiments
                   if experiment.pruned)

    def collapsed_count(self) -> int:
        """Experiments attributed from an equivalence representative."""
        return sum(1 for experiment in self.experiments
                   if experiment.collapsed_from is not None)

    def emulated_count(self) -> int:
        """Experiments that actually ran on the device."""
        return (len(self.experiments) - self.pruned_count()
                - self.collapsed_count())


class FadesCampaign:
    """Run fault-emulation campaigns on one implemented design."""

    def __init__(self, impl: Implementation, locmap: LocationMap,
                 board: Optional[Board] = None, seed: int = 0,
                 timing_params: FadesTimingParams = FadesTimingParams(),
                 full_download_delays: bool = True,
                 inputs: Optional[Dict[str, int]] = None,
                 checkpoint_interval: int = 0,
                 backend: str = "reference",
                 prune_silent: bool = False):
        self.impl = impl
        self.locmap = locmap
        self.inputs = dict(inputs or {})
        #: Static fault analysis (:mod:`repro.sfa`): resolve provably
        #: Silent faults without emulating them and collapse
        #: behaviourally identical faults onto one representative.
        self.prune_silent = prune_silent
        self._static: Dict[tuple, object] = {}
        #: Simulator backend: ``reference`` runs each experiment through
        #: the device simulator; ``compiled`` packs experiments into the
        #: bit-lanes of the :mod:`repro.emu` engine (golden in lane 0).
        self.backend = check_backend(backend)
        #: Fast-forward optimisation: with a positive interval, the golden
        #: run stores device snapshots every N cycles and experiments
        #: restore the nearest one at or before the injection instant
        #: instead of re-executing the fault-free prefix.  Purely a host
        #: optimisation — emulated time is unaffected (the real board
        #: would execute the prefix at full FPGA speed anyway).
        self.checkpoint_interval = checkpoint_interval
        self._checkpoints: Dict[tuple, Dict[int, object]] = {}
        self.device = Device(impl)
        locmap.attach_placement(impl.placement)
        self.board = board if board is not None else Board()
        self.jbits = JBits(self.device, self.board)
        self.rng = random.Random(seed)
        self.injector = FadesInjector(
            self.jbits, rng=random.Random(seed ^ 0xFADE5),
            full_download_delays=full_download_delays)
        self.injector.backend_label = self.backend
        self.time_model = EmulationTimeModel(self.board, timing_params)
        self._golden: Dict[tuple, Trace] = {}
        #: How many golden runs were actually *simulated* (as opposed to
        #: served from the cache) — multi-class reports should see 1.
        self.golden_simulations = 0

    # ------------------------------------------------------------------
    def _golden_key(self, cycles: int) -> tuple:
        """Cache key: the workload identity (the constant primary-input
        assignment), the experiment length and the simulator backend.
        Keying by workload means mutating ``self.inputs`` between
        campaigns can never serve a stale golden trace; keying by backend
        means switching ``--backend`` can never reuse the other backend's
        golden trace."""
        return (tuple(sorted(self.inputs.items())), cycles, self.backend)

    def golden_run(self, cycles: int) -> Trace:
        """Fault-free reference trace (cached per workload and length).

        Every campaign sharing this object — e.g. the experiment classes
        of a multi-class report — simulates the golden run exactly once.
        """
        key = self._golden_key(cycles)
        cached = self._golden.get(key)
        if cached is not None:
            return cached
        device = self.device
        if (self.backend == "compiled"
                and not device._violating and not device._broken_nets):
            from ..emu.backend import compiled_golden
            trace = compiled_golden(self, cycles)
            if trace is not None:
                self.golden_simulations += 1
                self._golden[key] = trace
                return trace
            # Compilation failed: the campaign has been degraded to the
            # reference backend — re-key the cache and simulate below.
            key = self._golden_key(cycles)
        device.reset_system()
        trace = Trace(tuple(device.mapped.outputs))
        interval = self.checkpoint_interval
        checkpoints: Dict[int, object] = {}
        for cycle in range(cycles):
            if interval and cycle % interval == 0:
                checkpoints[cycle] = device.save_state()
            trace.record(device.step(self.inputs if cycle == 0 else None))
        trace.final_state = device.state_snapshot()
        trace.cycles = cycles
        self.golden_simulations += 1
        self._golden[key] = trace
        if interval:
            self._checkpoints[key] = checkpoints
        return trace

    # ------------------------------------------------------------------
    def run_experiment(self, fault: Fault, cycles: int, pool: int = 0,
                       index: Optional[int] = None) -> ExperimentResult:
        """One experiment of figure 1; device ends restored to golden.

        ``index`` is purely observability metadata: the runtime passes
        the fault's campaign index so worker trace spans stay keyed to
        the journal record they produced.
        """
        with span("experiment", index=index, model=fault.model.value,
                  target=fault.target.kind.value, backend="reference"):
            return self._run_experiment(fault, cycles, pool)

    def _run_experiment(self, fault: Fault, cycles: int,
                        pool: int) -> ExperimentResult:
        device = self.device
        marker = self.time_model.begin_experiment()
        board_marker = self.board.snapshot()
        self.board.set_label(fault.model.value)

        injection = self.injector.prepare(fault)
        mechanism = (getattr(injection, "mechanism_label", "")
                     or fault.model.value)
        if fault.duration_cycles >= 1.0:
            window = fault.whole_cycles
        else:
            window = 1 if fault.straddles_edge else 0
        start = min(fault.start_cycle, max(0, cycles - 1))

        # Fast-forward over the fault-free prefix when a golden checkpoint
        # at or before the injection instant is available.
        first_cycle = 0
        trace = Trace(tuple(device.mapped.outputs))
        checkpoints = self._checkpoints.get(self._golden_key(cycles))
        golden_cached = self._golden.get(self._golden_key(cycles))
        if checkpoints and golden_cached is not None and start > 0:
            usable = [c for c in checkpoints if c <= start]
            if usable:
                first_cycle = max(usable)
                device.load_state(checkpoints[first_cycle])
                trace.samples = list(golden_cached.samples[:first_cycle])
            else:
                device.reset_system()
        else:
            device.reset_system()

        removed = False
        injected = False
        with span("run", cycles=cycles, first_cycle=first_cycle,
                  backend="reference"):
            for cycle in range(first_cycle, cycles):
                if cycle == start:
                    with span("reconfigure", mechanism=mechanism,
                              op="inject"):
                        injection.inject()
                    injected = True
                    if window == 0 and fault.model.transient:
                        with span("reconfigure", mechanism=mechanism,
                                  op="remove"):
                            injection.remove()
                        removed = True
                if (injected and not removed
                        and start <= cycle < start + window):
                    injection.tick(cycle - start)
                trace.record(device.step(self.inputs if cycle == 0
                                         else None))
                if (injected and not removed and fault.model.transient
                        and cycle >= start + window - 1):
                    with span("reconfigure", mechanism=mechanism,
                              op="remove"):
                        injection.remove()
                    removed = True
            if injected and not removed and fault.model.transient:
                with span("reconfigure", mechanism=mechanism, op="remove"):
                    injection.remove()
        # Emulated board seconds this experiment spent on the link: every
        # injection/removal transaction since the marker (the host-side
        # golden restore below bypasses the board, so it never counts).
        _RECONFIG_SECONDS.observe(self.board.since(board_marker)[1],
                                  mechanism=mechanism)

        with span("readback", mechanism=mechanism):
            trace.final_state = device.state_snapshot()
            trace.cycles = cycles
            # Restore the golden image for persistent faults (bit-flips
            # and permanent models leave frames modified) *before* any
            # golden run can execute on this device.
            self._restore_configuration()

        golden = self.golden_run(cycles)
        cost = self.time_model.end_experiment(marker, cycles, pool)
        with span("classify", backend="reference"):
            outcome = classify(golden, trace)
            first_divergence = trace.first_divergence(golden)
        _EXPERIMENTS.inc(outcome=outcome.value)
        return ExperimentResult(
            fault=fault, outcome=outcome, cost=cost,
            first_divergence=first_divergence)

    def _restore_configuration(self) -> None:
        golden = self.impl.golden_bitstream
        for addr in self.device.config.diff_frames(golden):
            # Host-side cleanup between experiments; not part of the
            # emulated per-fault cost (the paper reloads state, not the
            # full file, between experiments).
            self.device.write_frame(addr, golden.get_frame(addr))

    # ------------------------------------------------------------------
    def run(self, spec: FaultLoadSpec, seed: Optional[int] = None
            ) -> CampaignResult:
        """Generate and run a whole faultload; returns the aggregate."""
        faults = generate_faultload(
            spec, self.locmap, seed=self.rng.randrange(2**31)
            if seed is None else seed,
            routed_nets=self.impl.routing.is_routed)
        return self.run_faults(faults, spec.workload_cycles,
                               label=spec.label(),
                               pool=pool_size(spec, self.locmap))

    def run_batch(self, faults: Sequence[Fault], cycles: int, pool: int = 0,
                  indices: Optional[Sequence[int]] = None,
                  reseed: Optional[Callable[[int], None]] = None
                  ) -> List[ExperimentResult]:
        """Run a fault list through the selected backend, in fault order.

        ``indices`` carries each fault's campaign index (observability
        metadata and the ``reseed`` argument); ``reseed`` is the
        runtime's per-experiment injector re-seeding hook.  The reference
        backend runs one experiment per fault; the compiled backend packs
        supported faults into bit-lane batches.
        """
        if self.backend == "compiled":
            from ..emu import run_lane_batch
            return run_lane_batch(self, faults, cycles, pool=pool,
                                  indices=indices, reseed=reseed)
        results: List[ExperimentResult] = []
        for position, fault in enumerate(faults):
            index = indices[position] if indices is not None else position
            if reseed is not None:
                reseed(index)
            results.append(
                self.run_experiment(fault, cycles, pool=pool, index=index))
        return results

    def static_plan(self, faults: Sequence[Fault], cycles: int,
                    restrict_rng_free: bool = False):
        """Static-analysis verdict over a faultload (:mod:`repro.sfa`).

        The analyses (structural graph, observability cones, workload
        profile) are cached per workload-and-length, like the golden
        trace; only the per-faultload planning repeats.  Imported
        lazily — :mod:`repro.sfa` depends on this package.
        """
        from ..sfa.prune import StaticFaultAnalysis
        key = (tuple(sorted(self.inputs.items())), cycles)
        sfa = self._static.get(key)
        if sfa is None:
            device = self.device
            sfa = StaticFaultAnalysis(
                self.locmap.mapped, cycles, inputs=self.inputs,
                timing=self.impl.timing,
                trusted=(not device._violating
                         and not device._broken_nets))
            self._static[key] = sfa
        return sfa.plan(faults, restrict_rng_free=restrict_rng_free)

    def _run_pruned(self, faults: Sequence[Fault], cycles: int,
                    pool: int) -> List[ExperimentResult]:
        """Emulate only what static analysis cannot resolve.

        Provably Silent faults are journalled directly (``pruned``);
        equivalence-class members inherit their representative's
        outcome (``collapsed_from``).  The serial campaign shares one
        injector RNG stream across experiments, so the plan is
        restricted to RNG-free faults — skipping an experiment must
        never shift a later experiment's draws.
        """
        plan = self.static_plan(faults, cycles, restrict_rng_free=True)
        survivors = plan.survivors()
        emulated = self.run_batch(
            [faults[index] for index in survivors], cycles, pool=pool,
            indices=survivors)
        by_index = dict(zip(survivors, emulated))
        collapsed = plan.collapsed
        results: List[ExperimentResult] = []
        for index, fault in enumerate(faults):
            if index in plan.pruned:
                results.append(ExperimentResult(
                    fault=fault, outcome=Outcome.SILENT,
                    cost=ExperimentCost(), pruned=True))
                continue
            representative = collapsed.get(index)
            if representative is not None:
                rep = by_index[representative]
                results.append(ExperimentResult(
                    fault=fault, outcome=rep.outcome,
                    cost=ExperimentCost(),
                    first_divergence=rep.first_divergence,
                    collapsed_from=representative))
                continue
            results.append(by_index[index])
        return results

    def run_faults(self, faults: Sequence[Fault], cycles: int,
                   label: str = "", pool: int = 0) -> CampaignResult:
        """Run a pre-generated fault list.

        With :attr:`prune_silent` the list first passes through
        :meth:`static_plan`; mean emulation time is computed over the
        experiments that actually ran (pruned and collapsed records
        carry zero cost — the board never saw them).
        """
        golden = self.golden_run(cycles)
        result = CampaignResult(spec_label=label, golden=golden)
        start_index = len(self.time_model.costs)
        if self.prune_silent:
            result.experiments = self._run_pruned(faults, cycles, pool)
        else:
            result.experiments = self.run_batch(faults, cycles, pool=pool)
        costs = self.time_model.costs[start_index:]
        result.total_emulation_s = sum(cost.total_s for cost in costs)
        if costs:
            result.mean_emulation_s = result.total_emulation_s / len(costs)
        return result

    # ------------------------------------------------------------------
    def screen_sensitive_ffs(self, cycles: int, samples_per_ff: int = 2,
                             seed: Optional[int] = None) -> List[int]:
        """Pre-screening experiment of section 6.3: find the flip-flops
        "susceptible of causing a failure when executing the selected
        workload" — the paper found 81 of 637 eligible.

        ``seed`` randomises the per-FF injection instants; ``None`` keeps
        the historical default (7) for backward compatibility.
        """
        rng = random.Random(7 if seed is None else seed)
        sensitive: List[int] = []
        from .faults import FaultModel, Target, TargetKind
        for ff_index in range(len(self.locmap.mapped.ffs)):
            for _ in range(samples_per_ff):
                fault = Fault(
                    model=FaultModel.BITFLIP,
                    target=Target(TargetKind.FF, ff_index),
                    start_cycle=rng.randrange(cycles),
                )
                outcome = self.run_experiment(fault, cycles).outcome
                if outcome is Outcome.FAILURE:
                    sensitive.append(ff_index)
                    break
        return sensitive
