"""Emulation-time model for FADES experiments.

The paper's emulation time (section 6.2, figure 10, table 2) decomposes
into the parts this model accounts:

* **fault location analysis** — mapping the HDL-level location pool onto
  device resources; proportional to the number of candidate resources
  (this reproduces the paper's observation that combinational-delay
  experiments ran longer than sequential ones "since the selected model
  presents fewer sequential injection points");
* **reconfiguration transfers** — the dominant share; taken directly from
  the board's transaction log, so it reflects the *actual* frames each
  mechanism moved;
* **workload execution** — cycles divided by the emulation clock;
  negligible, as the paper notes in section 7.1.

All times are *emulated 2006-era* seconds; nothing sleeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..fpga.board import Board


@dataclass(frozen=True)
class FadesTimingParams:
    """Cost constants outside the board's transfer model."""

    #: Fault-location analysis cost per candidate resource in the pool,
    #: paid once per experiment (model/configuration-file analysis).
    locate_seconds_per_candidate: float = 2.0e-5
    #: Fixed per-experiment software overhead (setup, trace comparison).
    experiment_overhead_s: float = 0.01


@dataclass
class ExperimentCost:
    """Time breakdown of one fault-injection experiment."""

    locate_s: float = 0.0
    transfer_s: float = 0.0
    workload_s: float = 0.0
    overhead_s: float = 0.0
    transactions: int = 0

    @property
    def total_s(self) -> float:
        return (self.locate_s + self.transfer_s + self.workload_s
                + self.overhead_s)


class EmulationTimeModel:
    """Accumulates per-experiment costs from the board log."""

    def __init__(self, board: Board,
                 params: FadesTimingParams = FadesTimingParams()):
        self.board = board
        self.params = params
        self.costs: List[ExperimentCost] = []

    def begin_experiment(self):
        """Marker for the transfer log; pass the result to :meth:`end`."""
        return self.board.snapshot()

    def end_experiment(self, marker, cycles: int,
                       pool_size: int) -> ExperimentCost:
        """Close one experiment and record its cost breakdown."""
        transactions, transfer_s = self.board.since(marker)
        cost = ExperimentCost(
            locate_s=self.params.locate_seconds_per_candidate * pool_size,
            transfer_s=transfer_s,
            workload_s=self.board.workload_seconds(cycles),
            overhead_s=self.params.experiment_overhead_s,
            transactions=transactions,
        )
        self.costs.append(cost)
        return cost

    # -- aggregation -------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Emulated wall-clock of the whole campaign."""
        return sum(cost.total_s for cost in self.costs)

    def mean_seconds(self) -> float:
        """Mean emulated time per experiment."""
        if not self.costs:
            return 0.0
        return self.total_seconds / len(self.costs)

    def breakdown(self) -> Dict[str, float]:
        """Campaign-level totals per cost component."""
        return {
            "locate_s": sum(c.locate_s for c in self.costs),
            "transfer_s": sum(c.transfer_s for c in self.costs),
            "workload_s": sum(c.workload_s for c in self.costs),
            "overhead_s": sum(c.overhead_s for c in self.costs),
        }

    def project(self, n_faults: int) -> float:
        """Extrapolate the mean per-fault cost to a campaign of *n_faults*
        (used to quote paper-scale numbers: 3000 faults per experiment)."""
        return self.mean_seconds() * n_faults
