"""Permanent fault models — the paper's announced extension.

Section 8: "In the near future, we envisage the extension of this framework
to cover a set of typical permanent faults that have not been used for
fault emulation of VLSI systems yet, such as short, open-line, bridging and
stuck-open faults."  This module implements that extension with the same
RTR machinery:

* **stuck-at** — a LUT line (output or input) or a flip-flop frozen at a
  logic level: LUT truth-table rewrite, or LSR held with a fixed srval;
* **open-line** — a floating LUT input; the disconnected line decays to a
  weak level, so the LUT is rewritten with that input treated as constant;
* **bridging** — a short between two input lines of a function generator;
  the truth table is rewritten so the victim line follows the aggressor
  (wired-short), or their AND/OR for resistive bridges;
* **stuck-open** — a flip-flop whose pass transistor no longer conducts:
  it retains its current value forever (state capture + LSR hold).

Permanent faults are injected once and never removed within the
experiment; between experiments the campaign restores the golden
configuration, modelling the repair of the device under test.
"""

from __future__ import annotations

from ..errors import InjectionError
from ..fpga.bitstream import CbConfig
from .faults import Fault, FaultModel, TargetKind
from .injector import FadesInjector, Injection, stuck_lut_line


def bridge_lut_lines(tt: int, victim: int, aggressor: int,
                     mode: str = "short") -> int:
    """Rewrite a truth table with input *victim* bridged to *aggressor*.

    ``mode`` selects the electrical model: ``'short'`` (victim follows
    aggressor), ``'and'`` (wired-AND) or ``'or'`` (wired-OR).
    """
    if victim == aggressor:
        raise InjectionError("bridging needs two distinct lines")
    out = 0
    for index in range(16):
        v = (index >> victim) & 1
        a = (index >> aggressor) & 1
        if mode == "short":
            effective = a
        elif mode == "and":
            effective = v & a
        elif mode == "or":
            effective = v | a
        else:
            raise InjectionError(f"unknown bridging mode {mode!r}")
        faulty_index = ((index & ~(1 << victim))
                        | (effective << victim))
        if (tt >> faulty_index) & 1:
            out |= 1 << index
    return out


class _LutStuckAt(Injection):
    """Stuck-at (or open-line) on a LUT line via truth-table rewrite."""

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.lut_site(fault.target.index)

    def inject(self) -> None:
        jbits = self.injector.jbits
        current = jbits.read_cb(self.row, self.col)
        value = self.fault.value if self.fault.value is not None else 0
        faulty = CbConfig(**{**current.__dict__})
        faulty.tt = stuck_lut_line(current.tt, self.fault.target.line, value)
        jbits.write_cb(self.row, self.col, faulty)


class _FfStuckAt(Injection):
    """Flip-flop frozen at a level through a permanently held LSR."""

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.ff_site(fault.target.index)

    def inject(self) -> None:
        jbits = self.injector.jbits
        golden = self.injector.golden_cb(self.row, self.col)
        value = self.fault.value if self.fault.value is not None else 0
        forced = CbConfig(**{**golden.__dict__})
        forced.srval = value
        forced.invert_lsr = True
        jbits.write_cb(self.row, self.col, forced)


class _FfStuckOpen(Injection):
    """Stuck-open flip-flop: retains its current value forever.

    The state is captured from the column state frame and then held with
    the LSR line — the stored charge can no longer be overwritten.
    """

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.ff_site(fault.target.index)

    def inject(self) -> None:
        jbits = self.injector.jbits
        state = jbits.read_ff_state(self.row, self.col)
        golden = self.injector.golden_cb(self.row, self.col)
        forced = CbConfig(**{**golden.__dict__})
        forced.srval = state
        forced.invert_lsr = True
        jbits.write_cb(self.row, self.col, forced)


class _LutBridging(Injection):
    """Short between two input lines of one function generator."""

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        if fault.aux_target is None:
            raise InjectionError("bridging faults need aux_target")
        if fault.aux_target.index != fault.target.index:
            raise InjectionError(
                "bridging is supported between lines of one LUT")
        self.row, self.col = injector.lut_site(fault.target.index)
        self.mode = fault.mechanism or "short"

    def inject(self) -> None:
        jbits = self.injector.jbits
        current = jbits.read_cb(self.row, self.col)
        faulty = CbConfig(**{**current.__dict__})
        faulty.tt = bridge_lut_lines(current.tt, self.fault.target.line,
                                     self.fault.aux_target.line, self.mode)
        jbits.write_cb(self.row, self.col, faulty)


def prepare_permanent(injector: FadesInjector, fault: Fault) -> Injection:
    """Build the injection for a permanent fault model."""
    model = fault.model
    if model is FaultModel.STUCK_AT:
        if fault.target.kind is TargetKind.LUT:
            return _LutStuckAt(injector, fault)
        if fault.target.kind is TargetKind.FF:
            return _FfStuckAt(injector, fault)
        raise InjectionError(
            f"stuck-at cannot target {fault.target.kind.value}")
    if model is FaultModel.OPEN_LINE:
        if fault.target.kind is TargetKind.LUT and fault.target.line >= 0:
            # The floating input decays to a weak level (value, default 0).
            return _LutStuckAt(injector, fault)
        raise InjectionError("open-line targets a LUT input line")
    if model is FaultModel.BRIDGING:
        return _LutBridging(injector, fault)
    if model is FaultModel.STUCK_OPEN:
        if fault.target.kind is TargetKind.FF:
            return _FfStuckOpen(injector, fault)
        raise InjectionError("stuck-open targets a flip-flop")
    raise InjectionError(f"{model.value} is not a permanent model")
