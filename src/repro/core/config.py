"""Experiment setup: campaign configuration and faultload generation.

This is the library equivalent of the FADES *experiments setup module*
(paper, section 5, figure 9): "the length of the experiments, the type of
fault to be emulated, the fault location and duration, the observation
points, etc."

A :class:`FaultLoadSpec` describes one experiment class — fault model,
location pool, duration band, count — and :func:`generate_faultload` draws
the concrete :class:`~repro.core.faults.Fault` instances with injection
instants "uniformly distributed along the workload duration" (section 6.1).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import InjectionError, LocationError
from ..synth.locmap import LocationMap
from .faults import Fault, FaultModel, Target, TargetKind


@dataclass
class FaultLoadSpec:
    """One experiment class (one bar/row of the paper's evaluation).

    ``pool`` selects where faults land:

    * ``'ffs'`` — all placed flip-flops ("registers");
    * ``'ffs:<unit>'`` — flip-flops of one functional unit;
    * ``'memory:<name>'`` — bits of one memory block (optionally
      restricted by ``mem_addr_range`` to the occupied region);
    * ``'luts:<unit>'`` — function generators of one unit (``'luts'``
      alone draws from every LUT);
    * ``'nets:seq'`` / ``'nets:comb'`` / ``'nets:comb:<unit>'`` — routed
      lines driven by sequential or combinational logic (delay faults).
    """

    model: FaultModel
    pool: str
    count: int
    duration_range: Tuple[float, float] = (1.0, 10.0)
    workload_cycles: int = 1000
    mem_addr_range: Optional[Tuple[int, int]] = None
    magnitude_range_ns: Tuple[float, float] = (0.0, 0.0)
    mechanism: str = ""
    oscillate: bool = False
    lut_lines: bool = False  # pulses may hit input lines, not just outputs

    def label(self) -> str:
        """Short identifier used in reports."""
        return f"{self.model.value}/{self.pool}/{self.duration_range}"


def pool_targets(spec: FaultLoadSpec, locmap: LocationMap) -> List[Target]:
    """Enumerate the candidate targets of a spec's location pool.

    The enumeration order is deterministic (it follows the placed
    netlist), which is what makes seed-derived sampling reproducible.
    """
    parts = spec.pool.split(":")
    kind = parts[0]
    if kind == "ffs":
        if len(parts) > 1:
            indices = locmap.ffs_in_unit(parts[1])
        else:
            indices = list(range(len(locmap.mapped.ffs)))
        return [Target(TargetKind.FF, index) for index in indices]
    if kind == "memory":
        name = parts[1]
        bram_index = locmap.memory(name)
        bram = locmap.mapped.brams[bram_index]
        lo, hi = spec.mem_addr_range or (0, bram.depth)
        return [Target(TargetKind.MEMORY_BIT, bram_index, addr=addr, bit=bit)
                for addr in range(lo, min(hi, bram.depth))
                for bit in range(bram.width)]
    if kind == "luts":
        if len(parts) > 1:
            indices = locmap.luts_in_unit(parts[1])
        else:
            indices = list(range(len(locmap.mapped.luts)))
        targets = []
        for index in indices:
            lines = [-1]
            if spec.lut_lines:
                lines += list(range(len(locmap.mapped.luts[index].ins)))
            for line in lines:
                targets.append(Target(TargetKind.LUT, index, line=line))
        return targets
    if kind == "nets":
        mapped = locmap.mapped
        if parts[1] == "seq":
            nets = [ff.q for ff in mapped.ffs]
        elif parts[1] == "comb":
            if len(parts) > 2:
                indices = locmap.luts_in_unit(parts[2])
            else:
                indices = range(len(mapped.luts))
            nets = [mapped.luts[i].out for i in indices]
        else:
            raise InjectionError(f"unknown net pool {spec.pool!r}")
        return [Target(TargetKind.NET, net) for net in nets]
    raise InjectionError(f"unknown location pool {spec.pool!r}")


def pool_size(spec: FaultLoadSpec, locmap: LocationMap) -> int:
    """Number of candidate locations the fault-location process analyses."""
    return len(pool_targets(spec, locmap))


def candidate_targets(spec: FaultLoadSpec, locmap: LocationMap,
                      routed_nets=None) -> List[Target]:
    """The location pool after routing-aware filtering.

    ``routed_nets`` (a predicate) filters net targets down to lines that
    actually exist in the routed design — a packed FF's D line, for
    example, cannot carry a delay fault.
    """
    targets = pool_targets(spec, locmap)
    if spec.model is FaultModel.DELAY and routed_nets is not None:
        targets = [t for t in targets if routed_nets(t.index)]
    if not targets:
        raise LocationError(
            f"location pool {spec.pool!r} is empty after implementation")
    return targets


def finish_fault(spec: FaultLoadSpec, target: Target,
                 rng: random.Random) -> Fault:
    """Draw the per-fault attributes (duration, instant, magnitude…).

    The draw order — duration, start cycle, magnitude, value, phase — is
    a compatibility contract: journals and tests pin faultloads by seed,
    so any reordering changes every campaign ever generated.
    """
    lo, hi = spec.duration_range
    duration = rng.uniform(lo, hi)
    start = rng.randrange(max(1, spec.workload_cycles))
    magnitude = rng.uniform(*spec.magnitude_range_ns)
    value = rng.randrange(2) \
        if spec.model is FaultModel.INDETERMINATION else None
    return Fault(
        model=spec.model,
        target=target,
        start_cycle=start,
        duration_cycles=duration,
        phase=rng.random(),
        value=value,
        magnitude_ns=magnitude,
        mechanism=spec.mechanism,
        oscillate=spec.oscillate,
    )


def iter_faultload(spec: FaultLoadSpec, locmap: LocationMap,
                   seed: int = 0,
                   routed_nets=None) -> Iterator[Fault]:
    """Unbounded uniform-random fault stream for one experiment class.

    Yields the same sequence :func:`generate_faultload` materialises,
    without an upper bound — the runtime engine consumes only as many
    faults as its stopping rule demands.
    """
    rng = random.Random(seed)
    targets = candidate_targets(spec, locmap, routed_nets)
    while True:
        target = rng.choice(targets)
        yield finish_fault(spec, target, rng)


def generate_faultload(spec: FaultLoadSpec, locmap: LocationMap,
                       seed: int = 0,
                       routed_nets=None) -> List[Fault]:
    """Draw *spec.count* faults for one experiment class.

    ``routed_nets`` (a predicate) filters net targets down to lines that
    actually exist in the routed design — a packed FF's D line, for
    example, cannot carry a delay fault.
    """
    return list(itertools.islice(
        iter_faultload(spec, locmap, seed, routed_nets), spec.count))
