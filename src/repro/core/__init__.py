"""FADES — the paper's contribution: RTR transient-fault emulation.

Public surface of the fault-emulation core:

* fault models and descriptors (:mod:`repro.core.faults`);
* the RTR injection mechanisms (:mod:`repro.core.injector`) plus the
  permanent-fault extension (:mod:`repro.core.permanent`);
* campaign orchestration per the paper's figure 1
  (:mod:`repro.core.campaign`) with experiment setup in
  :mod:`repro.core.config`;
* Failure/Latent/Silent classification (:mod:`repro.core.classify`);
* the emulation-time model (:mod:`repro.core.timing_model`).

:func:`build_fades` is the one-call entry point: HDL netlist in, a ready
:class:`~repro.core.campaign.FadesCampaign` out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..fpga.architecture import Architecture
from ..fpga.board import Board, BoardParams
from ..fpga.implement import implement
from ..fpga.timing import TimingParams
from ..hdl.netlist import Netlist
from ..synth import synthesize
from .campaign import CampaignResult, ExperimentResult, FadesCampaign
from .classify import Outcome, OutcomeCounts, classify
from .config_seu import (CONFIG_PLANES, ConfigBit, ConfigSeuReport,
                         config_seu_fault, occupied_frames, plane_bits,
                         random_config_bit, run_config_seu_campaign,
                         used_route_bit)
from .config import (FaultLoadSpec, candidate_targets, finish_fault,
                     generate_faultload, iter_faultload, pool_size,
                     pool_targets)
from .faults import (BAND_LABELS, DURATION_BANDS, Fault, FaultModel, Target,
                     TargetKind, band_label)
from .injector import FadesInjector, invert_lut_line, stuck_lut_line
from .multiple import (MultiLsrBitflip, MultiMemoryBitflip, PulseEquivalent,
                       adjacent_memory_mbu, multi_ff_bitflip,
                       prepare_multiple, pulse_equivalent_mbu)
from .permanent import bridge_lut_lines, prepare_permanent
from .results import ResultRow, render_table, row_from_campaign
from .timing_model import (EmulationTimeModel, ExperimentCost,
                           FadesTimingParams)


def build_fades(netlist: Netlist, arch: Optional[Architecture] = None,
                board_params: BoardParams = BoardParams(),
                seed: int = 0,
                full_download_delays: bool = True,
                inputs: Optional[dict] = None,
                checkpoint_interval: int = 0,
                backend: str = "reference",
                prune_silent: bool = False) -> FadesCampaign:
    """Synthesise, implement and wrap a design into a FADES campaign.

    ``inputs`` holds constant primary-input values for the whole run
    (self-contained workloads like the 8051 need none);
    ``checkpoint_interval`` enables golden-run snapshots every N cycles so
    experiments fast-forward over their fault-free prefix; ``backend``
    selects the workload simulator (``reference`` or the bit-parallel
    ``compiled`` engine of :mod:`repro.emu`); ``prune_silent`` lets the
    static fault analysis (:mod:`repro.sfa`) resolve provably Silent
    faults without emulating them.
    """
    result = synthesize(netlist)
    impl = implement(result.mapped, arch=arch)
    board = Board(board_params)
    return FadesCampaign(impl, result.locmap, board=board, seed=seed,
                         full_download_delays=full_download_delays,
                         inputs=inputs,
                         checkpoint_interval=checkpoint_interval,
                         backend=backend,
                         prune_silent=prune_silent)


__all__ = [
    "build_fades",
    "CampaignResult",
    "ExperimentResult",
    "FadesCampaign",
    "Outcome",
    "OutcomeCounts",
    "classify",
    "FaultLoadSpec",
    "candidate_targets",
    "finish_fault",
    "generate_faultload",
    "iter_faultload",
    "pool_size",
    "pool_targets",
    "BAND_LABELS",
    "DURATION_BANDS",
    "Fault",
    "FaultModel",
    "Target",
    "TargetKind",
    "band_label",
    "FadesInjector",
    "CONFIG_PLANES",
    "ConfigBit",
    "ConfigSeuReport",
    "config_seu_fault",
    "occupied_frames",
    "plane_bits",
    "random_config_bit",
    "run_config_seu_campaign",
    "used_route_bit",
    "invert_lut_line",
    "stuck_lut_line",
    "MultiLsrBitflip",
    "MultiMemoryBitflip",
    "PulseEquivalent",
    "adjacent_memory_mbu",
    "multi_ff_bitflip",
    "prepare_multiple",
    "pulse_equivalent_mbu",
    "bridge_lut_lines",
    "prepare_permanent",
    "ResultRow",
    "render_table",
    "row_from_campaign",
    "EmulationTimeModel",
    "ExperimentCost",
    "FadesTimingParams",
]
