"""Multiple bit-flips — the paper's section-8 / section-7.2 extension.

Two threads from the paper meet here:

* section 8 lists "the occurrence of multiple bit-flips" as future work —
  multi-cell upsets (MBUs) flip several storage cells at once;
* section 7.2 argues that a pulse in combinational logic "could be
  emulated by means of the injection of a multiple bit-flip in the
  related sequential logic", but that finding the right *distribution* of
  bit-flips requires injecting real combinational faults first.

This module provides both halves: simultaneous multi-FF / adjacent-memory
bit-flip injections, and :func:`pulse_equivalent_mbu`, which derives the
multiple bit-flip equivalent of a given combinational pulse by measuring
which flip-flops it corrupts — closing the loop the paper sketches.
"""

from __future__ import annotations


from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import InjectionError
from ..fpga.architecture import FrameAddr
from ..fpga.bitstream import CbConfig
from .faults import Fault, FaultModel, Target, TargetKind
from .injector import FadesInjector, Injection


def multi_ff_bitflip(ff_indices: Sequence[int], start_cycle: int) -> Fault:
    """A simultaneous bit-flip of several flip-flops (one MBU)."""
    if not ff_indices:
        raise InjectionError("an MBU needs at least one target")
    targets = [Target(TargetKind.FF, index) for index in ff_indices]
    return Fault(model=FaultModel.BITFLIP, target=targets[0],
                 start_cycle=start_cycle, mechanism="multi",
                 extra_targets=tuple(targets[1:]))


def adjacent_memory_mbu(bram_index: int, addr: int, first_bit: int,
                        width: int, start_cycle: int) -> Fault:
    """An MBU flipping *width* adjacent bits of one memory word.

    Physically adjacent configuration cells share a frame, so the whole
    upset costs a single read-modify-write — no more than a single-bit
    flip (the interesting asymmetry against multi-FF MBUs, which pay per
    flip-flop).
    """
    targets = [Target(TargetKind.MEMORY_BIT, bram_index, addr=addr,
                      bit=first_bit + offset)
               for offset in range(width)]
    return Fault(model=FaultModel.BITFLIP, target=targets[0],
                 start_cycle=start_cycle, mechanism="multi",
                 extra_targets=tuple(targets[1:]))


class MultiLsrBitflip(Injection):
    """Flip several FFs between the same two clock edges.

    One state-frame readback per involved column (shared by all targets
    in that column), then the usual force/release LSR write pair per FF.
    """

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.sites = [(target.index, injector.ff_site(target.index))
                      for target in fault.all_targets]

    def inject(self) -> None:
        jbits = self.injector.jbits
        # One state capture per distinct column.
        states = {}
        for _index, (_row, col) in self.sites:
            if col not in states:
                states[col] = jbits.read_frame(FrameAddr("state", col))
        for _index, (row, col) in self.sites:
            state = (states[col][row // 8] >> (row % 8)) & 1
            golden = self.injector.golden_cb(row, col)
            forced = CbConfig(**{**golden.__dict__})
            forced.srval = state ^ 1
            forced.invert_lsr = True
            jbits.write_cb(row, col, forced)
            jbits.write_cb(row, col, golden)


class MultiMemoryBitflip(Injection):
    """Flip several bits of one memory block in a single frame RMW."""

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        blocks = {target.index for target in fault.all_targets}
        if len(blocks) != 1:
            raise InjectionError(
                "a memory MBU must stay within one block (one frame)")
        placement = injector.device.impl.placement
        self.block = placement.block_of_bram[fault.target.index]

    def inject(self) -> None:
        jbits = self.injector.jbits
        arch = self.injector.device.arch
        addr = FrameAddr("bram", self.block)
        frame = bytearray(jbits.read_frame(addr))
        for target in self.fault.all_targets:
            _frame, byte_off, bit_off = arch.bram_bit(
                self.block, target.addr, target.bit)
            frame[byte_off] ^= 1 << bit_off
        jbits.write_frame(addr, bytes(frame))


def prepare_multiple(injector: FadesInjector, fault: Fault) -> Injection:
    """Build the injection for a multi-target bit-flip."""
    if fault.model is not FaultModel.BITFLIP:
        raise InjectionError("only bit-flips support multiplicity")
    kinds = {target.kind for target in fault.all_targets}
    if kinds == {TargetKind.FF}:
        return MultiLsrBitflip(injector, fault)
    if kinds == {TargetKind.MEMORY_BIT}:
        return MultiMemoryBitflip(injector, fault)
    raise InjectionError(f"mixed MBU target kinds: {kinds}")


# ---------------------------------------------------------------------------
# section 7.2: combinational pulse -> equivalent multiple bit-flip
# ---------------------------------------------------------------------------
@dataclass
class PulseEquivalent:
    """A pulse's measured footprint and its MBU replacement."""

    lut_index: int
    cycle: int
    flipped_ffs: Tuple[int, ...]
    mbu: Optional[Fault]   # None if the pulse touched no flip-flop


def pulse_equivalent_mbu(campaign, lut_index: int,
                         cycle: int) -> PulseEquivalent:
    """Measure which FFs a one-cycle output pulse on *lut_index* corrupts,
    and build the equivalent multiple bit-flip (paper, section 7.2).

    "It will be necessary to perform several experiments to determine how
    each fault model could be emulated by means of a multiple bit-flip" —
    this is that experiment, automated.
    """
    device = campaign.device
    # Golden flip-flop state one cycle after the probe point.
    device.reset_system()
    device.run(cycle + 1)
    golden = device.ff_state()
    # Pulse run.
    fault = Fault(FaultModel.PULSE, Target(TargetKind.LUT, lut_index),
                  cycle, duration_cycles=1.0)
    device.reset_system()
    injection = campaign.injector.prepare(fault)
    device.run(cycle)
    injection.inject()
    device.step()
    injection.remove()
    flipped = tuple(index for index, (a, b)
                    in enumerate(zip(golden, device.ff_state())) if a != b)
    campaign._restore_configuration()
    # The pulse corrupts the state captured at the END of `cycle`; a
    # bit-flip injected at `cycle + 1` flips exactly that state before
    # the next evaluation, so the two runs align cycle for cycle.
    mbu = multi_ff_bitflip(flipped, cycle + 1) if flipped else None
    return PulseEquivalent(lut_index=lut_index, cycle=cycle,
                           flipped_ffs=flipped, mbu=mbu)
