"""Configuration-memory upsets: faults in the FPGA-manufactured system.

The paper's closing future-work list (section 8) includes faults
"affecting systems manufactured using FPGAs" — where the system under
analysis *is* the FPGA, and a radiation-induced SEU lands in the
configuration memory itself: a LUT truth-table bit, a multiplexer control
bit, a routing pass transistor or a memory-block cell.  This extension
implements that model on the same RTR machinery: the upset is emulated by
a read-modify-write of the affected configuration frame, and the device
decodes the consequence —

* **CB plane**: changed logic function, inverted CB input, asserted local
  set/reset, altered GSR polarity...;
* **routing plane**: an allocated pass transistor knocked *off* breaks its
  net (the line floats low); an unused one knocked *on* adds a phantom
  load to the net crossing that matrix;
* **memory plane**: a data bit-flip, exactly section 4.1's model.

A campaign over uniformly-drawn configuration bits yields the *essential
bits* fraction: how much of the configuration is actually critical for
the design — the headline metric of later SEU-susceptibility literature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..errors import InjectionError
from ..fpga.architecture import FrameAddr
from .campaign import CampaignResult, FadesCampaign
from .classify import Outcome
from .faults import Fault, FaultModel, Target, TargetKind
from .injector import FadesInjector, Injection

#: Configuration planes a config-SEU campaign may draw from.
CONFIG_PLANES = ("cb", "route", "bram")


@dataclass(frozen=True)
class ConfigBit:
    """One addressable bit of configuration memory."""

    addr: FrameAddr
    byte_off: int
    bit_off: int

    def describe(self) -> str:
        return f"{self.addr} byte {self.byte_off} bit {self.bit_off}"


def plane_bits(arch, plane: str) -> int:
    """Total configuration bits of one plane on *arch*."""
    total = 0
    for addr in arch.config_frames():
        if addr.kind == plane:
            total += arch.frame_size(addr) * 8
    return total


def random_config_bit(arch, rng: random.Random,
                      planes: Sequence[str] = CONFIG_PLANES,
                      frames: Optional[Sequence[FrameAddr]] = None
                      ) -> ConfigBit:
    """Draw one configuration bit uniformly over the selected planes.

    ``frames`` optionally restricts the draw to a subset (e.g. the
    occupied region of the device).
    """
    if frames is None:
        frames = [addr for addr in arch.config_frames()
                  if addr.kind in planes]
    else:
        frames = [addr for addr in frames if addr.kind in planes]
    if not frames:
        raise InjectionError(f"no configuration frames in planes {planes}")
    weights = [arch.frame_size(addr) for addr in frames]
    addr = rng.choices(frames, weights=weights, k=1)[0]
    size = arch.frame_size(addr)
    offset = rng.randrange(size * 8)
    return ConfigBit(addr=addr, byte_off=offset // 8, bit_off=offset % 8)


def occupied_frames(campaign: FadesCampaign) -> List[FrameAddr]:
    """Configuration frames covering the design's occupied resources.

    SEU campaigns over the whole device are dominated by silent upsets in
    unused fabric (our 8051 occupies ~3% of the paper-class device); this
    subset concentrates the draw on columns hosting placed CBs, routed
    matrices and used memory blocks.
    """
    placement = campaign.impl.placement
    cols = {site[1] for site in placement.sites}
    route_cols = {pm[1] for pm in campaign.impl.routing.pm_used}
    frames: List[FrameAddr] = []
    frames += [FrameAddr("cb", col) for col in sorted(cols)]
    frames += [FrameAddr("route", col) for col in sorted(route_cols)]
    frames += [FrameAddr("bram", block)
               for block in sorted(placement.block_of_bram.values())]
    return frames


def used_route_bit(campaign: FadesCampaign, rng: random.Random,
                   net: Optional[int] = None) -> ConfigBit:
    """Draw a configuration bit that carries an *allocated* pass transistor.

    The worst-case (targeted) variant of the SEU study: upsetting a bit
    the design actually depends on.  Optionally restricted to one net.
    """
    from ..fpga.architecture import PM_BYTES
    routing = campaign.impl.routing
    nets = [net] if net is not None else list(routing.routes)
    chosen = rng.choice(nets)
    bits = routing.route_of(chosen).pass_transistors()
    if not bits:
        raise InjectionError(f"net {chosen} occupies no pass transistors")
    row, col, index = rng.choice(bits)
    return ConfigBit(FrameAddr("route", col),
                     byte_off=row * PM_BYTES + index // 8,
                     bit_off=index % 8)


def config_seu_fault(bit: ConfigBit, start_cycle: int) -> Fault:
    """Wrap a configuration bit into a fault descriptor."""
    return Fault(
        model=FaultModel.CONFIG_SEU,
        target=Target(TargetKind.CONFIG_BIT, bit.addr.major,
                      addr=bit.byte_off, bit=bit.bit_off),
        start_cycle=start_cycle,
        mechanism=bit.addr.kind,
    )


class ConfigSeuInjection(Injection):
    """Flip one configuration bit via frame read-modify-write.

    Like a memory bit-flip, the upset persists until the configuration is
    rewritten, so no removal reconfiguration happens within the
    experiment; the campaign restores the golden image afterwards
    (scrubbing, in radiation-hardening terms).
    """

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.addr = FrameAddr(fault.mechanism or "cb", fault.target.index)
        # Validate early so bad locations fail at prepare time.
        injector.device.arch.frame_size(self.addr)

    def inject(self) -> None:
        jbits = self.injector.jbits
        frame = bytearray(jbits.read_frame(self.addr))
        target = self.fault.target
        frame[target.addr] ^= 1 << target.bit
        jbits.write_frame(self.addr, bytes(frame))


@dataclass
class ConfigSeuReport:
    """Aggregate of a configuration-SEU campaign."""

    result: CampaignResult
    by_plane: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def essential_fraction(self) -> float:
        """Fraction of upsets with any observable effect (non-silent)."""
        counts = self.result.counts()
        if counts.total == 0:
            return 0.0
        return 1.0 - counts.silent / counts.total

    def render(self) -> str:
        lines = ["Configuration-memory SEU campaign",
                 str(self.result.counts()),
                 f"essential (non-silent) fraction: "
                 f"{100 * self.essential_fraction:.1f}%",
                 f"{'plane':<7} {'n':>4} {'failure':>8} {'latent':>7} "
                 f"{'silent':>7}"]
        for plane, tally in sorted(self.by_plane.items()):
            n = sum(tally.values())
            lines.append(
                f"{plane:<7} {n:>4} {tally.get('failure', 0):>8} "
                f"{tally.get('latent', 0):>7} {tally.get('silent', 0):>7}")
        return "\n".join(lines)


def run_config_seu_campaign(campaign: FadesCampaign, count: int,
                            cycles: int, seed: int = 0,
                            planes: Sequence[str] = CONFIG_PLANES,
                            occupied_only: bool = False
                            ) -> ConfigSeuReport:
    """Inject *count* uniformly-drawn configuration upsets and classify.

    Draws are weighted by plane size, matching the physics: an SEU is
    equally likely in any configuration cell, and the routing plane is by
    far the largest — which is why most upsets are silent on a design
    using a small fraction of the device.  ``occupied_only`` restricts
    the draw to the design's occupied region (see :func:`occupied_frames`).
    """
    rng = random.Random(seed)
    arch = campaign.device.arch
    pool = occupied_frames(campaign) if occupied_only else None
    faults = []
    for _ in range(count):
        bit = random_config_bit(arch, rng, planes, frames=pool)
        faults.append(config_seu_fault(bit, rng.randrange(max(1, cycles))))
    result = campaign.run_faults(faults, cycles, label="config-seu")
    by_plane: Dict[str, Dict[str, int]] = {}
    for experiment in result.experiments:
        plane = experiment.fault.mechanism
        tally = by_plane.setdefault(plane, {})
        key = experiment.outcome.value
        tally[key] = tally.get(key, 0) + 1
    return ConfigSeuReport(result=result, by_plane=by_plane)
