"""RTR injection mechanisms — the heart of FADES (paper, section 4).

Every mechanism acts exclusively through the JBits layer, i.e. by reading
and rewriting configuration memory, never by touching simulation state:

* **bit-flips in FFs** — via the LSR line (``InvertLSRMux`` + ``PRMux``/
  ``CLRMux`` reconfiguration; fast) or via the GSR line (full state
  capture, full srval reconfiguration, GSR pulse; slow) — section 4.1;
* **bit-flips in memory blocks** — read-modify-write of the block's
  configuration frame — section 4.1, figure 4;
* **pulses in LUTs** — truth-table extraction and rewrite with the
  targeted line (output or any input) inverted — section 4.2, figure 5;
* **pulses on CB inputs** — flip of the input-inverter mux control bit —
  section 4.2, figure 6;
* **delays** — extra fan-out loads through unused pass transistors (small
  delays) or rerouting through additional segments/logic (large delays) —
  section 4.3, figures 7/8;
* **indeterminations** — a *randomiser* picks the final logic level, then
  the FF/LUT machinery above applies it; in oscillating mode the level is
  re-randomised (and re-configured) every clock cycle — section 4.4.

Each mechanism is an :class:`Injection` with ``inject`` / ``tick`` /
``remove`` hooks driven by the campaign loop, so the emulated transfer
costs land on the board log at the same protocol points the real tool
paid them.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from ..errors import InjectionError, LocationError
from ..fpga.bitstream import CbConfig
from ..fpga.jbits import JBits
from ..obs import metrics
from .faults import Fault, FaultModel, TargetKind

_INJECTIONS = metrics.counter(
    "injections_total", "Prepared fault injections by model and target.")


def invert_lut_line(tt: int, line: int, n_inputs: int = 4) -> int:
    """Rewrite a (padded) LUT truth table with one line inverted.

    ``line == -1`` inverts the output; ``line == k`` inverts input *k*
    (the function then sees that input complemented) — the recomputation
    step of the paper's figure 5.
    """
    if line < 0:
        return tt ^ 0xFFFF
    if line >= n_inputs:
        raise InjectionError(f"LUT has no input line {line}")
    out = 0
    for index in range(16):
        if (tt >> (index ^ (1 << line))) & 1:
            out |= 1 << index
    return out


def stuck_lut_line(tt: int, line: int, value: int) -> int:
    """Rewrite a LUT truth table with one line stuck at *value*.

    Used by the indetermination randomiser (output forced to the random
    level) and by the permanent stuck-at extension.
    """
    if line < 0:
        return 0xFFFF if value else 0x0000
    out = 0
    for index in range(16):
        frozen = (index | (1 << line)) if value else (index & ~(1 << line))
        if (tt >> frozen) & 1:
            out |= 1 << index
    return out


class Injection:
    """Base class: one prepared fault, ready to drive through the device."""

    #: Table 1 mechanism this injection times (used by the observability
    #: layer to label ``reconfigure`` spans and ``reconfig_seconds``).
    mechanism_label = ""

    def __init__(self, fault: Fault):
        self.fault = fault

    def inject(self) -> None:
        """Reconfigure the device to activate the fault."""

    def tick(self, cycle_in_window: int) -> None:
        """Called before every clock edge inside the fault window."""

    def remove(self) -> None:
        """Reconfigure the device to deactivate the fault."""


class FadesInjector:
    """Factory of injections for one configured device.

    Parameters
    ----------
    jbits:
        Reconfiguration handle (carries the board cost accounting).
    rng:
        Randomiser used for indetermination levels (paper, section 4.4).
    full_download_delays:
        Reproduce the paper's observed behaviour of downloading a full
        configuration file for delay injection (section 6.2).  Disable to
        measure the partial-reconfiguration potential (ablation 2).
    """

    #: Simulator backend this injector serves; the owning campaign
    #: overwrites it so ``injections_total`` can be split by backend.
    backend_label = "reference"

    def __init__(self, jbits: JBits, rng: Optional[random.Random] = None,
                 full_download_delays: bool = True):
        self.jbits = jbits
        self.device = jbits.device
        self.rng = rng if rng is not None else random.Random(0)
        self.full_download_delays = full_download_delays

    # ------------------------------------------------------------------
    def prepare(self, fault: Fault) -> Injection:
        """Build the mechanism-specific injection for *fault*."""
        _INJECTIONS.inc(model=fault.model.value,
                        target=fault.target.kind.value,
                        sim_backend=self.backend_label)
        model = fault.model
        if model is FaultModel.BITFLIP and fault.extra_targets:
            from .multiple import prepare_multiple
            return prepare_multiple(self, fault)
        if model is FaultModel.BITFLIP:
            if fault.target.kind is TargetKind.FF:
                if fault.mechanism == "gsr":
                    return _GsrBitflip(self, fault)
                return _LsrBitflip(self, fault)
            if fault.target.kind is TargetKind.MEMORY_BIT:
                return _MemoryBitflip(self, fault)
            raise InjectionError(
                f"bit-flip cannot target {fault.target.kind.value}")
        if model is FaultModel.PULSE:
            if fault.target.kind is TargetKind.LUT:
                return _LutPulse(self, fault)
            if fault.target.kind is TargetKind.CB_INPUT:
                return _CbInputPulse(self, fault)
            raise InjectionError(
                f"pulse cannot target {fault.target.kind.value}")
        if model is FaultModel.DELAY:
            if fault.target.kind is not TargetKind.NET:
                raise InjectionError("delay faults target nets")
            mechanism = fault.mechanism or self._pick_delay_mechanism(fault)
            if mechanism == "fanout":
                return _FanoutDelay(self, fault)
            return _RerouteDelay(self, fault)
        if model is FaultModel.INDETERMINATION:
            if fault.target.kind is TargetKind.FF:
                return _FfIndetermination(self, fault)
            if fault.target.kind is TargetKind.LUT:
                return _LutIndetermination(self, fault)
            raise InjectionError(
                f"indetermination cannot target {fault.target.kind.value}")
        if model is FaultModel.CONFIG_SEU:
            from .config_seu import ConfigSeuInjection
            return ConfigSeuInjection(self, fault)
        # Permanent extension models (paper section 8, future work).
        from .permanent import prepare_permanent
        return prepare_permanent(self, fault)

    def _pick_delay_mechanism(self, fault: Fault) -> str:
        """Small requested delays -> fan-out loads; large -> rerouting."""
        params = self.device.impl.timing.params
        return "fanout" if fault.magnitude_ns <= 60 * params.t_load \
            else "reroute"

    # -- shared site helpers ------------------------------------------------
    def ff_site(self, ff_index: int) -> Tuple[int, int]:
        try:
            return self.device.impl.placement.site_of_ff[ff_index]
        except KeyError:
            raise LocationError(f"FF {ff_index} is not placed") from None

    def lut_site(self, lut_index: int) -> Tuple[int, int]:
        try:
            return self.device.impl.placement.site_of_lut[lut_index]
        except KeyError:
            raise LocationError(f"LUT {lut_index} is not placed") from None

    def golden_cb(self, row: int, col: int) -> CbConfig:
        """The fault-free configuration of one CB (host-side knowledge)."""
        return self.device.impl.golden_bitstream.get_cb(row, col)


# ---------------------------------------------------------------------------
# bit-flips (section 4.1)
# ---------------------------------------------------------------------------
class _LsrBitflip(Injection):
    """Invert one FF through its local set/reset line.

    Three transactions: capture the FF's state from its column state
    frame, reconfigure ``PRMux``/``CLRMux`` (srval) plus ``InvertLSRMux``
    to force the inverted value, then release the line and restore the
    original srval.  The flipped value persists until overwritten, so
    :meth:`remove` is a no-op.
    """

    mechanism_label = "ff-lsr"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.ff_site(fault.target.index)

    def inject(self) -> None:
        jbits = self.injector.jbits
        state = jbits.read_ff_state(self.row, self.col)
        golden = self.injector.golden_cb(self.row, self.col)
        forced = CbConfig(**{**golden.__dict__})
        forced.srval = state ^ 1
        forced.invert_lsr = True
        jbits.write_cb(self.row, self.col, forced)
        jbits.write_cb(self.row, self.col, golden)


class _GsrBitflip(Injection):
    """Invert one FF through the global set/reset line (slow path).

    Requires capturing *every* FF's state, reconfiguring every srval so
    the GSR pulse reloads the current machine state with only the target
    inverted, pulsing GSR, and restoring all srvals — "the high amount of
    information to be transferred... slows down the emulation process".
    """

    mechanism_label = "ff-gsr"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.target_index = fault.target.index
        injector.ff_site(self.target_index)  # location check

    def inject(self) -> None:
        jbits = self.injector.jbits
        device = self.injector.device
        jbits.readback_full()  # capture all FF states (+ configuration)
        states = device.ff_state()
        image = device.config.copy()
        for ff_index, site in device.impl.placement.site_of_ff.items():
            config = image.get_cb(*site)
            value = states[ff_index]
            if ff_index == self.target_index:
                value ^= 1
            config.srval = value
            image.set_cb(site[0], site[1], config)
        jbits.write_full(image)
        jbits.pulse_gsr()
        # Restore the original srvals (the design's reset values) by
        # re-downloading the CB planes of the golden image.  Memory-block
        # frames are left alone: their cells hold live workload data that
        # a reload of the initial file would destroy.
        restore = device.config.copy()
        golden = device.impl.golden_bitstream
        for addr in restore.frames:
            if addr.kind == "cb":
                restore.set_frame(addr, golden.get_frame(addr))
        jbits.write_full(restore)


class _MemoryBitflip(Injection):
    """Reverse one bit of an embedded memory block (figure 4).

    One readback plus one frame write; since the fault "remains until
    rewritten, the reconfiguration phase that restores the original
    configuration is skipped".
    """

    mechanism_label = "memory-rmw"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        target = fault.target
        placement = injector.device.impl.placement
        try:
            self.block = placement.block_of_bram[target.index]
        except KeyError:
            raise LocationError(
                f"memory block {target.index} is not placed") from None

    def inject(self) -> None:
        target = self.fault.target
        self.injector.jbits.flip_bram_bit(self.block, target.addr,
                                          target.bit)


# ---------------------------------------------------------------------------
# pulses (section 4.2)
# ---------------------------------------------------------------------------
class _LutPulse(Injection):
    """Invert a LUT line by truth-table rewrite (figure 5).

    A sub-cycle pulse costs one injection operation (read, write faulty,
    write restore); a pulse of one or more cycles costs two injection
    operations — inject and remove — each a read-modify-write with a
    readback verification, matching the paper's observation that such
    pulses need "two injections" and twice the emulation time.
    """

    mechanism_label = "lut-rewrite"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.lut_site(fault.target.index)
        self.sub_cycle = fault.duration_cycles < 1.0

    def _faulty_config(self) -> Tuple[CbConfig, CbConfig]:
        jbits = self.injector.jbits
        current = jbits.read_cb(self.row, self.col)  # circuit extraction
        faulty = CbConfig(**{**current.__dict__})
        faulty.tt = invert_lut_line(current.tt, self.fault.target.line)
        return current, faulty

    def inject(self) -> None:
        jbits = self.injector.jbits
        self.golden, faulty = self._faulty_config()
        jbits.write_cb(self.row, self.col, faulty)
        if not self.sub_cycle:
            jbits.read_cb(self.row, self.col)  # verification readback

    def remove(self) -> None:
        jbits = self.injector.jbits
        if not self.sub_cycle:
            # Second injection operation: extract, rewrite, verify.
            jbits.read_cb(self.row, self.col)
        jbits.write_cb(self.row, self.col, self.golden)
        if not self.sub_cycle:
            jbits.read_cb(self.row, self.col)  # verification readback


class _CbInputPulse(Injection):
    """Invert a routed CB input through ``InvertFFinMux`` (figure 6).

    "It is only necessary to invert the control bit of the multiplexer
    for the targeted line" — one frame write each way, the cheapest
    transient mechanism.
    """

    mechanism_label = "cb-input-mux"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.ff_site(fault.target.index)
        cb = injector.device.impl.placement.sites[(self.row, self.col)]
        if cb.packed:
            raise LocationError(
                "CB-input pulses need a routed FFin path; FF "
                f"{fault.target.index} is packed with its LUT")

    def inject(self) -> None:
        golden = self.injector.golden_cb(self.row, self.col)
        faulty = CbConfig(**{**golden.__dict__})
        faulty.invert_ffin = True
        self.injector.jbits.write_cb(self.row, self.col, faulty)

    def remove(self) -> None:
        golden = self.injector.golden_cb(self.row, self.col)
        self.injector.jbits.write_cb(self.row, self.col, golden)


# ---------------------------------------------------------------------------
# delays (section 4.3)
# ---------------------------------------------------------------------------
class _DelayBase(Injection):
    """Shared transfer strategy of the two delay mechanisms.

    In the paper's setup, "experimental problems with the JBits package
    and the prototyping board driver" forced a *full configuration
    download* for delay injection (section 6.2): the host modifies its
    local image and ships the whole file.  Removal restores only the
    touched routing/CB frames (few and co-located by construction).  With
    ``full_download_delays`` disabled, injection also uses partial frame
    writes — the path the paper could not exercise (ablation 2).
    """

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.net = fault.target.index
        self.bits: List[Tuple[int, int, int]] = []

    def _apply_structural(self) -> None:
        raise NotImplementedError

    def _undo_structural(self) -> None:
        raise NotImplementedError

    def _touched_frames(self):
        from ..fpga.architecture import FrameAddr
        cols = sorted({col for _row, col, _pt in self.bits})
        if not cols:
            route = self.injector.device.impl.routing.route_of(self.net)
            col = max(0, min(route.driver_site[1],
                             self.injector.device.arch.cols - 1))
            cols = [col]
        return [FrameAddr("route", col) for col in cols]

    def inject(self) -> None:
        jbits = self.injector.jbits
        device = self.injector.device
        self._apply_structural()
        if self.injector.full_download_delays:
            # Host-side image update, then one full-file download.
            image = device.config.copy()
            for row, col, index in self.bits:
                image.set_pass_transistor(row, col, index, 1)
            jbits.write_full(image)
        else:
            for addr in self._touched_frames():
                frame = bytearray(device.config.get_frame(addr))
                for row, col, index in self.bits:
                    if col == addr.major:
                        JBits._set_pt(frame, row, index, 1)
                jbits.write_frame(addr, bytes(frame))
        device.refresh_timing()

    def remove(self) -> None:
        jbits = self.injector.jbits
        device = self.injector.device
        golden = device.impl.golden_bitstream
        frames = self._touched_frames()
        self._undo_structural()
        for addr in frames:
            jbits.write_frame(addr, golden.get_frame(addr))
        device.refresh_timing()


class _FanoutDelay(_DelayBase):
    """Increase a line's fan-out through unused pass transistors (fig. 8).

    Each enabled pass transistor adds a small load delay, so this
    mechanism is "adequate to emulate faults that introduce small
    propagation delays".
    """

    mechanism_label = "delay-fanout"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(injector, fault)
        params = injector.device.impl.timing.params
        # The achieved delay is whatever the enabled loads actually add;
        # the pool of unused pass transistors bounds it (paper: "good for
        # small delays").
        self.loads = min(max(1, round(fault.magnitude_ns / params.t_load)),
                         192)

    def _apply_structural(self) -> None:
        from ..errors import RoutingError
        routing = self.injector.device.impl.routing
        for _ in range(self.loads):
            try:
                self.bits.append(routing.add_extra_load(self.net))
            except RoutingError:
                break  # path saturated: inject what fits

    def _undo_structural(self) -> None:
        routing = self.injector.device.impl.routing
        for bit in self.bits:
            routing.remove_extra_load(self.net, bit)
        self.bits.clear()


class _RerouteDelay(_DelayBase):
    """Lengthen a line's route through extra segments/logic (figure 7).

    "Implementing a shift register composed by the required number of
    unused FFs is a good manner to emulate a large delay" — the detour is
    modelled as buffer stages plus PM segments sized to the requested
    magnitude, with the new pass transistors claimed in the driver's PM
    column (a vertical zig-zag detour), keeping the touched frames few.
    """

    mechanism_label = "delay-reroute"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(injector, fault)
        params = injector.device.impl.timing.params
        stage = params.t_lut + params.t_net_base
        self.extra_luts = int(fault.magnitude_ns / stage)
        remainder = fault.magnitude_ns - self.extra_luts * stage
        self.extra_hops = max(0, round(remainder / params.t_hop))

    def _apply_structural(self) -> None:
        routing = self.injector.device.impl.routing
        routing.set_detour(self.net, self.extra_hops,
                           through_luts=self.extra_luts)
        # Claim concrete pass transistors for the detour near the driver
        # and register them on the route, so the device's routing-plane
        # decoder knows these bits are legitimate.
        route = routing.route_of(self.net)
        pms = route.pms or [(max(0, route.driver_site[0]),
                             max(0, min(route.driver_site[1],
                                        self.injector.device.arch.cols - 1)))]
        budget = min(self.extra_hops + self.extra_luts,
                     routing.free_pass_transistors(pms[0]))
        for _ in range(max(1, budget)):
            if routing.free_pass_transistors(pms[0]) == 0:
                break
            index = routing.claim_pass_transistor(pms[0])
            bit = (pms[0][0], pms[0][1], index)
            self.bits.append(bit)
            route.detour_bits.append(bit)
        routing.version += 1

    def _undo_structural(self) -> None:
        routing = self.injector.device.impl.routing
        routing.clear_detour(self.net)  # also clears detour_bits
        for row, col, _index in self.bits:
            routing.pm_used[(row, col)] -= 1
        self.bits.clear()


# ---------------------------------------------------------------------------
# indeterminations (section 4.4)
# ---------------------------------------------------------------------------
class _FfIndetermination(Injection):
    """Force an FF to a randomised level for the fault duration.

    "Any procedure capable of modifying the logical value of the
    sequential elements is eligible" — we hold the LSR line asserted with
    a randomised srval; in oscillating mode the level is re-randomised
    every cycle, each re-randomisation being one more reconfiguration.
    """

    mechanism_label = "indet-ff"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.ff_site(fault.target.index)
        self.value = (fault.value if fault.value is not None
                      else injector.rng.randrange(2))

    def inject(self) -> None:
        jbits = self.injector.jbits
        self.golden = jbits.read_cb(self.row, self.col)
        forced = CbConfig(**{**self.golden.__dict__})
        forced.srval = self.value
        forced.invert_lsr = True
        jbits.write_cb(self.row, self.col, forced)
        self._forced = forced

    def tick(self, cycle_in_window: int) -> None:
        if not self.fault.oscillate or cycle_in_window == 0:
            return
        jbits = self.injector.jbits
        self.value = self.injector.rng.randrange(2)
        forced = CbConfig(**{**self._forced.__dict__})
        forced.srval = self.value
        jbits.write_cb(self.row, self.col, forced)
        self._forced = forced

    def remove(self) -> None:
        jbits = self.injector.jbits
        restored = CbConfig(**{**self.golden.__dict__})
        jbits.write_cb(self.row, self.col, restored)
        jbits.read_cb(self.row, self.col)  # verification readback


class _LutIndetermination(Injection):
    """Force a LUT output to a randomised level (section 4.4).

    Follows the pulse scheme of section 4.2, but instead of inverting the
    extracted line the randomiser generates "the final logic levels the
    internal buffer of the FPGA interprets" — the truth table is rewritten
    to the constant level.
    """

    mechanism_label = "indet-lut"

    def __init__(self, injector: FadesInjector, fault: Fault):
        super().__init__(fault)
        self.injector = injector
        self.row, self.col = injector.lut_site(fault.target.index)
        self.value = (fault.value if fault.value is not None
                      else injector.rng.randrange(2))

    def inject(self) -> None:
        jbits = self.injector.jbits
        self.golden = jbits.read_cb(self.row, self.col)
        faulty = CbConfig(**{**self.golden.__dict__})
        faulty.tt = stuck_lut_line(self.golden.tt, self.fault.target.line,
                                   self.value)
        jbits.write_cb(self.row, self.col, faulty)

    def tick(self, cycle_in_window: int) -> None:
        if not self.fault.oscillate or cycle_in_window == 0:
            return
        self.value = self.injector.rng.randrange(2)
        faulty = CbConfig(**{**self.golden.__dict__})
        faulty.tt = stuck_lut_line(self.golden.tt, self.fault.target.line,
                                   self.value)
        self.injector.jbits.write_cb(self.row, self.col, faulty)

    def remove(self) -> None:
        self.injector.jbits.write_cb(self.row, self.col, self.golden)
