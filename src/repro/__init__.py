"""Reproduction of *Run-Time Reconfiguration for Emulating Transient Faults
in VLSI Systems* (de Andres, Ruiz, Gil, Gil - DSN 2006).

The package rebuilds the paper's full stack in Python:

``repro.hdl``
    HDL modelling substrate: netlist IR, RTL builder, simulators.
``repro.synth``
    Synthesis: optimisation, 4-LUT technology mapping, location map.
``repro.fpga``
    The generic SRAM FPGA: architecture, implementation flow, a device
    that executes from configuration memory, the JBits-like RTR API and
    the host-board transfer-cost model.
``repro.mc8051``
    The target VLSI model: an 8051-subset microcontroller + workloads.
``repro.core``
    **FADES** - the paper's contribution: RTR fault-emulation mechanisms,
    campaigns, classification and the emulation-time model.
``repro.vfit``
    The VFIT baseline: simulator-command injection on the HDL model.
``repro.analysis``
    Regeneration of every table and figure of the paper's evaluation.
``repro.obs``
    Observability: tracing, metrics, structured logging, profiling.

Quickstart::

    from repro.core import build_fades, FaultLoadSpec, FaultModel
    from repro.mc8051 import build_mc8051, quick_bubblesort

    workload = quick_bubblesort()
    fades = build_fades(build_mc8051(workload.rom).netlist)
    spec = FaultLoadSpec(FaultModel.BITFLIP, "ffs", count=50,
                         workload_cycles=600)
    print(fades.run(spec).counts())
"""

from . import analysis, core, errors, fpga, hdl, mc8051, obs, synth, vfit
from .core import build_fades

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "core",
    "errors",
    "fpga",
    "hdl",
    "mc8051",
    "obs",
    "synth",
    "vfit",
    "build_fades",
    "__version__",
]
