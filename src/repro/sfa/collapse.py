"""ATPG-style fault collapsing over a FADES faultload.

Two faults are *equivalent* when they provoke the identical sequence of
configuration effects on the device — same site, same rewrite, same
activation window — so every downstream observation (output trace,
final state, first divergence) must coincide.  The campaign then
emulates one representative per equivalence class and attributes its
outcome to every member, exactly as classic ATPG fault collapsing
simulates one fault per equivalence class.

The signatures mirror :class:`repro.core.injector.FadesInjector`'s
dispatch precisely:

* **bit-flips on flip-flops** collapse across mechanism (LSR and GSR
  produce the same presented flip) and across duration (a bit-flip's
  removal is a no-op), keyed by ``(ff, start)``;
* **memory bit-flips** key by ``(block, addr, bit, start)``;
* **LUT rewrites** — pulses *and* valued indeterminations — key by the
  faulty truth table they install, optionally masked to the reachable
  entries (two different line inversions that agree on every reachable
  entry are indistinguishable), plus the activation window;
* **CB-input inversions** key by ``(ff, start, window)``;
* **forced flip-flops** (valued, non-oscillating indeterminations) key
  by ``(ff, value, start, window)``.

Faults that consume injector randomness (oscillating or unvalued
indeterminations), delay faults (their mechanism depends on routing
congestion state), multi-bit flips and any unknown model are never
collapsed — each stays a singleton.

Dominance (one fault's detection implying another's) is computed only
as reporting metadata: campaign attribution uses equivalence alone,
keeping the report math exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.faults import Fault, FaultModel, TargetKind
from ..core.injector import invert_lut_line, stuck_lut_line
from .observe import ObservabilityAnalysis

Signature = Tuple[object, ...]


@dataclass(frozen=True)
class FaultClass:
    """One equivalence class: emulate the representative, attribute to
    all members (faultload indices, representative included)."""

    signature: Signature
    representative: int
    members: Tuple[int, ...]

    @property
    def collapsed(self) -> Tuple[int, ...]:
        """Members whose emulation the representative replaces."""
        return tuple(index for index in self.members
                     if index != self.representative)


def activation_window(fault: Fault) -> int:
    """Capture edges inside the active window — the campaign's rule."""
    if fault.duration_cycles >= 1.0:
        return fault.whole_cycles
    return 1 if fault.straddles_edge else 0


def clamped_start(fault: Fault, cycles: int) -> int:
    """Injection cycle after the campaign's end-of-run clamp."""
    return min(fault.start_cycle, max(0, cycles - 1))


def behavioral_signature(fault: Fault, cycles: int,
                         analysis: Optional[ObservabilityAnalysis] = None,
                         ) -> Optional[Signature]:
    """Equivalence-class key for *fault*, or ``None`` when it must not
    be collapsed (randomised, routing-dependent or unknown behaviour).
    """
    if fault.extra_targets:
        return None
    start = clamped_start(fault, cycles)
    window = activation_window(fault)
    model = fault.model
    kind = fault.target.kind
    if model is FaultModel.BITFLIP:
        if kind is TargetKind.FF:
            return ("ff-flip", fault.target.index, start)
        if kind is TargetKind.MEMORY_BIT:
            return ("mem-flip", fault.target.index, fault.target.addr,
                    fault.target.bit, start)
        return None
    if model is FaultModel.PULSE and kind is TargetKind.LUT:
        return _lut_rewrite_signature(
            fault.target.index, "invert", fault.target.line, 0,
            start, window, fault.duration_cycles < 1.0, analysis)
    if model is FaultModel.PULSE and kind is TargetKind.CB_INPUT:
        return ("cb-invert", fault.target.index, start, window)
    if model is FaultModel.INDETERMINATION:
        if fault.value is None or fault.oscillate:
            # Consumes injector randomness; behaviour is seed-dependent.
            return None
        if kind is TargetKind.FF:
            return ("ff-force", fault.target.index, fault.value,
                    start, window)
        if kind is TargetKind.LUT:
            return _lut_rewrite_signature(
                fault.target.index, "stuck", fault.target.line,
                fault.value, start, window, False, analysis)
    return None


def _lut_rewrite_signature(lut_index: int, op: str, line: int, value: int,
                           start: int, window: int, sub_cycle: bool,
                           analysis: Optional[ObservabilityAnalysis],
                           ) -> Optional[Signature]:
    """Key a LUT truth-table rewrite by its *effective* faulty table.

    Without an analysis the raw rewritten table is used; with one, both
    tables are masked to the reachable entries first, merging rewrites
    that only disagree on dead entries.  A sub-cycle pulse performs one
    injection operation instead of two (different emulated cost), so it
    never shares a class with a whole-cycle pulse.
    """
    if analysis is None:
        return ("lutmod", lut_index, op, line, value, start, window,
                sub_cycle)
    lut = analysis.mapped.luts[lut_index]
    if line >= len(lut.ins):
        return None  # malformed target; leave it to the injector
    golden = lut.padded_tt()
    if op == "invert":
        faulty = invert_lut_line(golden, line)
    else:
        faulty = stuck_lut_line(golden, line, value)
    mask = analysis.reachable_mask(lut_index)
    return ("lutmod", lut_index, faulty & mask, start, window, sub_cycle)


def collapse_faultload(faults: Sequence[Fault], cycles: int,
                       analysis: Optional[ObservabilityAnalysis] = None,
                       ) -> List[FaultClass]:
    """Partition a faultload into equivalence classes.

    Every fault lands in exactly one class; uncollapsible faults form
    singletons.  The representative is the lowest faultload index, so a
    serial campaign meets it first and parallel attribution is
    deterministic.
    """
    by_signature: Dict[Signature, List[int]] = {}
    singletons: List[FaultClass] = []
    for index, fault in enumerate(faults):
        signature = behavioral_signature(fault, cycles, analysis)
        if signature is None:
            singletons.append(FaultClass(
                ("singleton", index), index, (index,)))
        else:
            by_signature.setdefault(signature, []).append(index)
    classes = [
        FaultClass(signature, members[0], tuple(members))
        for signature, members in by_signature.items()]
    classes.extend(singletons)
    classes.sort(key=lambda cls: cls.representative)
    return classes


def dominance_summary(classes: Sequence[FaultClass],
                      faults: Sequence[Fault],
                      analysis: ObservabilityAnalysis) -> Dict[str, int]:
    """Reporting metadata: how many LUT-fault classes sit behind a
    combinational post-dominator (their activation is graded by a
    single downstream net — the classic dominance relation).

    Never used for attribution; purely a measure of how much further a
    dominance-based collapse could squeeze the faultload.
    """
    try:
        ipdom = analysis.graph.immediate_post_dominators()
    except ValueError:  # combinational loops: dominance undefined
        return {"classes": len(classes), "dominated_lut_classes": 0}
    dominated = 0
    for cls in classes:
        fault = faults[cls.representative]
        if fault.target.kind is not TargetKind.LUT:
            continue
        out = analysis.mapped.luts[fault.target.index].out
        if ipdom.get(out) is not None:
            dominated += 1
    return {"classes": len(classes), "dominated_lut_classes": dominated}
