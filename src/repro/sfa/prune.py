"""Campaign pruning: resolve faults statically instead of emulating them.

:class:`StaticFaultAnalysis` combines every analysis in the package
into one planner.  Given a faultload it produces a :class:`PrunePlan`
naming (a) the faults whose outcome is *provably Silent* — they are
journalled directly, with a ``pruned`` marker, and never touch the
device — and (b) the equivalence classes whose members inherit their
representative's outcome (``collapsed`` marker).

Every rule errs on the side of emulating.  The rules, cheapest first:

``window0-noop``
    A sub-cycle transient whose active window covers no clock edge is
    injected and removed with no intervening cycle; for mechanisms that
    only touch configuration (LUT rewrites, CB-input inversion, delay
    routing) the device provably returns to golden before the workload
    advances.  FF indeterminations are *excluded*: asserting the LSR
    line forces the flip-flop's state immediately, which removal does
    not undo.
``dead-lut-entry``
    The faulty truth table agrees with the golden one on every entry
    reachable under golden-run constants and tied inputs — the rewrite
    can never change the LUT's output (sound even though the masks come
    from the golden run, because this LUT is the only fault site).
``washout``
    The corruption's influence set — followed through the FF-to-FF
    successor relation — touches no primary output and no memory port,
    and provably goes extinct before the end of the run.
``delay-slack``
    A fan-out delay whose worst-case extra propagation delay is below
    the timing slack of every combinationally reachable flip-flop
    endpoint: no new setup violation, hence no behavioural change at
    all (the device applies delay violations at FF capture only).
``workload-silent``
    Exact difference simulation of a single bit-flip against the
    recorded golden net histories (:func:`repro.sfa.observe.resolve_flip`)
    proves every difference dies out without reaching an output.

The planner only trusts semantic rules (constants, washout, workload)
when the golden configuration is ``trusted`` — no timing-violating
flip-flops and no broken nets, mirroring the guards on the compiled
backend.  When ``restrict_rng_free`` is set (serial campaigns share
one injector RNG stream across faults), faults whose injection would
consume randomness are never skipped, so the RNG stream — and with it
every later experiment — stays exactly as in an unpruned run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # type-only: sfa has no runtime fpga dependency
    from ..fpga.timing import TimingAnalysis

from ..core.faults import Fault, FaultModel, TargetKind
from ..core.injector import invert_lut_line, stuck_lut_line
from ..obs.metrics import counter
from ..synth.mapped import MappedNetlist
from .collapse import (FaultClass, activation_window, clamped_start,
                       collapse_faultload)
from .graph import StructuralGraph
from .observe import (DEFAULT_EVAL_BUDGET, ObservabilityAnalysis,
                      WorkloadProfile, resolve_flip)

_PRUNED = counter("faults_pruned_total",
                  "Faults statically resolved as Silent, by rule")
_CLASSES = counter("fault_classes_total",
                   "Fault equivalence classes in planned campaigns")

#: Margin below which timing slack is not trusted to absorb a delay.
SLACK_EPSILON = 1e-9


def rng_free(fault: Fault) -> bool:
    """True when preparing and ticking *fault* draws no injector RNG.

    Mirrors the injector: only indeterminations draw — at preparation
    when no value was generated, and per-tick when oscillating across
    two or more active cycles.
    """
    if fault.model is not FaultModel.INDETERMINATION:
        return True
    if fault.value is None:
        return False
    return not (fault.oscillate and activation_window(fault) >= 2)


@dataclass
class PrunePlan:
    """The planner's verdict over one faultload."""

    cycles: int
    #: Faultload index -> rule that proved the fault Silent.
    pruned: Dict[int, str] = field(default_factory=dict)
    #: Equivalence classes over the *whole* faultload (singletons too).
    classes: List[FaultClass] = field(default_factory=list)

    @property
    def collapsed(self) -> Dict[int, int]:
        """Member index -> representative index, for members of
        un-pruned multi-fault classes (the ones needing attribution)."""
        attribution: Dict[int, int] = {}
        for cls in self.classes:
            if cls.representative in self.pruned:
                continue
            for member in cls.collapsed:
                attribution[member] = cls.representative
        return attribution

    def survivors(self) -> List[int]:
        """Indices the campaign must actually emulate, in order."""
        skip = set(self.pruned)
        skip.update(self.collapsed)
        total = sum(len(cls.members) for cls in self.classes)
        return [index for index in range(total) if index not in skip]

    def stats(self) -> Dict[str, int]:
        rules: Dict[str, int] = {}
        for rule in self.pruned.values():
            rules[rule] = rules.get(rule, 0) + 1
        return {
            "faults": sum(len(cls.members) for cls in self.classes),
            "pruned": len(self.pruned),
            "collapsed": len(self.collapsed),
            "classes": len(self.classes),
            **{f"rule:{name}": count for name, count in sorted(rules.items())},
        }


class StaticFaultAnalysis:
    """All static analyses over one design + workload, lazily built."""

    def __init__(self, mapped: MappedNetlist, cycles: int,
                 inputs: Optional[Dict[str, int]] = None,
                 timing: Optional["TimingAnalysis"] = None,
                 trusted: bool = True) -> None:
        self.mapped = mapped
        self.cycles = cycles
        self.inputs = dict(inputs or {})
        self.timing = timing
        self.trusted = trusted
        self._graph: Optional[StructuralGraph] = None
        self._analysis: Optional[ObservabilityAnalysis] = None
        self._profile: Optional[WorkloadProfile] = None

    # -- lazy layers ---------------------------------------------------
    @property
    def graph(self) -> StructuralGraph:
        if self._graph is None:
            self._graph = StructuralGraph.from_design(self.mapped)
        return self._graph

    @property
    def analysis(self) -> ObservabilityAnalysis:
        if self._analysis is None:
            self._analysis = ObservabilityAnalysis(
                self.mapped, self.graph, assume_inputs=self.inputs)
        return self._analysis

    @property
    def profile(self) -> WorkloadProfile:
        if self._profile is None:
            self._profile = WorkloadProfile.record(
                self.mapped, self.cycles, self.inputs)
        return self._profile

    # -- planning ------------------------------------------------------
    def plan(self, faults: Sequence[Fault], *,
             restrict_rng_free: bool = False,
             collapse: bool = True,
             use_workload: bool = True,
             eval_budget: int = DEFAULT_EVAL_BUDGET) -> PrunePlan:
        """Classify every fault as pruned, collapsed or to-emulate.

        A pruned verdict on a class representative extends to every
        member — they are behaviourally identical by construction.
        Combinational loops disable all semantic rules (the reference
        simulator's settled values are undefined there), leaving only
        collapsing by literal identity.
        """
        trusted = self.trusted and not self.graph.combinational_loops()
        if collapse:
            classes = collapse_faultload(
                faults, self.cycles, self.analysis if trusted else None)
        else:
            classes = [FaultClass(("singleton", i), i, (i,))
                       for i in range(len(faults))]
        plan = PrunePlan(cycles=self.cycles, classes=classes)
        for cls in classes:
            fault = faults[cls.representative]
            if restrict_rng_free and not all(
                    rng_free(faults[member]) for member in cls.members):
                continue
            rule = self._prune_rule(fault, trusted, use_workload,
                                    eval_budget)
            if rule is not None:
                for member in cls.members:
                    plan.pruned[member] = rule
        for name, count in plan.stats().items():
            if name.startswith("rule:"):
                _PRUNED.inc(count, rule=name[len("rule:"):])
        _CLASSES.inc(len(classes))
        return plan

    # -- rules ---------------------------------------------------------
    def _prune_rule(self, fault: Fault, trusted: bool,
                    use_workload: bool, eval_budget: int) -> Optional[str]:
        if fault.extra_targets:
            return None
        model = fault.model
        kind = fault.target.kind
        start = clamped_start(fault, self.cycles)
        window = activation_window(fault)
        if window == 0 and model.transient:
            config_only = (
                model is FaultModel.PULSE
                or model is FaultModel.DELAY
                or (model is FaultModel.INDETERMINATION
                    and kind is TargetKind.LUT))
            if config_only:
                return "window0-noop"
        if not trusted:
            return None
        if model is FaultModel.DELAY:
            return self._delay_below_slack(fault)
        if kind is TargetKind.LUT and model in (
                FaultModel.PULSE, FaultModel.INDETERMINATION):
            return self._lut_transient(fault, start, window,
                                       use_workload)
        if model is FaultModel.PULSE and kind is TargetKind.CB_INPUT:
            if self._ff_washout(fault.target.index, start, window):
                return "washout"
            return None
        if model is FaultModel.INDETERMINATION and kind is TargetKind.FF:
            # Even at window 0 the LSR assertion forces the state for
            # one presented cycle.
            if self._ff_washout(fault.target.index, start, max(1, window)):
                return "washout"
            return None
        if model is FaultModel.BITFLIP:
            return self._bitflip(fault, start, use_workload, eval_budget)
        return None

    def _lut_transient(self, fault: Fault, start: int, window: int,
                       use_workload: bool) -> Optional[str]:
        lut_index = fault.target.index
        lut = self.mapped.luts[lut_index]
        line = fault.target.line if fault.target.line is not None else -1
        if line >= len(lut.ins):
            return None  # the injector will reject it properly
        golden = lut.padded_tt()
        if fault.model is FaultModel.PULSE:
            candidates = [invert_lut_line(golden, line)]
        elif fault.value is not None and not fault.oscillate:
            candidates = [stuck_lut_line(golden, line, fault.value)]
        else:
            # Randomised level: invisible only if both levels are.
            candidates = [stuck_lut_line(golden, line, 0),
                          stuck_lut_line(golden, line, 1)]
        if all(self.analysis.lut_change_invisible(lut_index, tt)
               for tt in candidates):
            return "dead-lut-entry"
        if self.analysis.comb_effect_only(lut.out):
            return "washout"
        seeds = self.graph.affected_ffs(lut.out)
        cone = self.graph.comb_fanout(lut.out)
        cone.add(lut.out)
        if cone & self.graph.output_nets:
            return None
        if any(net in self.graph.bram_readers for net in cone):
            return None
        remaining = max(0, self.cycles - (start + window))
        if self.analysis.washed_out(seeds, window, remaining):
            return "washout"
        return None

    def _ff_washout(self, ff_index: int, start: int, window: int) -> bool:
        remaining = max(0, self.cycles - (start + window))
        return self.analysis.washed_out({ff_index}, window, remaining)

    def _delay_below_slack(self, fault: Fault) -> Optional[str]:
        if self.timing is None:
            return None
        params = self.timing.params
        mechanism = fault.mechanism or (
            "fanout" if fault.magnitude_ns <= 60 * params.t_load
            else "reroute")
        if mechanism != "fanout":
            return None  # reroutes can slow the path arbitrarily
        if self.timing.violating_ffs():
            return None
        loads = min(max(1, round(fault.magnitude_ns / params.t_load)), 192)
        extra = loads * params.t_load
        endpoints = self.graph.affected_ffs(fault.target.index)
        if all(self.timing.ff_slack(ff) > extra + SLACK_EPSILON
               for ff in endpoints):
            return "delay-slack"
        return None

    def _bitflip(self, fault: Fault, start: int, use_workload: bool,
                 eval_budget: int) -> Optional[str]:
        kind = fault.target.kind
        if kind is TargetKind.FF:
            if self._ff_washout(fault.target.index, start, 1):
                return "washout"
            if use_workload:
                verdict = resolve_flip(
                    self.profile, self.graph, start, self.cycles,
                    ff_index=fault.target.index, eval_budget=eval_budget)
                if verdict:
                    return "workload-silent"
            return None
        if kind is TargetKind.MEMORY_BIT and use_workload:
            block = fault.target.index
            bram = self.mapped.brams[block]
            addr, bit = fault.target.addr, fault.target.bit
            if addr is None or bit is None or not 0 <= addr < bram.depth:
                return None
            verdict = resolve_flip(
                self.profile, self.graph, start, self.cycles,
                mem_flip=(block, addr, bit), eval_budget=eval_budget)
            if verdict:
                return "workload-silent"
        return None


def build_plan(mapped: MappedNetlist, faults: Sequence[Fault],
               cycles: int, inputs: Optional[Dict[str, int]] = None,
               timing: Optional["TimingAnalysis"] = None,
               trusted: bool = True,
               restrict_rng_free: bool = False) -> PrunePlan:
    """One-call convenience wrapper used by the campaign layer."""
    sfa = StaticFaultAnalysis(mapped, cycles, inputs=inputs,
                              timing=timing, trusted=trusted)
    return sfa.plan(faults, restrict_rng_free=restrict_rng_free)
