"""Netlist lint: machine-readable structural findings with severities.

``repro lint <design>`` runs every check over a bundled design (or all
of them) and emits findings as a table or JSON.  Severities:

* ``error`` — the design is structurally broken for emulation:
  combinational loops (the settled-value simulators mis-simulate
  them), or an invariant violation caught by the IR's own ``check()``.
* ``warning`` — almost certainly a design bug: floating primary
  inputs, dead logic (cells feeding no observable sink).
* ``info`` — worth knowing when planning campaigns: truth-table
  entries unreachable under constant/tied inputs (un-gradable fault
  sites), outputs with a combinational input-to-output feedthrough
  path (no register isolates the pin from the pads).

The CI gate is ``repro lint --all --fail-on error``: bundled designs
must stay loop-free and invariant-clean, while warnings stay visible
in the JSON artifact without breaking the build.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..errors import ReproError
from ..hdl.netlist import Netlist
from ..synth.mapped import MappedNetlist
from .graph import StructuralGraph
from .observe import ObservabilityAnalysis

SEVERITIES = ("info", "warning", "error")

Design = Union[Netlist, MappedNetlist]


@dataclass
class Finding:
    """One lint finding, anchored to nets of the analysed design."""

    check: str
    severity: str
    message: str
    nets: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {"check": self.check, "severity": self.severity,
                "message": self.message, "nets": list(self.nets)}


@dataclass
class LintReport:
    """All findings over one design."""

    design: str
    findings: List[Finding] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            counts[finding.severity] += 1
        return counts

    def worst(self) -> Optional[str]:
        present = {finding.severity for finding in self.findings}
        for severity in reversed(SEVERITIES):
            if severity in present:
                return severity
        return None

    def fails(self, threshold: str) -> bool:
        """Whether the report trips a ``--fail-on`` gate."""
        worst = self.worst()
        if worst is None:
            return False
        return SEVERITIES.index(worst) >= SEVERITIES.index(threshold)

    def to_dict(self) -> Dict[str, object]:
        return {"design": self.design,
                "counts": self.counts(),
                "findings": [finding.to_dict()
                             for finding in self.findings]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f"lint {self.design}: " + ", ".join(
            f"{count} {severity}" for severity, count
            in sorted(self.counts().items()) if count)]
        if not self.findings:
            lines[0] = f"lint {self.design}: clean"
        for finding in sorted(
                self.findings,
                key=lambda f: -SEVERITIES.index(f.severity)):
            lines.append(f"  [{finding.severity:<7}] "
                         f"{finding.check}: {finding.message}")
        return "\n".join(lines)


def _net_names(design: Design, nets: Sequence[int]) -> str:
    """Human-readable labels for nets, via the design's name map."""
    of_net: Dict[int, str] = {}
    for name, name_nets in design.names.items():
        for position, net in enumerate(name_nets):
            of_net.setdefault(
                net, f"{name}[{position}]" if len(name_nets) > 1 else name)
    labels = [of_net.get(net, f"n{net}") for net in sorted(nets)]
    if len(labels) > 6:
        labels = labels[:6] + [f"... +{len(labels) - 6}"]
    return ", ".join(labels)


def lint_design(design: Design, name: str = "") -> LintReport:
    """Run every structural check over one design (either IR level)."""
    report = LintReport(design=name or design.name)

    try:
        design.check()
    except ReproError as error:
        report.findings.append(Finding(
            "invariants", "error", str(error)))
        return report  # the graph below assumes a well-formed design

    graph = StructuralGraph.from_design(design)
    for loop in graph.combinational_loops():
        report.findings.append(Finding(
            "comb-loop", "error",
            f"combinational loop through {_net_names(design, loop)}",
            nets=list(loop)))
    if graph.combinational_loops():
        return report  # downstream analyses assume a DAG

    for net in graph.floating_inputs():
        report.findings.append(Finding(
            "floating-input", "warning",
            f"primary input {_net_names(design, [net])} drives nothing",
            nets=[net]))
    dead = [graph.cells[index][0] for index in graph.dead_cells()]
    if dead:
        report.findings.append(Finding(
            "dead-logic", "warning",
            f"{len(dead)} cell(s) feed no output, flip-flop or memory: "
            f"{_net_names(design, dead)}", nets=dead))
    for net in graph.unregistered_outputs():
        report.findings.append(Finding(
            "unregistered-output", "info",
            f"output {_net_names(design, [net])} has a combinational "
            "path from a primary input (no register isolates the pin)",
            nets=[net]))

    if isinstance(design, MappedNetlist):
        analysis = ObservabilityAnalysis(design, graph)
        dead_entries = 0
        sites: List[int] = []
        for index in range(len(design.luts)):
            lines = analysis.dead_entry_lines(index)
            if lines:
                dead_entries += len(lines)
                sites.append(design.luts[index].out)
        if dead_entries:
            report.findings.append(Finding(
                "dead-lut-entry", "info",
                f"{dead_entries} truth-table entr(ies) unreachable under "
                f"constant or tied inputs across {len(sites)} LUT(s): "
                f"{_net_names(design, sites)}", nets=sites))
    return report


# ----------------------------------------------------------------------
# bundled designs registry (lazy imports keep `repro lint` cheap)
# ----------------------------------------------------------------------
def _mc8051_netlist() -> Netlist:
    from ..mc8051 import build_mc8051, quick_bubblesort
    return build_mc8051(quick_bubblesort().rom).netlist


def bundled_designs() -> Dict[str, Callable[[], Netlist]]:
    """Every design shipped with the reproduction, by lint name."""
    from .. import designs

    return {
        "counter": designs.counter,
        "gray": designs.gray_counter,
        "lfsr": designs.lfsr,
        "majority": designs.majority_voter,
        "shift": designs.shift_register,
        "tmr": designs.tmr_counter,
        "fir": designs.fir_filter,
        "uart": designs.uart_tx,
        "mc8051": _mc8051_netlist,
    }


def lint_bundled(names: Optional[Sequence[str]] = None,
                 mapped: bool = True) -> List[LintReport]:
    """Lint bundled designs by name (all of them when *names* is None).

    With ``mapped`` set, each design is also synthesised and the mapped
    netlist linted separately — the truth-table checks only exist at
    that level.
    """
    registry = bundled_designs()
    selected = list(names) if names else sorted(registry)
    reports: List[LintReport] = []
    for name in selected:
        try:
            builder = registry[name]
        except KeyError:
            raise ReproError(
                f"unknown design {name!r}; bundled: "
                f"{', '.join(sorted(registry))}") from None
        netlist = builder()
        reports.append(lint_design(netlist, name))
        if mapped:
            from ..synth import synthesize
            result = synthesize(netlist)
            reports.append(lint_design(result.mapped, f"{name}:mapped"))
    return reports
