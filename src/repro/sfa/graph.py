"""Structural graph over a design: the substrate of all static analyses.

A :class:`StructuralGraph` gives one uniform view of either IR level —
the gate-level :class:`~repro.hdl.netlist.Netlist` or the mapped
:class:`~repro.synth.mapped.MappedNetlist` — as a directed graph whose
nodes are nets and whose edges run from every combinational cell's
inputs to its output.  State elements (flip-flops, memory blocks) and
the primary ports delimit the combinational regions.

On top of the adjacency it provides the classic structural analyses the
rest of :mod:`repro.sfa` builds on:

* **topological levels** — combinational depth per net;
* **SCC detection** — combinational loops (iterative Tarjan, so deep
  designs cannot blow the recursion limit);
* **cone extraction** — transitive combinational fan-in / fan-out;
* **observability closure** — the nets from which a primary output is
  (sequentially) reachable, the cheap upper bound every prune rule
  starts from;
* **post-dominators** — for each net, the unique combinational net every
  path to an observable sink must cross (fault-collapsing theory's
  dominance relation).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Union

from ..hdl.netlist import CONST0, CONST1, Netlist
from ..synth.mapped import MappedNetlist

#: One combinational cell: output net, input nets (constants included).
Cell = Tuple[int, Tuple[int, ...]]

Design = Union[Netlist, MappedNetlist]


class StructuralGraph:
    """Net-level adjacency of one design plus derived analyses.

    Build one with :meth:`from_design`; every analysis is computed
    lazily and cached, so constructing the graph is cheap.
    """

    def __init__(self, n_nets: int, cells: Sequence[Cell],
                 ff_pairs: Sequence[Tuple[int, int]],
                 bram_port_nets: Sequence[Tuple[int, ...]],
                 bram_rdata_nets: Sequence[Tuple[int, ...]],
                 input_nets: Iterable[int],
                 output_nets: Iterable[int]) -> None:
        self.n_nets = n_nets
        #: Combinational cells (LUTs or gates) in emission order.
        self.cells: List[Cell] = list(cells)
        #: (q, d) net pair per flip-flop, in flip-flop index order.
        self.ff_pairs: List[Tuple[int, int]] = list(ff_pairs)
        #: Per memory block: the nets feeding its ports (addresses,
        #: write data, write enable) — observable sinks, like FF data
        #: inputs, because they can change architectural state.
        self.bram_port_nets: List[Tuple[int, ...]] = list(bram_port_nets)
        #: Per memory block: its registered read-data nets (state
        #: outputs, level 0 like FF outputs).
        self.bram_rdata_nets: List[Tuple[int, ...]] = list(bram_rdata_nets)
        self.input_nets: Set[int] = set(input_nets)
        self.output_nets: Set[int] = set(output_nets)

        #: net -> index of the cell driving it (combinational nets only).
        self.cell_of_net: Dict[int, int] = {}
        #: net -> indices of the cells reading it.
        self.readers: List[List[int]] = [[] for _ in range(n_nets)]
        for index, (out, ins) in enumerate(self.cells):
            self.cell_of_net[out] = index
            for net in ins:
                if net not in (CONST0, CONST1):
                    self.readers[net].append(index)
        #: net -> indices of the flip-flops whose D input reads it.
        self.ff_readers: Dict[int, List[int]] = {}
        for ff_index, (_q, d) in enumerate(self.ff_pairs):
            self.ff_readers.setdefault(d, []).append(ff_index)
        #: net -> indices of the memory blocks with a port reading it.
        self.bram_readers: Dict[int, List[int]] = {}
        for block, ports in enumerate(self.bram_port_nets):
            for net in ports:
                if net not in (CONST0, CONST1):
                    block_list = self.bram_readers.setdefault(net, [])
                    if not block_list or block_list[-1] != block:
                        block_list.append(block)

        self._levels: Optional[List[int]] = None
        self._loops: Optional[List[List[int]]] = None
        self._comb_observable: Optional[Set[int]] = None
        self._observable: Optional[Set[int]] = None
        self._ff_successors: Optional[List[Set[int]]] = None
        self._ipdom: Optional[Dict[int, Optional[int]]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_design(cls, design: Design) -> "StructuralGraph":
        """Build the graph from either IR level."""
        if isinstance(design, MappedNetlist):
            cells: List[Cell] = [(lut.out, tuple(lut.ins))
                                 for lut in design.luts]
        else:
            cells = [(gate.out, tuple(gate.ins)) for gate in design.gates]
        ff_pairs = [(ff.q, ff.d) for ff in design.ffs] \
            if isinstance(design, MappedNetlist) \
            else [(dff.q, dff.d) for dff in design.dffs]
        brams = design.brams
        ports = [tuple(bram.raddr) + (() if bram.rom else
                                      (bram.we,) + tuple(bram.waddr)
                                      + tuple(bram.wdata))
                 for bram in brams]
        rdata = [tuple(bram.rdata) for bram in brams]
        inputs = [net for nets in design.inputs.values() for net in nets]
        outputs = [net for nets in design.outputs.values() for net in nets]
        return cls(design.n_nets, cells, ff_pairs, ports, rdata,
                   inputs, outputs)

    # ------------------------------------------------------------------
    # sinks and sources
    # ------------------------------------------------------------------
    def sink_nets(self) -> Set[int]:
        """Nets whose value is architecturally observable *this cycle*:
        primary outputs, flip-flop D inputs and memory-block ports."""
        sinks = set(self.output_nets)
        sinks.update(self.ff_readers)
        sinks.update(self.bram_readers)
        return sinks

    def level0_nets(self) -> Set[int]:
        """Nets produced outside combinational logic (cycle sources)."""
        nets = {CONST0, CONST1}
        nets.update(self.input_nets)
        nets.update(q for q, _d in self.ff_pairs)
        for rdata in self.bram_rdata_nets:
            nets.update(rdata)
        return nets

    # ------------------------------------------------------------------
    # levels
    # ------------------------------------------------------------------
    def levels(self) -> List[int]:
        """Combinational depth per net (level 0 for state/inputs).

        Requires a loop-free design; call :meth:`combinational_loops`
        first when the input is untrusted.
        """
        if self._levels is None:
            level = [0] * self.n_nets
            for out, ins in self.cells:
                level[out] = 1 + max((level[net] for net in ins), default=0)
            self._levels = level
        return self._levels

    # ------------------------------------------------------------------
    # combinational loops (iterative Tarjan SCC over cells)
    # ------------------------------------------------------------------
    def combinational_loops(self) -> List[List[int]]:
        """Strongly connected cell groups, as lists of output nets.

        The netlist builders emit cells topologically, but both IRs are
        mutable — a transform that rewires ``ins`` after construction
        can close a combinational cycle, which the device model would
        mis-simulate.  Every SCC of two or more cells (or a cell reading
        its own output) is one loop.
        """
        if self._loops is not None:
            return self._loops
        n = len(self.cells)
        # Successor cells of each cell: the readers of its output net.
        index_of: List[int] = [-1] * n
        low: List[int] = [0] * n
        on_stack = [False] * n
        stack: List[int] = []
        loops: List[List[int]] = []
        counter = 0
        for root in range(n):
            if index_of[root] != -1:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child = work[-1]
                if child == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack[node] = True
                successors = self.readers[self.cells[node][0]]
                if child < len(successors):
                    work[-1] = (node, child + 1)
                    succ = successors[child]
                    if index_of[succ] == -1:
                        work.append((succ, 0))
                    elif on_stack[succ]:
                        low[node] = min(low[node], index_of[succ])
                else:
                    work.pop()
                    if work:
                        parent = work[-1][0]
                        low[parent] = min(low[parent], low[node])
                    if low[node] == index_of[node]:
                        component: List[int] = []
                        while True:
                            member = stack.pop()
                            on_stack[member] = False
                            component.append(member)
                            if member == node:
                                break
                        self_loop = (len(component) == 1 and component[0] in
                                     self.readers[self.cells[
                                         component[0]][0]])
                        if len(component) > 1 or self_loop:
                            loops.append(sorted(
                                self.cells[c][0] for c in component))
        self._loops = loops
        return loops

    # ------------------------------------------------------------------
    # cones
    # ------------------------------------------------------------------
    def comb_fanout(self, net: int) -> Set[int]:
        """Nets combinationally reachable from *net* (excl. *net*)."""
        seen: Set[int] = set()
        frontier = [net]
        while frontier:
            current = frontier.pop()
            for cell in self.readers[current]:
                out = self.cells[cell][0]
                if out not in seen:
                    seen.add(out)
                    frontier.append(out)
        return seen

    def comb_fanin(self, net: int) -> Set[int]:
        """Nets in the combinational input cone of *net* (excl. *net*)."""
        seen: Set[int] = set()
        frontier = [net]
        while frontier:
            cell = self.cell_of_net.get(frontier.pop())
            if cell is None:
                continue
            for source in self.cells[cell][1]:
                if source not in seen and source not in (CONST0, CONST1):
                    seen.add(source)
                    frontier.append(source)
        return seen

    def affected_ffs(self, net: int) -> Set[int]:
        """Flip-flops whose D input cone contains *net*."""
        cone = self.comb_fanout(net)
        cone.add(net)
        affected: Set[int] = set()
        for reached in cone:
            affected.update(self.ff_readers.get(reached, ()))
        return affected

    # ------------------------------------------------------------------
    # observability closure
    # ------------------------------------------------------------------
    def comb_observable_nets(self) -> Set[int]:
        """Nets from which some sink is *combinationally* reachable."""
        if self._comb_observable is None:
            observable = set(self.sink_nets())
            for out, ins in reversed(self.cells):
                if out in observable:
                    observable.update(
                        net for net in ins
                        if net not in (CONST0, CONST1))
            self._comb_observable = observable
        return self._comb_observable

    def observable_nets(self) -> Set[int]:
        """Nets from which a primary output is reachable in *any* number
        of cycles (through flip-flops and memory blocks).

        A fault confined to nets outside this closure can never alter an
        output sample — though it may still alter final state, so prune
        rules must separately bound its persistence.
        """
        if self._observable is not None:
            return self._observable
        # Backward closure from the primary outputs across cycle
        # boundaries: reaching a FF's Q (or a memory read port) pulls in
        # the matching D input (or the block's port nets) one cycle
        # earlier.
        observable: Set[int] = set(self.output_nets)
        frontier = list(self.output_nets)

        def visit(net: int) -> None:
            if net not in observable and net not in (CONST0, CONST1):
                observable.add(net)
                frontier.append(net)

        seen_ffs: Set[int] = set()
        seen_blocks: Set[int] = set()
        q_to_ff: Dict[int, int] = {q: i
                                   for i, (q, _d) in enumerate(self.ff_pairs)}
        rdata_to_block: Dict[int, int] = {}
        for block, rdata in enumerate(self.bram_rdata_nets):
            for net in rdata:
                rdata_to_block[net] = block
        while frontier:
            net = frontier.pop()
            cell = self.cell_of_net.get(net)
            if cell is not None:
                for source in self.cells[cell][1]:
                    visit(source)
            ff_index = q_to_ff.get(net)
            if ff_index is not None and ff_index not in seen_ffs:
                seen_ffs.add(ff_index)
                visit(self.ff_pairs[ff_index][1])
            block = rdata_to_block.get(net)
            if block is not None and block not in seen_blocks:
                seen_blocks.add(block)
                for port in self.bram_port_nets[block]:
                    visit(port)
        self._observable = observable
        return observable

    # ------------------------------------------------------------------
    # sequential closure
    # ------------------------------------------------------------------
    def ff_successors(self) -> List[Set[int]]:
        """Per flip-flop: the flip-flops one cycle downstream of its Q."""
        if self._ff_successors is None:
            successors: List[Set[int]] = []
            for q, _d in self.ff_pairs:
                successors.append(self.affected_ffs(q))
            self._ff_successors = successors
        return self._ff_successors

    # ------------------------------------------------------------------
    # post-dominators
    # ------------------------------------------------------------------
    def immediate_post_dominators(self) -> Dict[int, Optional[int]]:
        """Immediate post-dominator per combinational net.

        Net *d* post-dominates net *n* when every combinational path
        from *n* to an observable sink passes through *d*; the immediate
        post-dominator is the closest such net.  ``None`` marks nets
        whose paths reach a sink directly (or fan out to several sinks
        with no common gate) — the virtual sink is their only
        post-dominator.  Fault collapsing uses this relation: an
        activation that provably propagates to *n* is graded by what
        happens at *d*.
        """
        if self._ipdom is not None:
            return self._ipdom
        if self.combinational_loops():
            raise ValueError(
                "post-dominators undefined on designs with "
                "combinational loops")
        sinks = self.sink_nets()
        levels = self.levels()
        order = sorted(self.cell_of_net, key=lambda net: levels[net])
        # Post-dominator sets as int bitmasks over net ids; the virtual
        # sink is implicit (every set reaches it).  Reverse-topological
        # single pass is exact on a DAG.
        postdom: Dict[int, int] = {}
        full = (1 << self.n_nets) - 1
        for net in reversed(order):
            if net in sinks:
                # Paths may leave through the sink directly; only the
                # net itself is guaranteed on every path.
                postdom[net] = 1 << net
                continue
            meet = full
            succs = [self.cells[cell][0] for cell in self.readers[net]]
            if not succs:
                postdom[net] = 1 << net
                continue
            for succ in succs:
                meet &= postdom.get(succ, 1 << succ)
            postdom[net] = meet | (1 << net)
        ipdom: Dict[int, Optional[int]] = {}
        for net in order:
            candidates = postdom[net] & ~(1 << net)
            best: Optional[int] = None
            bits = candidates
            while bits:
                low = bits & -bits
                bits ^= low
                candidate = low.bit_length() - 1
                if best is None or levels[candidate] < levels[best]:
                    best = candidate
            ipdom[net] = best
        self._ipdom = ipdom
        return ipdom

    # ------------------------------------------------------------------
    def dead_cells(self) -> List[int]:
        """Cells whose output transitively feeds no sink (dead logic)."""
        observable = self.comb_observable_nets()
        live = set(observable)
        # A cell is live if its output reaches a sink through any path,
        # including through downstream state elements: use the full
        # sequential closure so feedback registers don't look dead.
        sequential = self.observable_nets()
        live.update(sequential)
        return [index for index, (out, _ins) in enumerate(self.cells)
                if out not in live]

    def floating_inputs(self) -> List[int]:
        """Declared primary-input nets nothing reads."""
        floating = []
        for net in sorted(self.input_nets):
            if (not self.readers[net] and net not in self.ff_readers
                    and net not in self.bram_readers
                    and net not in self.output_nets):
                floating.append(net)
        return floating

    def unregistered_outputs(self) -> List[int]:
        """Output nets whose cone reaches a primary input combinationally
        (no flip-flop or memory on some input-to-output path)."""
        unregistered = []
        for net in sorted(self.output_nets):
            cone = self.comb_fanin(net)
            cone.add(net)
            if cone & self.input_nets:
                unregistered.append(net)
        return unregistered


def sequential_depth(graph: StructuralGraph, ff_index: int,
                     limit: int) -> Optional[int]:
    """Cycles until a flip-flop's influence set goes extinct, if ever.

    Follows the FF-to-FF successor relation from *ff_index*; returns the
    number of cycles after which no flip-flop can still be corrupted, or
    ``None`` when the influence set survives past *limit* cycles (e.g.
    feedback keeps it alive indefinitely).
    """
    successors = graph.ff_successors()
    current = {ff_index}
    for depth in range(limit + 1):
        if not current:
            return depth
        nxt: Set[int] = set()
        for ff in current:
            nxt |= successors[ff]
        if nxt == current and current:
            # Fixed point with survivors: never extinct.
            return None
        current = nxt
    return None
