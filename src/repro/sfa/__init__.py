"""Static fault analysis: prove fault outcomes without emulating them.

Most faults in a FADES campaign are Silent, and many provably so before
any emulation happens — the flipped state washes out of every
observability cone, the rewritten truth-table entry is unreachable, or
the injected delay sits inside the timing slack.  This package derives
those proofs from the netlist (and optionally the recorded golden
workload) and feeds them back into the campaign as pruning and
ATPG-style fault collapsing, plus a structural lint gate for the
design zoo:

* :mod:`repro.sfa.graph` — structural graph, levels, loops, cones,
  observability closures, post-dominators;
* :mod:`repro.sfa.observe` — stuck-value propagation, dead LUT entries,
  sequential washout, and the workload-aware difference simulator;
* :mod:`repro.sfa.collapse` — behavioural equivalence classes;
* :mod:`repro.sfa.prune` — the campaign planner combining all rules;
* :mod:`repro.sfa.lint` — ``repro lint`` findings with severities.
"""

from .collapse import (FaultClass, activation_window, behavioral_signature,
                       clamped_start, collapse_faultload, dominance_summary)
from .graph import StructuralGraph, sequential_depth
from .lint import (Finding, LintReport, bundled_designs, lint_bundled,
                   lint_design)
from .observe import (ConstantPropagation, ObservabilityAnalysis,
                      WorkloadProfile, resolve_flip)
from .prune import PrunePlan, StaticFaultAnalysis, build_plan, rng_free

__all__ = [
    "ConstantPropagation",
    "FaultClass",
    "Finding",
    "LintReport",
    "ObservabilityAnalysis",
    "PrunePlan",
    "StaticFaultAnalysis",
    "StructuralGraph",
    "WorkloadProfile",
    "activation_window",
    "behavioral_signature",
    "build_plan",
    "bundled_designs",
    "clamped_start",
    "collapse_faultload",
    "dominance_summary",
    "lint_bundled",
    "lint_design",
    "resolve_flip",
    "rng_free",
    "sequential_depth",
]
