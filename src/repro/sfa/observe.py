"""Per-site observability: which faults can provably never be observed.

Two families of analysis live here, both consumed by the campaign
pruner (:mod:`repro.sfa.prune`) and the lint pass
(:mod:`repro.sfa.lint`):

* **Workload-independent** (:class:`ObservabilityAnalysis`) — stuck-value
  propagation over golden-run invariants, reachable truth-table entry
  masks per LUT (dead-LUT-bit detection), and sequential washout: a
  transient whose influence set goes extinct before the end of the run
  without ever touching an output or a memory port is Silent for *every*
  workload.
* **Workload-aware** (:class:`WorkloadProfile` / :func:`resolve_flip`) —
  an exact difference simulation of one bit-flip against the recorded
  golden net histories.  Only the dirty cone is re-evaluated each cycle,
  so resolving a fault costs a small fraction of an emulation run; the
  moment a difference reaches a primary output the analysis bails out
  (the fault *may* be a Failure — emulate it), and a fault is Silent
  only when every difference set is empty, exactly mirroring the
  Silent criterion of :func:`repro.core.classify.classify`.

Soundness of the truth-table masks deserves a note: the reachable-entry
mask is derived from golden-run constants, yet it is applied to *faulty*
configurations.  That is sound because the masked site is the only
fault site — the LUT's inputs keep their golden values for as long as
its own output has never deviated, and a fault that only touches masked
(unreachable) entries never makes the output deviate in the first place
(induction over cycles and topological order within a cycle).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..hdl.netlist import CONST0, CONST1
from ..synth.mapped import LUT_INPUTS, MappedNetlist
from .graph import StructuralGraph

#: Default cap on dirty-cone LUT evaluations per resolved fault.
DEFAULT_EVAL_BUDGET = 200_000


# ----------------------------------------------------------------------
# stuck-value propagation
# ----------------------------------------------------------------------
class ConstantPropagation:
    """Nets provably constant in every cycle of the golden run.

    Primary inputs are constants when their held values are supplied
    (the campaign applies its input vector at cycle 0 and holds it);
    flip-flops are constant when they start at ``init`` and their D
    input evaluates back to ``init`` under the constants — computed as a
    greatest fixed point (assume every FF constant, then retract until
    stable).  Memory read ports are never assumed constant.
    """

    def __init__(self, mapped: MappedNetlist,
                 assume_inputs: Optional[Dict[str, int]] = None) -> None:
        self.mapped = mapped
        base: Dict[int, int] = {CONST0: 0, CONST1: 1}
        if assume_inputs is not None:
            for name, nets in mapped.inputs.items():
                held = assume_inputs.get(name, 0)
                for position, net in enumerate(nets):
                    base[net] = (held >> position) & 1
        constant_ffs: Dict[int, int] = {
            index: ff.init for index, ff in enumerate(mapped.ffs)}
        while True:
            known = dict(base)
            for index, value in constant_ffs.items():
                known[mapped.ffs[index].q] = value
            for lut in mapped.luts:
                value = _eval_with_unknowns(lut.tt, lut.ins, known)
                if value is not None:
                    known[lut.out] = value
            retracted = [
                index for index, value in constant_ffs.items()
                if known.get(mapped.ffs[index].d) != value]
            if not retracted:
                self.known = known
                self.constant_ffs = constant_ffs
                return
            for index in retracted:
                del constant_ffs[index]


def _eval_with_unknowns(tt: int, ins: Sequence[int],
                        known: Dict[int, int]) -> Optional[int]:
    """Truth-table output when it is independent of all unknown inputs."""
    unknown = [position for position, net in enumerate(ins)
               if net not in known]
    base = 0
    for position, net in enumerate(ins):
        if known.get(net):
            base |= 1 << position
    result: Optional[int] = None
    for combo in range(1 << len(unknown)):
        index = base
        for offset, position in enumerate(unknown):
            if (combo >> offset) & 1:
                index |= 1 << position
        value = (tt >> index) & 1
        if result is None:
            result = value
        elif value != result:
            return None
    return result


# ----------------------------------------------------------------------
# observability analysis
# ----------------------------------------------------------------------
class ObservabilityAnalysis:
    """Workload-independent observability facts about one mapped design."""

    def __init__(self, mapped: MappedNetlist,
                 graph: Optional[StructuralGraph] = None,
                 assume_inputs: Optional[Dict[str, int]] = None) -> None:
        self.mapped = mapped
        self.graph = graph or StructuralGraph.from_design(mapped)
        self.constants = ConstantPropagation(mapped, assume_inputs)
        self._masks: Dict[int, int] = {}
        self._bram_port_set: Set[int] = set(self.graph.bram_readers)
        self._q_cone_clean: Dict[int, bool] = {}

    # -- truth-table entry reachability --------------------------------
    def reachable_mask(self, lut_index: int) -> int:
        """16-bit mask of reachable entries of the *padded* truth table.

        Entry *i* is reachable unless it disagrees with a constant
        input, sets a padding position (the substrate ties unused LUT
        inputs to constant 0), or assigns different values to two
        positions fed by the same net.
        """
        cached = self._masks.get(lut_index)
        if cached is not None:
            return cached
        lut = self.mapped.luts[lut_index]
        known = self.constants.known
        padded = list(lut.ins) + [CONST0] * (LUT_INPUTS - len(lut.ins))
        mask = 0
        for index in range(1 << LUT_INPUTS):
            reachable = True
            for position, net in enumerate(padded):
                bit = (index >> position) & 1
                value = known.get(net)
                if value is not None and value != bit:
                    reachable = False
                    break
                if padded.index(net) != position and \
                        (index >> padded.index(net)) & 1 != bit:
                    reachable = False
                    break
            if reachable:
                mask |= 1 << index
        self._masks[lut_index] = mask
        return mask

    def dead_entry_lines(self, lut_index: int) -> List[int]:
        """Unreachable entries of the truth table at its *actual* arity.

        Used by lint: entries a tied or constant input makes dead are
        wasted configuration bits (and un-gradable fault sites).
        """
        lut = self.mapped.luts[lut_index]
        known = self.constants.known
        dead = []
        for index in range(1 << len(lut.ins)):
            for position, net in enumerate(lut.ins):
                bit = (index >> position) & 1
                value = known.get(net)
                if value is not None and value != bit:
                    dead.append(index)
                    break
                first = lut.ins.index(net)
                if first != position and (index >> first) & 1 != bit:
                    dead.append(index)
                    break
        return dead

    def lut_change_invisible(self, lut_index: int,
                             faulty_padded_tt: int) -> bool:
        """True when a faulty truth table only differs on dead entries."""
        golden = self.mapped.luts[lut_index].padded_tt()
        return (faulty_padded_tt ^ golden) & \
            self.reachable_mask(lut_index) == 0

    # -- sequential washout --------------------------------------------
    def comb_effect_only(self, net: int) -> bool:
        """True when *net*'s combinational cone holds no state or output
        sink — a transient there evaporates the cycle it is removed."""
        cone = self.graph.comb_fanout(net)
        cone.add(net)
        if cone & self.graph.output_nets:
            return False
        for reached in cone:
            if reached in self.graph.ff_readers or \
                    reached in self._bram_port_set:
                return False
        return True

    def _q_cone_is_clean(self, ff_index: int) -> bool:
        """A flip-flop's Q cone touches no output and no memory port."""
        cached = self._q_cone_clean.get(ff_index)
        if cached is not None:
            return cached
        q = self.graph.ff_pairs[ff_index][0]
        cone = self.graph.comb_fanout(q)
        cone.add(q)
        clean = not (cone & self.graph.output_nets)
        if clean:
            for net in cone:
                if net in self._bram_port_set:
                    clean = False
                    break
        self._q_cone_clean[ff_index] = clean
        return clean

    def washed_out(self, seed_ffs: Iterable[int], windowed_cycles: int,
                   remaining_cycles: int) -> bool:
        """True when state corruption seeded into *seed_ffs* provably
        dies out within *remaining_cycles* of the fault's removal,
        having touched neither an output nor a memory port.

        ``windowed_cycles`` re-seeds the set once per cycle the fault is
        active; after removal the set evolves freely through the
        FF-to-FF successor relation.  The check is conservative: any
        visited flip-flop whose Q cone is not clean fails it.
        """
        seed = set(seed_ffs)
        if not seed:
            return True
        successors = self.graph.ff_successors()

        def clean_step(current: Set[int]) -> Optional[Set[int]]:
            nxt: Set[int] = set()
            for ff in current:
                if not self._q_cone_is_clean(ff):
                    return None
                nxt |= successors[ff]
            return nxt

        current = set(seed)
        for _ in range(max(0, windowed_cycles - 1)):
            stepped = clean_step(current)
            if stepped is None:
                return False
            current = stepped | seed
        for _ in range(remaining_cycles):
            if not current:
                return True
            stepped = clean_step(current)
            if stepped is None:
                return False
            if stepped >= current:
                # Monotone growth: a fixed point with survivors is
                # coming; the set can never empty out.
                return False
            current = stepped
        return not current


# ----------------------------------------------------------------------
# workload profile (golden recording)
# ----------------------------------------------------------------------
class WorkloadProfile:
    """Bit-packed golden net histories plus per-cycle memory operations.

    ``hist[net]`` holds the net's settled value at cycle *c* in bit *c*
    — flip-flop outputs carry the *presented* value, memory read ports
    the registered value read the previous cycle, matching both the
    reference simulator and the device model.  Recording is a single
    golden simulation, shared by every fault resolved against it.
    """

    def __init__(self, mapped: MappedNetlist, cycles: int,
                 hist: List[int],
                 mem_ops: List[List[Tuple[int, int, int, int]]]) -> None:
        self.mapped = mapped
        self.cycles = cycles
        self.hist = hist
        #: Per memory block, per cycle: (raddr, we, waddr, wdata).
        self.mem_ops = mem_ops
        self.block_of_rdata: Dict[int, Tuple[int, int]] = {}
        for block, bram in enumerate(mapped.brams):
            for position, net in enumerate(bram.rdata):
                self.block_of_rdata[net] = (block, position)

    @classmethod
    def record(cls, mapped: MappedNetlist, cycles: int,
               inputs: Optional[Dict[str, int]] = None) -> "WorkloadProfile":
        """Run the golden workload once, recording every net's history."""
        hist = [0] * mapped.n_nets
        mem_ops: List[List[Tuple[int, int, int, int]]] = [
            [] for _ in mapped.brams]
        values = [0] * mapped.n_nets
        ff_state = [ff.init for ff in mapped.ffs]
        mem_state = [list(b.init) for b in mapped.brams]
        held = dict(inputs or {})
        compiled = []
        for lut in mapped.luts:
            ins = list(lut.ins) + [CONST0] * (LUT_INPUTS - len(lut.ins))
            compiled.append((lut.out, lut.padded_tt(),
                             ins[0], ins[1], ins[2], ins[3]))
        values[CONST1] = 1
        input_bits = [(net, (held.get(name, 0) >> position) & 1)
                      for name, nets in mapped.inputs.items()
                      for position, net in enumerate(nets)]
        for cycle in range(cycles):
            bit = 1 << cycle
            for net, value in input_bits:
                values[net] = value
            for index, ff in enumerate(mapped.ffs):
                values[ff.q] = ff_state[index]
            for out, tt, i0, i1, i2, i3 in compiled:
                values[out] = (tt >> (values[i0] | values[i1] << 1
                                      | values[i2] << 2
                                      | values[i3] << 3)) & 1
            for net, value in enumerate(values):
                if value:
                    hist[net] |= bit
            for index, ff in enumerate(mapped.ffs):
                ff_state[index] = values[ff.d]
            for block, bram in enumerate(mapped.brams):
                cells = mem_state[block]
                raddr = 0
                for position, net in enumerate(bram.raddr):
                    raddr |= values[net] << position
                read = cells[raddr] if raddr < bram.depth else 0
                we = 0 if bram.rom else values[bram.we]
                waddr = wdata = 0
                if we:
                    for position, net in enumerate(bram.waddr):
                        waddr |= values[net] << position
                    for position, net in enumerate(bram.wdata):
                        wdata |= values[net] << position
                    if waddr < bram.depth:
                        cells[waddr] = wdata
                mem_ops[block].append((raddr, we, waddr, wdata))
                for position, net in enumerate(bram.rdata):
                    values[net] = (read >> position) & 1
        return cls(mapped, cycles, hist, mem_ops)

    def net_bit(self, net: int, cycle: int) -> int:
        return (self.hist[net] >> cycle) & 1

    def golden_mem_at(self, block: int, cycle: int) -> List[int]:
        """Memory contents just before *cycle*'s read phase."""
        bram = self.mapped.brams[block]
        cells = list(bram.init)
        for _raddr, we, waddr, wdata in self.mem_ops[block][:cycle]:
            if we and waddr < bram.depth:
                cells[waddr] = wdata
        return cells


# ----------------------------------------------------------------------
# exact single-flip difference simulation
# ----------------------------------------------------------------------
def _port_value(nets: Sequence[int], overrides: Dict[int, int],
                hist: Sequence[int], cycle: int) -> int:
    """Faulty value of a multi-bit memory port under *overrides*."""
    value = 0
    for position, net in enumerate(nets):
        bit = (overrides[net] if net in overrides
               else (hist[net] >> cycle) & 1)
        value |= bit << position
    return value


def resolve_flip(profile: WorkloadProfile, graph: StructuralGraph,
                 start: int, cycles: int,
                 ff_index: Optional[int] = None,
                 mem_flip: Optional[Tuple[int, int, int]] = None,
                 eval_budget: int = DEFAULT_EVAL_BUDGET) -> Optional[bool]:
    """Decide whether one bit-flip is Silent, by difference simulation.

    Seeds either a flip-flop flip (presented value at *start*) or a
    memory-cell flip ``(block, addr, bit)`` applied before *start*'s
    read phase, then propagates only the faulty-vs-golden differences
    cycle by cycle against the recorded golden histories.

    Returns ``True`` when the fault is provably Silent (every
    difference set empties out, no output net ever differed), ``False``
    when a difference reaches a primary output or survives to the final
    state (possibly Failure or Latent — emulate it), and ``None`` when
    the evaluation budget runs out before a verdict.
    """
    mapped = profile.mapped
    hist = profile.hist
    luts = mapped.luts
    padded_ins: List[Tuple[int, ...]] = []
    padded_tts: List[int] = []
    for lut in luts:
        padded_ins.append(tuple(lut.ins) + (CONST0,) *
                          (LUT_INPUTS - len(lut.ins)))
        padded_tts.append(lut.padded_tt())

    ff_diff: Dict[int, int] = {}
    rdata_diff: Dict[int, int] = {}
    mem_diff: Dict[Tuple[int, int], int] = {}
    golden_mem: List[List[int]] = []
    if ff_index is not None:
        ff_diff[ff_index] = profile.net_bit(
            graph.ff_pairs[ff_index][0], start) ^ 1
    if mem_flip is not None:
        block, addr, bit = mem_flip
        golden_word = profile.golden_mem_at(block, start)[addr]
        mem_diff[(block, addr)] = golden_word ^ (1 << bit)
    for block in range(len(mapped.brams)):
        golden_mem.append(profile.golden_mem_at(block, start))

    budget = eval_budget
    for cycle in range(start, cycles):
        overrides: Dict[int, int] = {}
        for index, faulty in ff_diff.items():
            overrides[graph.ff_pairs[index][0]] = faulty
        overrides.update(rdata_diff)

        # Propagate through the dirty combinational cone, in emission
        # (topological) order via a min-heap of LUT indices.
        pending: List[int] = []
        queued: Set[int] = set()
        for net in overrides:
            for cell in graph.readers[net]:
                if cell not in queued:
                    queued.add(cell)
                    heapq.heappush(pending, cell)
        while pending:
            cell = heapq.heappop(pending)
            budget -= 1
            if budget <= 0:
                return None
            i0, i1, i2, i3 = padded_ins[cell]
            index = (overrides[i0] if i0 in overrides
                     else (hist[i0] >> cycle) & 1)
            index |= (overrides[i1] if i1 in overrides
                      else (hist[i1] >> cycle) & 1) << 1
            index |= (overrides[i2] if i2 in overrides
                      else (hist[i2] >> cycle) & 1) << 2
            index |= (overrides[i3] if i3 in overrides
                      else (hist[i3] >> cycle) & 1) << 3
            out = luts[cell].out
            faulty = (padded_tts[cell] >> index) & 1
            if faulty != (hist[out] >> cycle) & 1:
                overrides[out] = faulty
                for succ in graph.readers[out]:
                    if succ not in queued:
                        queued.add(succ)
                        heapq.heappush(pending, succ)

        for net in overrides:
            if net in graph.output_nets:
                return False

        # Flip-flop capture: a difference survives only when a dirty
        # net feeds a D input with a different value than golden.
        next_ff_diff: Dict[int, int] = {}
        for net, faulty in overrides.items():
            for index in graph.ff_readers.get(net, ()):
                next_ff_diff[index] = faulty

        # Memory blocks: reconcile faulty reads/writes against the
        # golden operations, then advance the rolling golden image.
        next_rdata_diff: Dict[int, int] = {}
        for block, bram in enumerate(mapped.brams):
            g_raddr, g_we, g_waddr, g_wdata = profile.mem_ops[block][cycle]
            dirty_ports = any(net in overrides
                              for net in bram.raddr) or \
                (not bram.rom and (bram.we in overrides or
                                   any(net in overrides
                                       for net in bram.waddr) or
                                   any(net in overrides
                                       for net in bram.wdata)))
            has_diff = any(key[0] == block for key in mem_diff)
            if not dirty_ports and not has_diff:
                if g_we and g_waddr < bram.depth:
                    golden_mem[block][g_waddr] = g_wdata
                continue

            f_raddr = _port_value(bram.raddr, overrides, hist, cycle)
            cells = golden_mem[block]
            g_read = cells[g_raddr] if g_raddr < bram.depth else 0
            if f_raddr < bram.depth:
                f_read = mem_diff.get((block, f_raddr), cells[f_raddr])
            else:
                f_read = 0
            if bram.rom:
                f_we = 0
                f_waddr = f_wdata = 0
            else:
                f_we = (overrides[bram.we] if bram.we in overrides
                        else (hist[bram.we] >> cycle) & 1)
                f_waddr = _port_value(bram.waddr, overrides,
                                      hist, cycle) if f_we else 0
                f_wdata = _port_value(bram.wdata, overrides,
                                      hist, cycle) if f_we else 0
            reconcile: Set[int] = set()
            if f_we and f_waddr < bram.depth:
                reconcile.add(f_waddr)
            if g_we and g_waddr < bram.depth:
                reconcile.add(g_waddr)
            pre = {addr: cells[addr] for addr in reconcile}
            if g_we and g_waddr < bram.depth:
                cells[g_waddr] = g_wdata
            for addr in reconcile:
                if f_we and addr == f_waddr:
                    f_value = f_wdata
                else:
                    f_value = mem_diff.get((block, addr), pre[addr])
                if f_value == cells[addr]:
                    mem_diff.pop((block, addr), None)
                else:
                    mem_diff[(block, addr)] = f_value
            if f_read != g_read:
                for position, net in enumerate(bram.rdata):
                    f_bit = (f_read >> position) & 1
                    if f_bit != (g_read >> position) & 1:
                        next_rdata_diff[net] = f_bit

        ff_diff = next_ff_diff
        rdata_diff = next_rdata_diff
        if not ff_diff and not rdata_diff and not mem_diff:
            return True
    return not ff_diff and not mem_diff
