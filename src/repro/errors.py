"""Exception hierarchy for the FADES reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers embedding the library can catch one base class.  Sub-hierarchies
mirror the subsystem structure described in ``DESIGN.md``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` package."""


class HdlError(ReproError):
    """Problem in an HDL model description or its simulation."""


class ElaborationError(HdlError):
    """The RTL builder was used inconsistently (width mismatch, undriven
    register, duplicate name, ...)."""


class SimulationError(HdlError):
    """The simulator was driven into an invalid state (unknown signal,
    stepping a finalized simulation, ...)."""


class SynthesisError(ReproError):
    """Synthesis, optimisation or technology mapping failed."""


class FpgaError(ReproError):
    """Problem in the FPGA substrate."""


class PlacementError(FpgaError):
    """The design does not fit the device or a resource was double-booked."""


class RoutingError(FpgaError):
    """A net could not be routed through the programmable matrices."""


class BitstreamError(FpgaError):
    """Malformed configuration data or out-of-range frame access."""


class ConfigurationError(FpgaError):
    """The device rejected a (re)configuration request."""


class InjectionError(ReproError):
    """A fault could not be injected (bad location, unsupported model,
    inconsistent campaign specification, ...)."""


class LocationError(InjectionError):
    """The fault-location process could not map an HDL element onto FPGA
    resources (e.g. the element was optimised away)."""


class UnsupportedFaultError(InjectionError):
    """The requested fault model is not supported by the selected tool.

    VFIT, for instance, cannot inject delay faults in models that do not
    expose delays through generic clauses (paper, section 6.3).
    """


class WorkloadError(ReproError):
    """Problem assembling or running a workload program."""


class CampaignRuntimeError(ReproError):
    """Problem in the campaign execution runtime (:mod:`repro.runtime`)."""


class JournalError(CampaignRuntimeError):
    """A result journal is missing, malformed or belongs to a different
    campaign than the one being run or resumed."""


class SchedulerError(CampaignRuntimeError):
    """The worker pool could not complete the campaign (a shard kept
    failing past its retry budget, or a worker died while starting up)."""


class CampaignInterrupted(CampaignRuntimeError):
    """The campaign was stopped by SIGINT/SIGTERM after draining in-flight
    work and journalling an ``interrupted`` stop line; ``repro resume``
    continues from the journal."""


class ChaosError(ReproError):
    """A chaos-injection plan is malformed, or a chaos fault point fired
    an injected runtime failure (:mod:`repro.chaos`)."""


class ObservabilityError(ReproError):
    """Problem in the observability layer (:mod:`repro.obs`): conflicting
    metric registrations, an unreadable trace file, ..."""
