"""A UART transmitter (8N1) — a protocol-timing injection target.

Start bit, eight data bits LSB-first, stop bit, with a programmable baud
divider.  Faults here corrupt *when* bits appear as much as *which* bits —
delay faults on the divider and bit-counter are particularly interesting,
since a single missed edge shifts the whole frame.
"""

from __future__ import annotations

from typing import List

from ..errors import ElaborationError
from ..hdl.netlist import Netlist
from ..hdl.rtl import Rtl

# FSM states.
ST_IDLE = 0
ST_START = 1
ST_DATA = 2
ST_STOP = 3


def uart_tx(divider: int = 4) -> Netlist:
    """Elaborate the transmitter.

    Inputs: ``data`` (8), ``send`` (1).  Outputs: ``txd`` (serial line,
    idle high) and ``busy``.  One bit lasts *divider* clock cycles.
    """
    if divider < 1:
        raise ElaborationError("divider must be at least 1")
    div_width = max(1, (divider - 1).bit_length())
    rtl = Rtl("uart_tx")
    data = rtl.input("data", 8)
    send = rtl.input("send", 1)

    with rtl.unit("FSM"):
        state = rtl.register("state", 2, init=ST_IDLE)
        st_idle = rtl.eq(state.q, rtl.const(ST_IDLE, 2))
        st_start = rtl.eq(state.q, rtl.const(ST_START, 2))
        st_data = rtl.eq(state.q, rtl.const(ST_DATA, 2))
        st_stop = rtl.eq(state.q, rtl.const(ST_STOP, 2))

    with rtl.unit("BAUD"):
        tick_counter = rtl.register("tick", div_width)
        tick_last = rtl.eq(tick_counter.q, rtl.const(divider - 1, div_width))
        tick_next = rtl.mux(tick_last, rtl.inc(tick_counter.q),
                            rtl.const(0, div_width))
        tick_counter.drive(rtl.mux(st_idle, tick_next,
                                   rtl.const(0, div_width)))

    with rtl.unit("DATA"):
        shifter = rtl.register("shifter", 8)
        bit_count = rtl.register("bit_count", 3)
        advance = rtl.and_(st_data, tick_last)
        shifted = rtl.cat(rtl.bits(shifter.q, 1, 7), rtl.const(0, 1))
        shifter_next = rtl.mux(rtl.and_(st_idle, send), shifted, data)
        shifter.drive(shifter_next,
                      en=rtl.or_(rtl.and_(st_idle, send), advance))
        last_bit = rtl.eq(bit_count.q, rtl.const(7, 3))
        bit_count.drive(rtl.mux(st_data, rtl.const(0, 3),
                                rtl.mux(advance, bit_count.q,
                                        rtl.inc(bit_count.q))))

    with rtl.unit("FSM"):
        from_idle = rtl.mux(send, rtl.const(ST_IDLE, 2),
                            rtl.const(ST_START, 2))
        from_start = rtl.mux(tick_last, rtl.const(ST_START, 2),
                             rtl.const(ST_DATA, 2))
        from_data = rtl.mux(rtl.and_(tick_last, last_bit),
                            rtl.const(ST_DATA, 2), rtl.const(ST_STOP, 2))
        from_stop = rtl.mux(tick_last, rtl.const(ST_STOP, 2),
                            rtl.const(ST_IDLE, 2))
        nxt = rtl.select(state.q, [from_idle, from_start, from_data,
                                   from_stop])
        state.drive(nxt)

    with rtl.unit("LINE"):
        txd = rtl.mux(st_start, rtl.const(1, 1), rtl.const(0, 1))
        txd = rtl.mux(st_data, txd, rtl.bit(shifter.q, 0))
    rtl.output("txd", txd)
    rtl.output("busy", rtl.not_(st_idle))
    return rtl.build()


def uart_reference(byte: int, divider: int = 4) -> List[int]:
    """Oracle: the txd waveform of one frame, one entry per clock cycle.

    Starts at the first cycle of the start bit: *divider* cycles of 0,
    8 x *divider* data-bit cycles (LSB first), *divider* cycles of 1.
    """
    wave: List[int] = [0] * divider
    for bit in range(8):
        wave += [(byte >> bit) & 1] * divider
    wave += [1] * divider
    return wave
