"""Reusable demonstration designs for fault-injection studies.

Beyond the paper's 8051 target (:mod:`repro.mc8051`), these smaller
systems cover complementary structures: counters and LFSRs (state
chains), a FIR filter (wide arithmetic datapaths), a UART transmitter
(protocol timing) and a TMR voter (fault masking).
"""

from .basic import (counter, gray_counter, lfsr, lfsr_reference,
                    majority_voter, shift_register, tmr_counter)
from .fir import fir_filter, fir_reference
from .uart import uart_reference, uart_tx

__all__ = [
    "counter",
    "gray_counter",
    "lfsr",
    "lfsr_reference",
    "majority_voter",
    "shift_register",
    "tmr_counter",
    "fir_filter",
    "fir_reference",
    "uart_reference",
    "uart_tx",
]
