"""Small reusable synchronous designs.

These serve three roles: fault-injection targets for examples and tests
beyond the 8051, reference material for users writing their own models
with the RTL builder, and stress cases for the synthesis/implementation
flow (feedback loops, wide reductions, one-hot state machines).

Every builder returns an elaborated
:class:`~repro.hdl.netlist.Netlist` ready for
:func:`repro.core.build_fades`.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ElaborationError
from ..hdl.netlist import Netlist
from ..hdl.rtl import Rtl


def counter(width: int = 8, with_enable: bool = True) -> Netlist:
    """A wrap-around up-counter with terminal count.

    Inputs: ``en`` (when *with_enable*).  Outputs: ``value``, ``tc``.
    """
    rtl = Rtl(f"counter{width}")
    with rtl.unit("CTR"):
        reg = rtl.register("count", width)
        if with_enable:
            en = rtl.input("en", 1)
            reg.drive(rtl.inc(reg.q), en=en)
        else:
            reg.drive(rtl.inc(reg.q))
        rtl.output("value", reg.q)
        rtl.output("tc", rtl.reduce_and(reg.q))
    return rtl.build()


def gray_counter(width: int = 8) -> Netlist:
    """A Gray-code counter: exactly one output bit toggles per cycle.

    A classic fault-detection target — any single upset breaks the
    one-bit-per-step invariant observably.
    """
    rtl = Rtl(f"gray{width}")
    with rtl.unit("CTR"):
        binary = rtl.register("binary", width)
        binary.drive(rtl.inc(binary.q))
        shifted = rtl.cat(rtl.bits(binary.q, 1, width - 1),
                          rtl.const(0, 1))
        gray = rtl.signal("gray", rtl.xor_(binary.q, shifted))
    rtl.output("gray_out", gray)
    return rtl.build()


def lfsr(width: int = 16, taps: Sequence[int] = (16, 15, 13, 4)) -> Netlist:
    """A Fibonacci LFSR (default: the maximal-length x^16+x^15+x^13+x^4+1).

    Outputs: ``state`` and the serial ``bit``.
    """
    if max(taps) > width:
        raise ElaborationError(f"tap {max(taps)} exceeds width {width}")
    rtl = Rtl(f"lfsr{width}")
    with rtl.unit("LFSR"):
        state = rtl.register("state", width, init=1)
        feedback = rtl.bit(state.q, taps[0] - 1)
        for tap in taps[1:]:
            feedback = rtl.xor_(feedback, rtl.bit(state.q, tap - 1))
        nxt = rtl.cat(feedback, rtl.bits(state.q, 0, width - 1))
        state.drive(nxt)
    rtl.output("state_out", state.q)
    rtl.output("bit", rtl.bit(state.q, width - 1))
    return rtl.build()


def lfsr_reference(width: int, taps: Sequence[int], steps: int,
                   seed: int = 1) -> List[int]:
    """Python oracle for :func:`lfsr`: state after each step."""
    state = seed
    out = []
    for _ in range(steps):
        feedback = 0
        for tap in taps:
            feedback ^= (state >> (tap - 1)) & 1
        state = ((state << 1) | feedback) & ((1 << width) - 1)
        out.append(state)
    return out


def shift_register(depth: int = 8, width: int = 4) -> Netlist:
    """A *depth*-stage shift register of *width*-bit words.

    Inputs: ``din``, ``shift``.  Outputs: ``dout`` (last stage),
    ``taps`` (all stages concatenated).
    """
    rtl = Rtl(f"shift{depth}x{width}")
    din = rtl.input("din", width)
    shift = rtl.input("shift", 1)
    with rtl.unit("SR"):
        stages = [rtl.register(f"stage{i}", width) for i in range(depth)]
        previous = din
        for stage in stages:
            stage.drive(previous, en=shift)
            previous = stage.q
    rtl.output("dout", stages[-1].q)
    rtl.output("taps", rtl.cat(*[s.q for s in stages]))
    return rtl.build()


def tmr_counter(width: int = 4) -> Netlist:
    """Three redundant counters behind a majority voter.

    The textbook fault-tolerant design: a transient fault confined to one
    replica is outvoted, so most single-location injections classify as
    Silent (or Latent, if the corrupted replica never re-converges) —
    making this the canonical masking benchmark for the campaign tooling.
    Replicas are tagged ``R0``/``R1``/``R2``; the voter is ``VOTER``.
    """
    rtl = Rtl(f"tmr_counter{width}")
    en = rtl.input("en", 1)
    replicas = []
    for index in range(3):
        with rtl.unit(f"R{index}"):
            reg = rtl.register(f"count{index}", width)
            reg.drive(rtl.inc(reg.q), en=en)
            replicas.append(reg.q)
    with rtl.unit("VOTER"):
        a, b, c = replicas
        voted = rtl.or_(rtl.or_(rtl.and_(a, b), rtl.and_(b, c)),
                        rtl.and_(a, c))
    rtl.output("value", voted)
    return rtl.build()


def majority_voter(width: int = 8) -> Netlist:
    """A triple-modular-redundancy voter over three input words.

    The canonical fault-tolerant structure: any single-input corruption is
    outvoted, which makes it a good subject for studying fault *masking*
    (most injected faults in one replica are Silent at the output).
    """
    rtl = Rtl(f"tmr{width}")
    a = rtl.input("a", width)
    b = rtl.input("b", width)
    c = rtl.input("c", width)
    with rtl.unit("VOTER"):
        ab = rtl.and_(a, b)
        bc = rtl.and_(b, c)
        ac = rtl.and_(a, c)
        voted = rtl.or_(rtl.or_(ab, bc), ac)
        reg = rtl.register("voted", width)
        reg.drive(voted)
        disagree = rtl.or_(rtl.reduce_or(rtl.xor_(a, b)),
                           rtl.reduce_or(rtl.xor_(b, c)))
    rtl.output("out", reg.q)
    rtl.output("disagree", disagree)
    return rtl.build()
