"""A constant-coefficient FIR filter — a datapath-heavy injection target.

Four registered taps and a shift-add multiply-accumulate (coefficients are
compile-time constants, so each product is a sum of shifted tap values).
The accumulator is wide enough never to overflow, making the output an
exact oracle-checkable convolution.

The design complements the control-heavy 8051: faults here land in long
carry chains and wide adders rather than decoders, which shifts the
Failure/Latent balance — arithmetic errors almost always reach the output.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ElaborationError
from ..hdl.netlist import Netlist
from ..hdl.rtl import Rtl, Word


def _const_multiply(rtl: Rtl, value: Word, coefficient: int,
                    out_width: int) -> Word:
    """value * coefficient as a sum of shifted addends (coefficient >= 0)."""
    acc = rtl.const(0, out_width)
    for bit in range(coefficient.bit_length()):
        if (coefficient >> bit) & 1:
            shifted = rtl.cat(rtl.const(0, bit), value) if bit else value
            padded = rtl.zext(shifted, out_width)
            acc, _carry = rtl.add(acc, padded)
    return acc


def fir_filter(coefficients: Sequence[int] = (1, 3, 3, 1),
               sample_width: int = 8) -> Netlist:
    """Elaborate the FIR; inputs ``sample``/``valid``, output ``result``.

    ``result`` is the full-precision convolution of the last
    ``len(coefficients)`` accepted samples with the coefficient vector.
    """
    if not coefficients or any(c < 0 for c in coefficients):
        raise ElaborationError("coefficients must be non-negative")
    acc_width = sample_width + max(1, sum(coefficients)).bit_length()
    rtl = Rtl("fir")
    sample = rtl.input("sample", sample_width)
    valid = rtl.input("valid", 1)
    with rtl.unit("TAPS"):
        taps = [rtl.register(f"tap{i}", sample_width)
                for i in range(len(coefficients))]
        previous = sample
        for tap in taps:
            tap.drive(previous, en=valid)
            previous = tap.q
    with rtl.unit("MAC"):
        total = rtl.const(0, acc_width)
        for tap, coefficient in zip(taps, coefficients):
            product = _const_multiply(rtl, tap.q, coefficient, acc_width)
            total, _carry = rtl.add(total, product)
        result = rtl.register("result", acc_width)
        result.drive(total, en=valid)
    rtl.output("result_out", result.q)
    return rtl.build()


def fir_reference(coefficients: Sequence[int], samples: Sequence[int],
                  sample_width: int = 8) -> List[int]:
    """Python oracle: the value of ``result`` after each accepted sample.

    Matches the hardware's two-stage timing: on the edge that accepts
    sample *k*, the MAC still sees the previous tap contents, so the
    registered result reflects samples up to *k-1*.
    """
    mask = (1 << sample_width) - 1
    taps = [0] * len(coefficients)
    out = []
    for value in samples:
        out.append(sum(t * c for t, c in zip(taps, coefficients)))
        taps = [value & mask] + taps[:-1]
    return out
