"""Command-line interface: the experiments setup module, headless.

The paper's FADES prototype exposed "a graphical user interface [that]
allows the user to specify all the parameters required to perform the
experiments... the length of the experiments, the type of fault to be
emulated, the fault location and duration, the observation points"
(section 5, figure 9).  This CLI is that module for the reproduction::

    python -m repro info
    python -m repro campaign --model pulse --pool luts:ALU --count 20
    python -m repro campaign --tool vfit --model bitflip --pool ffs
    python -m repro campaign --model bitflip --workers 4 --journal out.jsonl
    python -m repro resume out.jsonl --workers 4
    python -m repro screen
    python -m repro seu --count 40 --occupied
    python -m repro report --count 8 --workers 4

All commands run on the 8051 + Bubblesort testbed; ``--values`` changes
the array being sorted (and thereby the workload length).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis import Evaluation
from .analysis.report import full_report
from .core import FaultModel, run_config_seu_campaign
from .core.faults import BAND_LABELS, DURATION_BANDS
from .errors import ReproError


def _parse_values(text: str) -> tuple:
    return tuple(int(token, 0) & 0xFF for token in text.split(","))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FADES reproduction: RTR transient-fault emulation")
    parser.add_argument("--values", type=_parse_values,
                        default=(9, 3, 12, 5),
                        help="workload array to sort (comma-separated)")
    parser.add_argument("--seed", type=int, default=2006)
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "info", help="describe the model, implementation and location map")

    campaign = commands.add_parser(
        "campaign", help="run one fault-injection campaign")
    campaign.add_argument("--tool", choices=("fades", "vfit"),
                          default="fades")
    campaign.add_argument("--model", required=True,
                          choices=[m.value for m in FaultModel])
    campaign.add_argument("--pool", default="ffs",
                          help="location pool (ffs, luts:ALU, memory:iram, "
                               "nets:seq, ...)")
    campaign.add_argument("--count", type=int, default=20)
    campaign.add_argument("--band", type=int, choices=(0, 1, 2), default=1,
                          help="duration band: 0=<1, 1=1-10, 2=11-20 cycles")
    campaign.add_argument("--oscillate", action="store_true",
                          help="re-randomise indeterminations every cycle")
    campaign.add_argument("--mechanism", default="",
                          help="pin a mechanism (lsr/gsr, fanout/reroute)")
    campaign.add_argument("--workers", type=int, default=0,
                          help="parallel worker processes "
                               "(0 = in-process serial)")
    campaign.add_argument("--journal", default=None,
                          help="append-only JSONL result journal; "
                               "re-running skips journaled experiments")

    resume = commands.add_parser(
        "resume", help="finish a journaled campaign (crash recovery)")
    resume.add_argument("journal", help="journal written by campaign "
                                        "--journal")
    resume.add_argument("--workers", type=int, default=0)

    commands.add_parser(
        "screen", help="find the failure-sensitive flip-flops (paper 6.3)")

    seu = commands.add_parser(
        "seu", help="configuration-memory SEU campaign (extension)")
    seu.add_argument("--count", type=int, default=40)
    seu.add_argument("--occupied", action="store_true",
                     help="restrict upsets to the design's occupied region")

    report = commands.add_parser(
        "report", help="regenerate every table and figure of the paper")
    report.add_argument("--count", type=int, default=None,
                        help="faults per experiment class")
    report.add_argument("--workers", type=int, default=0,
                        help="fan experiment classes out across worker "
                             "processes")

    run_spec = commands.add_parser(
        "run-spec", help="execute a JSON campaign specification file")
    run_spec.add_argument("spec", help="path to the spec file")
    run_spec.add_argument("-o", "--output", default=None,
                          help="write the JSON report here")
    return parser


def cmd_info(evaluation: Evaluation) -> int:
    print(f"workload : {evaluation.workload.description} "
          f"({evaluation.cycles} cycles)")
    stats = evaluation.model.netlist.stats()
    print(f"model    : {stats['gates']} gates, {stats['dffs']} FFs, "
          f"{stats['brams']} memories, depth {stats['depth']}")
    print(f"implement: {evaluation.fades.impl.describe()}")
    locmap = evaluation.fades.locmap
    print(f"locations: {locmap.summary()}")
    for unit in locmap.units():
        if not unit:
            continue
        print(f"  unit {unit:<5} {len(locmap.luts_in_unit(unit)):>4} LUTs "
              f"{len(locmap.ffs_in_unit(unit)):>4} FFs")
    return 0


def _progress_printer(total: int):
    """Progress-line callback for engine-backed commands (stderr)."""
    stride = max(1, total // 20)

    def show(snapshot) -> None:
        done = snapshot.completed + snapshot.skipped
        if snapshot.completed % stride == 0 or done >= snapshot.total:
            print(f"  {snapshot.render()}", file=sys.stderr)

    return show


def cmd_campaign(evaluation: Evaluation, args: argparse.Namespace) -> int:
    model = FaultModel(args.model)
    spec = evaluation.spec(model, args.pool, band=args.band,
                           count=args.count, oscillate=args.oscillate,
                           mechanism=args.mechanism)
    engine_requested = args.workers > 0 or args.journal is not None
    if engine_requested and args.tool != "fades":
        print("error: --workers/--journal need --tool fades "
              "(the runtime engine drives FADES campaigns only)",
              file=sys.stderr)
        return 1
    if engine_requested:
        from .runtime import CampaignJobSpec, run_campaign
        jobspec = CampaignJobSpec.from_evaluation(
            evaluation, spec, faultload_seed=args.seed)
        result = run_campaign(jobspec, workers=args.workers,
                              journal=args.journal,
                              progress=_progress_printer(args.count))
    else:
        tool = evaluation.fades if args.tool == "fades" else evaluation.vfit
        result = tool.run(spec, seed=args.seed)
    print(f"{args.tool.upper()} | {model.value} @ {args.pool} | "
          f"duration {BAND_LABELS[args.band]} cycles "
          f"({DURATION_BANDS[args.band][0]:g}-"
          f"{DURATION_BANDS[args.band][1]:g}) | n={args.count}")
    print(result.counts())
    print(f"mean emulated time: {result.mean_emulation_s:.3f} s/fault "
          f"(campaign total {result.total_emulation_s:.1f} s)")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from .runtime import read_journal, resume_campaign
    state = read_journal(args.journal)
    pending = "?"
    if state.header is not None:
        pending = state.jobspec.spec.count - len(
            state.done_indices(state.jobspec.spec.count))
        print(f"resuming {state.jobspec.display_label()} | "
              f"{len(state.records)} journaled, {pending} pending")
    result = resume_campaign(
        args.journal, workers=args.workers,
        progress=_progress_printer(pending if isinstance(pending, int)
                                   else 1))
    print(result.spec_label)
    print(result.counts())
    print(f"mean emulated time: {result.mean_emulation_s:.3f} s/fault "
          f"(campaign total {result.total_emulation_s:.1f} s)")
    return 0


def cmd_screen(evaluation: Evaluation, args: argparse.Namespace) -> int:
    sensitive = evaluation.fades.screen_sensitive_ffs(evaluation.cycles,
                                                      seed=args.seed)
    total = len(evaluation.fades.locmap.mapped.ffs)
    print(f"{len(sensitive)} of {total} flip-flops are failure-sensitive "
          "for this workload (paper found 81 of 637):")
    names = [evaluation.fades.locmap.mapped.ffs[i].name for i in sensitive]
    print("  " + ", ".join(names))
    return 0


def cmd_seu(evaluation: Evaluation, args: argparse.Namespace) -> int:
    report = run_config_seu_campaign(
        evaluation.fades, args.count, evaluation.cycles, seed=args.seed,
        occupied_only=args.occupied)
    print(report.render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    evaluation = Evaluation(values=args.values, seed=args.seed)
    try:
        if args.command == "info":
            return cmd_info(evaluation)
        if args.command == "campaign":
            return cmd_campaign(evaluation, args)
        if args.command == "resume":
            return cmd_resume(args)
        if args.command == "screen":
            return cmd_screen(evaluation, args)
        if args.command == "seu":
            return cmd_seu(evaluation, args)
        if args.command == "report":
            evaluation.workers = args.workers
            print(full_report(evaluation, count=args.count))
            return 0
        if args.command == "run-spec":
            import json
            from .analysis.specfile import run_spec_file
            report = run_spec_file(args.spec, args.output)
            print(json.dumps(report, indent=2))
            return 0
    except (ReproError, OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":
    sys.exit(main())
