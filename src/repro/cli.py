"""Command-line interface: the experiments setup module, headless.

The paper's FADES prototype exposed "a graphical user interface [that]
allows the user to specify all the parameters required to perform the
experiments... the length of the experiments, the type of fault to be
emulated, the fault location and duration, the observation points"
(section 5, figure 9).  This CLI is that module for the reproduction::

    python -m repro info
    python -m repro campaign --model pulse --pool luts:ALU --count 20
    python -m repro campaign --tool vfit --model bitflip --pool ffs
    python -m repro campaign --model bitflip --workers 4 --journal out.jsonl
    python -m repro campaign --model bitflip --workers 4 --trace t.json \
        --metrics m.prom
    python -m repro campaign --model bitflip --pool ffs --prune-silent
    python -m repro campaign --model bitflip --epsilon 0.05 --budget 3000
    python -m repro campaign --model bitflip --strategy stratified
    python -m repro campaign --model bitflip --workers 4 \
        --journal out.jsonl --chaos 'seed=7;worker_crash:p=0.2' \
        --shard-timeout 5
    python -m repro campaign --model bitflip --workers 4 \
        --journal out.jsonl --serve-obs 9100 --alert 'slow:ewma<0.5:for=10'
    python -m repro top out.jsonl --once
    python -m repro top http://127.0.0.1:9100
    python -m repro resume out.jsonl --workers 4
    python -m repro journal fsck out.jsonl --repair
    python -m repro obs summarize t.json --alerts out.jsonl
    python -m repro obs diff before.tsdb after.tsdb --regress-pct 10
    python -m repro lint --fail-on error --json findings.json
    python -m repro screen
    python -m repro seu --count 40 --occupied
    python -m repro report --count 8 --workers 4

All commands run on the 8051 + Bubblesort testbed; ``--values`` changes
the array being sorted (and thereby the workload length).

Output discipline: diagnostics and progress go through the ``repro.*``
loggers to stderr (``--log-level`` / ``--log-json``); stdout carries only
the final deliverable — result tallies, report tables, JSON payloads —
via :func:`repro.obs.logsetup.console`.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Optional, Sequence

from .analysis import Evaluation
from .analysis.report import full_report
from .core import FaultModel, run_config_seu_campaign
from .core.faults import BAND_LABELS, DURATION_BANDS
from .errors import CampaignInterrupted, ReproError
from .obs import console, get_logger, setup_logging
from .obs.metrics import REGISTRY

log = get_logger("repro.cli")


def _parse_values(text: str) -> tuple:
    return tuple(int(token, 0) & 0xFF for token in text.split(","))


def _add_liveobs_flags(command: argparse.ArgumentParser) -> None:
    """Live-observability knobs shared by campaign and resume."""
    command.add_argument("--serve-obs", default=None, metavar="[HOST:]PORT",
                         help="serve /metrics, /status and /healthz over "
                              "HTTP for the campaign's lifetime (port 0 "
                              "binds an ephemeral port; host defaults to "
                              "127.0.0.1)")
    command.add_argument("--alert", action="append", default=None,
                         metavar="RULE",
                         help="add an alert rule "
                              "('name:FIELD OP VALUE[:mode=..][:for=..]"
                              "[:severity=..]'); repeatable, supplements "
                              "the built-in rules")
    command.add_argument("--alert-rules", default=None, metavar="TOML",
                         help="load [[rules]] alert entries from a TOML "
                              "file (supplements the built-in rules)")
    command.add_argument("--sample-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="minimum spacing between time-series "
                              "samples (default 1.0; samples persist to "
                              "<journal>.tsdb when journaling)")


def _add_planner_flags(command: argparse.ArgumentParser) -> None:
    """Statistical campaign planner knobs (repro.faultload)."""
    command.add_argument("--strategy",
                         choices=("uniform", "stratified", "importance"),
                         default="uniform",
                         help="fault sampling strategy: the historical "
                              "uniform draw, proportional per-stratum "
                              "allocation, or SFA-cone importance "
                              "weighting")
    command.add_argument("--confidence", type=float, default=0.95,
                         help="confidence level for stopping decisions "
                              "and reported Wilson intervals")
    command.add_argument("--epsilon", type=float, default=None,
                         help="enable early stopping: halt once every "
                              "outcome rate's Wilson interval is within "
                              "±EPSILON (fraction, e.g. 0.05)")
    command.add_argument("--budget", type=int, default=None,
                         help="hard experiment cap for adaptive "
                              "campaigns (default: --count)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FADES reproduction: RTR transient-fault emulation")
    parser.add_argument("--values", type=_parse_values,
                        default=(9, 3, 12, 5),
                        help="workload array to sort (comma-separated)")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--log-level", default="info",
                        choices=("debug", "info", "warning", "error"),
                        help="stderr logging threshold")
    parser.add_argument("--log-json", action="store_true",
                        help="emit stderr logs as JSON lines")
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser(
        "info", help="describe the model, implementation and location map")

    campaign = commands.add_parser(
        "campaign", help="run one fault-injection campaign")
    campaign.add_argument("--tool", choices=("fades", "vfit"),
                          default="fades")
    campaign.add_argument("--model", required=True,
                          choices=[m.value for m in FaultModel])
    campaign.add_argument("--pool", default="ffs",
                          help="location pool (ffs, luts:ALU, memory:iram, "
                               "nets:seq, ...)")
    campaign.add_argument("--count", type=int, default=20)
    campaign.add_argument("--band", type=int, choices=(0, 1, 2), default=1,
                          help="duration band: 0=<1, 1=1-10, 2=11-20 cycles")
    campaign.add_argument("--oscillate", action="store_true",
                          help="re-randomise indeterminations every cycle")
    campaign.add_argument("--mechanism", default="",
                          help="pin a mechanism (lsr/gsr, fanout/reroute)")
    campaign.add_argument("--backend", choices=("reference", "compiled"),
                          default="reference",
                          help="simulator backend: reference device "
                               "stepping or the bit-parallel compiled "
                               "engine (repro.emu)")
    campaign.add_argument("--prune-silent", action="store_true",
                          help="statically resolve provably-Silent "
                               "faults (repro.sfa) instead of emulating "
                               "them; outcome tallies are unchanged")
    _add_planner_flags(campaign)
    campaign.add_argument("--workers", type=int, default=0,
                          help="parallel worker processes "
                               "(0 = in-process serial)")
    campaign.add_argument("--shard-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="watchdog deadline for parallel shards: "
                               "a worker silent this long is killed and "
                               "its shard re-queued (default: derived "
                               "from observed experiment times)")
    campaign.add_argument("--chaos", default=None, metavar="SPEC",
                          help="deterministic fault injection into the "
                               "runtime itself (repro.chaos), e.g. "
                               "'seed=7;worker_crash:p=0.2;torn_write'; "
                               "also honoured from $REPRO_CHAOS")
    campaign.add_argument("--journal", default=None,
                          help="append-only JSONL result journal; "
                               "re-running skips journaled experiments")
    campaign.add_argument("--trace", default=None, metavar="PATH",
                          help="write a Chrome/Perfetto span trace here "
                               "(inspect with 'repro obs summarize')")
    campaign.add_argument("--metrics", default=None, metavar="PATH",
                          help="export the metrics registry on exit "
                               "(.json for JSON, else Prometheus text)")
    campaign.add_argument("--profile", default=None, metavar="PREFIX",
                          help="write per-phase cProfile artifacts to "
                               "PREFIX.<phase>.pstats")
    _add_liveobs_flags(campaign)

    resume = commands.add_parser(
        "resume", help="finish a journaled campaign (crash recovery)")
    resume.add_argument("journal", help="journal written by campaign "
                                        "--journal")
    resume.add_argument("--workers", type=int, default=0)
    resume.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="watchdog deadline for parallel shards")
    resume.add_argument("--chaos", default=None, metavar="SPEC",
                        help="deterministic runtime fault injection "
                             "(repro.chaos)")
    resume.add_argument("--trace", default=None, metavar="PATH",
                        help="write a span trace of the resumed portion")
    resume.add_argument("--metrics", default=None, metavar="PATH",
                        help="export the metrics registry on exit")
    _add_liveobs_flags(resume)

    top = commands.add_parser(
        "top", help="live terminal dashboard for a campaign (attach "
                    "via its --serve-obs URL or its journal path)")
    top.add_argument("target", help="http://HOST:PORT of a --serve-obs "
                                    "campaign, or a journal path")
    top.add_argument("--once", action="store_true",
                     help="render one snapshot and exit (no ANSI "
                          "redraw loop)")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS", help="refresh interval")

    journal = commands.add_parser(
        "journal", help="journal maintenance (integrity checking)")
    journal_commands = journal.add_subparsers(dest="journal_command",
                                              required=True)
    fsck = journal_commands.add_parser(
        "fsck", help="verify per-line CRCs; classify clean / torn-tail "
                     "/ corrupt")
    fsck.add_argument("journal", help="journal written by campaign "
                                      "--journal")
    fsck.add_argument("--repair", action="store_true",
                      help="truncate the journal to its last verifiable "
                           "prefix (re-run or resume re-executes the "
                           "dropped experiments)")
    fsck.add_argument("--json", action="store_true",
                      help="emit the scan verdict as JSON")

    obs = commands.add_parser(
        "obs", help="observability tooling (trace summaries)")
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_commands.add_parser(
        "summarize", help="per-phase/per-mechanism time table from a "
                          "trace file (compare with paper Table 2)")
    summarize.add_argument("trace", help="trace written by --trace")
    summarize.add_argument("--json", action="store_true",
                           help="emit the summary as JSON")
    summarize.add_argument("--alerts", default=None, metavar="JOURNAL",
                           help="include the alert timeline journalled "
                                "in this campaign journal (implies "
                                "--tsdb JOURNAL.tsdb when that exists)")
    summarize.add_argument("--tsdb", default=None, metavar="PATH",
                           help="include throughput/health statistics "
                                "from this .tsdb time series")
    diff = obs_commands.add_parser(
        "diff", help="compare two runs (.tsdb sidecars or summarize "
                     "--json outputs); exit 1 past --regress-pct")
    diff.add_argument("before", help="baseline run artefact")
    diff.add_argument("after", help="candidate run artefact")
    diff.add_argument("--regress-pct", type=float, default=10.0,
                      metavar="PCT",
                      help="regression threshold: slower throughput or "
                           "longer phases by more than PCT%% (or outcome "
                           "rates drifting that much) fail the diff")

    commands.add_parser(
        "screen", help="find the failure-sensitive flip-flops (paper 6.3)")

    seu = commands.add_parser(
        "seu", help="configuration-memory SEU campaign (extension)")
    seu.add_argument("--count", type=int, default=40)
    seu.add_argument("--occupied", action="store_true",
                     help="restrict upsets to the design's occupied region")

    report = commands.add_parser(
        "report", help="regenerate every table and figure of the paper")
    report.add_argument("--count", type=int, default=None,
                        help="faults per experiment class")
    report.add_argument("--workers", type=int, default=0,
                        help="fan experiment classes out across worker "
                             "processes")
    report.add_argument("--backend", choices=("reference", "compiled"),
                        default="reference",
                        help="simulator backend for the FADES campaigns")
    report.add_argument("--prune-silent", action="store_true",
                        help="statically resolve provably-Silent faults "
                             "in every campaign of the report")
    _add_planner_flags(report)

    lint = commands.add_parser(
        "lint", help="structural lint over bundled designs (repro.sfa)")
    lint.add_argument("designs", nargs="*",
                      help="design names (default: every bundled design)")
    lint.add_argument("--json", default=None, metavar="PATH",
                      help="write machine-readable findings here "
                           "('-' for stdout)")
    lint.add_argument("--fail-on", default=None,
                      choices=("info", "warn", "warning", "error"),
                      help="exit non-zero when any design reaches this "
                           "severity")
    lint.add_argument("--netlist-only", action="store_true",
                      help="skip the synthesised (mapped) variants")

    run_spec = commands.add_parser(
        "run-spec", help="execute a JSON campaign specification file")
    run_spec.add_argument("spec", help="path to the spec file")
    run_spec.add_argument("-o", "--output", default=None,
                          help="write the JSON report here")
    return parser


def cmd_info(evaluation: Evaluation) -> int:
    console(f"workload : {evaluation.workload.description} "
            f"({evaluation.cycles} cycles)")
    stats = evaluation.model.netlist.stats()
    console(f"model    : {stats['gates']} gates, {stats['dffs']} FFs, "
            f"{stats['brams']} memories, depth {stats['depth']}")
    console(f"implement: {evaluation.fades.impl.describe()}")
    locmap = evaluation.fades.locmap
    console(f"locations: {locmap.summary()}")
    for unit in locmap.units():
        if not unit:
            continue
        console(f"  unit {unit:<5} "
                f"{len(locmap.luts_in_unit(unit)):>4} LUTs "
                f"{len(locmap.ffs_in_unit(unit)):>4} FFs")
    return 0


def _progress_printer(total: int):
    """Progress-line callback for engine-backed commands (stderr)."""
    stride = max(1, total // 20)

    def show(snapshot) -> None:
        done = snapshot.completed + snapshot.skipped
        if snapshot.completed % stride == 0 or done >= snapshot.total:
            log.info(snapshot.render())

    return show


def _export_metrics(path: str) -> None:
    """Write the process-wide registry (JSON or Prometheus text)."""
    with open(path, "w", encoding="utf-8") as handle:
        if path.endswith(".json"):
            handle.write(REGISTRY.render_json() + "\n")
        else:
            handle.write(REGISTRY.render_text())
    log.info("metrics exported to %s", path)


def _render_result(heading: str, result) -> None:
    console(heading)
    console(str(result.counts()))
    console(f"mean emulated time: {result.mean_emulation_s:.3f} s/fault "
            f"(campaign total {result.total_emulation_s:.1f} s)")
    pruned, collapsed = result.pruned_count(), result.collapsed_count()
    if pruned or collapsed:
        console(f"statically resolved: {pruned} pruned (proven Silent), "
                f"{collapsed} collapsed onto equivalence "
                f"representatives; {result.emulated_count()} emulated")
    quarantined = [(position, experiment) for position, experiment
                   in enumerate(result.experiments)
                   if getattr(experiment, "quarantined", False)]
    if quarantined:
        console(f"quarantined: {len(quarantined)} poison "
                f"fault{'s' if len(quarantined) != 1 else ''} excised "
                "after bisection (excluded from the rates above):")
        for position, experiment in quarantined:
            console(f"  index {position}: "
                    f"{experiment.error or 'unknown error'}")
    stop = getattr(result, "stop", None)
    if stop:
        console(f"early stopping: {stop['reason']} after {stop['n']} "
                f"experiments ({stop['checks']} checks, max half-width "
                f"{100 * stop['half_width']:.2f} pts)")
        for outcome in sorted(stop.get("intervals", {})):
            successes, trials, low, high = stop["intervals"][outcome]
            rate = 100.0 * successes / trials if trials else 0.0
            console(f"  {outcome:<8} {rate:5.1f}% "
                    f"[{100 * low:.1f}, {100 * high:.1f}]")
    strata = getattr(result, "strata", None)
    if strata:
        console("per-stratum rates, % [low, high]:")
        for row in strata:
            cells = "  ".join(
                f"{outcome} {rates[0]:.1f} [{rates[1]:.1f},{rates[2]:.1f}]"
                for outcome, rates in sorted(row["rates"].items()))
            console(f"  {row['stratum']:<28} n={row['n']:<5} {cells}")


def cmd_lint(args: argparse.Namespace) -> int:
    """Structural lint gate; exit 1 when --fail-on trips."""
    from .sfa import lint_bundled
    threshold = args.fail_on
    if threshold == "warn":
        threshold = "warning"
    reports = lint_bundled(args.designs or None,
                           mapped=not args.netlist_only)
    if args.json:
        payload = json.dumps([report.to_dict() for report in reports],
                             indent=2, sort_keys=True)
        if args.json == "-":
            console(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            log.info("lint findings written to %s", args.json)
    if args.json != "-":
        for report in reports:
            console(report.render())
    if threshold and any(report.fails(threshold) for report in reports):
        log.error("lint gate tripped: severity >= %s found", threshold)
        return 1
    return 0


def _liveobs_kwargs(args: argparse.Namespace) -> dict:
    """Translate the --serve-obs/--alert flags into engine kwargs."""
    from .obs.alerts import built_in_rules, load_rules_toml, parse_rule_spec
    from .obs.timeseries import DEFAULT_INTERVAL_S
    extra = []
    if args.alert:
        extra.extend(parse_rule_spec(spec) for spec in args.alert)
    if args.alert_rules:
        extra.extend(load_rules_toml(args.alert_rules))
    return {
        "serve_obs": args.serve_obs,
        "alert_rules": built_in_rules() + extra if extra else None,
        "sample_interval": (args.sample_interval
                            if args.sample_interval is not None
                            else DEFAULT_INTERVAL_S),
    }


def _install_chaos(spec: Optional[str]) -> None:
    """Activate a --chaos plan for this process (workers inherit it)."""
    if spec:
        from . import chaos
        plan = chaos.ChaosPlan.from_spec(spec)
        chaos.install(plan)
        log.warning("chaos plan active: %s", plan.to_spec())


def cmd_journal(args: argparse.Namespace) -> int:
    """Journal integrity tooling; exit 0 only for a clean journal."""
    from .runtime.journal import repair_journal, scan_journal
    if not os.path.exists(args.journal):
        # A missing journal must not certify as clean (a typo'd path
        # would sail through a CI integrity gate).
        log.error("%s: no such journal", args.journal)
        return 2
    if args.repair:
        scan, dropped = repair_journal(args.journal)
        payload = scan.to_dict()
        payload["repaired"] = True
        payload["bytes_dropped"] = dropped
    else:
        scan = scan_journal(args.journal)
        payload = scan.to_dict()
    verdict = scan.verdict()
    if args.json:
        console(json.dumps(payload, indent=2, sort_keys=True))
    else:
        console(f"{args.journal}: {verdict} | {scan.lines} lines "
                f"({scan.checked} verified, {scan.legacy} legacy "
                f"without CRC)")
        for issue in scan.issues:
            console(f"  line {issue.line_no} ({issue.kind}, byte "
                    f"{issue.offset}): {issue.detail}")
        if args.repair and scan.issues:
            console(f"repaired: truncated "
                    f"{payload['bytes_dropped']} bytes; the dropped "
                    "experiments re-run on resume")
        elif verdict == "corrupt":
            console("interior damage: verified lines follow a bad one; "
                    "re-run with --repair to truncate to the last "
                    "verifiable prefix")
    if verdict == "clean" or args.repair:
        return 0
    return 1 if verdict == "torn-tail" else 2


def cmd_campaign(evaluation: Evaluation, args: argparse.Namespace) -> int:
    evaluation.backend = args.backend
    evaluation.prune_silent = args.prune_silent
    evaluation.strategy = args.strategy
    evaluation.confidence = args.confidence
    evaluation.epsilon = args.epsilon
    evaluation.budget = args.budget
    model = FaultModel(args.model)
    spec = evaluation.spec(model, args.pool, band=args.band,
                           count=args.count, oscillate=args.oscillate,
                           mechanism=args.mechanism)
    adaptive = (args.strategy != "uniform" or args.epsilon is not None
                or args.budget is not None)
    live_requested = (args.serve_obs is not None or bool(args.alert)
                      or args.alert_rules is not None
                      or args.sample_interval is not None)
    engine_requested = (args.workers > 0 or args.journal is not None
                        or args.trace is not None
                        or args.profile is not None
                        or adaptive or live_requested)
    if engine_requested and args.tool != "fades":
        log.error("--workers/--journal/--trace/--profile/--serve-obs, "
                  "the alert flags and the planner flags "
                  "(--strategy/--epsilon/--budget) need --tool fades "
                  "(the runtime engine drives FADES campaigns only)")
        return 1
    _install_chaos(args.chaos)
    if engine_requested:
        from .runtime import CampaignJobSpec, run_campaign
        jobspec = CampaignJobSpec.from_evaluation(
            evaluation, spec, faultload_seed=args.seed)
        result = run_campaign(jobspec, workers=args.workers,
                              journal=args.journal,
                              trace=args.trace, profile=args.profile,
                              shard_timeout=args.shard_timeout,
                              progress=_progress_printer(
                                  jobspec.effective_budget()),
                              **_liveobs_kwargs(args))
        if args.trace:
            log.info("trace written to %s", args.trace)
    else:
        tool = evaluation.fades if args.tool == "fades" else evaluation.vfit
        result = tool.run(spec, seed=args.seed)
    if args.metrics:
        _export_metrics(args.metrics)
    _render_result(
        f"{args.tool.upper()} | {model.value} @ {args.pool} | "
        f"duration {BAND_LABELS[args.band]} cycles "
        f"({DURATION_BANDS[args.band][0]:g}-"
        f"{DURATION_BANDS[args.band][1]:g}) | "
        f"n={len(result.experiments)}", result)
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    from .runtime import read_journal, resume_campaign
    _install_chaos(args.chaos)
    state = read_journal(args.journal)
    pending = "?"
    if state.header is not None:
        # An adaptive journal with a stop line is done at the achieved
        # n; otherwise the (effective) budget bounds the campaign.
        target = state.jobspec.effective_budget()
        if state.stop is not None and isinstance(state.stop.get("n"),
                                                 int):
            target = state.stop["n"]
        pending = target - len(state.done_indices(target))
        log.info("resuming %s | %d journaled, %s pending",
                 state.jobspec.display_label(), len(state.records),
                 pending)
    result = resume_campaign(
        args.journal, workers=args.workers, trace=args.trace,
        shard_timeout=args.shard_timeout,
        progress=_progress_printer(pending if isinstance(pending, int)
                                   else 1),
        **_liveobs_kwargs(args))
    if args.metrics:
        _export_metrics(args.metrics)
    _render_result(result.spec_label, result)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "diff":
        from .obs.rundiff import diff_runs
        report, regressed = diff_runs(args.before, args.after,
                                      regress_pct=args.regress_pct)
        console(report)
        if regressed:
            log.error("regression past %g%% between %s and %s",
                      args.regress_pct, args.before, args.after)
            return 1
        return 0
    from .obs import read_trace, render_summary, summarize_trace
    from .obs.summary import summarize_timeseries
    from .obs.timeseries import read_tsdb, tsdb_path_for
    events = read_trace(args.trace)
    summary = summarize_trace(events)
    alerts = None
    tsdb = args.tsdb
    if args.alerts:
        from .runtime.journal import read_journal
        state = read_journal(args.alerts)
        alerts = [{key: value for key, value in entry.items()
                   if key not in ("type", "crc")}
                  for entry in state.alerts]
        if tsdb is None and os.path.exists(tsdb_path_for(args.alerts)):
            tsdb = tsdb_path_for(args.alerts)
    timeseries = None
    if tsdb:
        samples, dropped = read_tsdb(tsdb)
        if dropped:
            log.warning("%s: dropped %d unverifiable samples",
                        tsdb, dropped)
        timeseries = summarize_timeseries(samples)
    if args.json:
        payload = dict(summary)
        if timeseries is not None:
            payload["timeseries"] = timeseries
        if alerts is not None:
            payload["alerts"] = alerts
        console(json.dumps(payload, indent=2, sort_keys=True))
    else:
        console(render_summary(summary, timeseries=timeseries,
                               alerts=alerts))
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    from .obs.live import run_top
    return run_top(args.target, once=args.once, interval=args.interval)


def cmd_screen(evaluation: Evaluation, args: argparse.Namespace) -> int:
    sensitive = evaluation.fades.screen_sensitive_ffs(evaluation.cycles,
                                                      seed=args.seed)
    total = len(evaluation.fades.locmap.mapped.ffs)
    console(f"{len(sensitive)} of {total} flip-flops are "
            "failure-sensitive for this workload (paper found 81 of 637):")
    names = [evaluation.fades.locmap.mapped.ffs[i].name for i in sensitive]
    console("  " + ", ".join(names))
    return 0


def cmd_seu(evaluation: Evaluation, args: argparse.Namespace) -> int:
    report = run_config_seu_campaign(
        evaluation.fades, args.count, evaluation.cycles, seed=args.seed,
        occupied_only=args.occupied)
    console(report.render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    setup_logging(level=args.log_level, json_mode=args.log_json)
    try:
        if args.command == "obs":
            return cmd_obs(args)
        if args.command == "top":
            return cmd_top(args)
        evaluation = Evaluation(values=args.values, seed=args.seed)
        if args.command == "info":
            return cmd_info(evaluation)
        if args.command == "campaign":
            return cmd_campaign(evaluation, args)
        if args.command == "resume":
            return cmd_resume(args)
        if args.command == "journal":
            return cmd_journal(args)
        if args.command == "screen":
            return cmd_screen(evaluation, args)
        if args.command == "seu":
            return cmd_seu(evaluation, args)
        if args.command == "lint":
            return cmd_lint(args)
        if args.command == "report":
            evaluation.workers = args.workers
            evaluation.backend = args.backend
            evaluation.prune_silent = args.prune_silent
            evaluation.strategy = args.strategy
            evaluation.confidence = args.confidence
            evaluation.epsilon = args.epsilon
            evaluation.budget = args.budget
            console(full_report(evaluation, count=args.count))
            return 0
        if args.command == "run-spec":
            from .analysis.specfile import run_spec_file
            report = run_spec_file(args.spec, args.output)
            console(json.dumps(report, indent=2))
            return 0
    except CampaignInterrupted as error:
        log.error("%s", error)
        return 130
    except (ReproError, OSError, ValueError) as error:
        log.error("%s", error)
        return 1
    return 2


if __name__ == "__main__":
    import sys
    sys.exit(main())
