"""Statistical campaign planning: stratified sampling + early stopping.

The planner treats a fault-injection campaign as a sampling problem
instead of a fixed count:

* :mod:`repro.faultload.strata` partitions the fault space by
  (fault model, target kind, resource group) and draws deterministic
  seed-derived samples per stratum — uniform, proportional-stratified
  or importance-weighted by SFA fan-out cones;
* :mod:`repro.faultload.sequential` stops the campaign as soon as every
  tracked outcome rate's Wilson interval is within ``±epsilon``
  (anytime-valid over a geometric check schedule), under a hard budget.

The runtime engine (:mod:`repro.runtime.engine`) consumes both through
its incremental dispatch loop; the CLI exposes them as
``--strategy/--epsilon/--confidence/--budget``.
"""

from .sequential import (SequentialController, StopDecision,
                         TRACKED_OUTCOMES, plan_checkpoints, tally_prefix)
from .strata import (STRATEGIES, FaultStream, StratifiedSampler, Stratum,
                     cone_weight, partition_strata, summarize_strata)

__all__ = [
    "FaultStream",
    "STRATEGIES",
    "SequentialController",
    "StopDecision",
    "StratifiedSampler",
    "Stratum",
    "TRACKED_OUTCOMES",
    "cone_weight",
    "partition_strata",
    "plan_checkpoints",
    "summarize_strata",
    "tally_prefix",
]
