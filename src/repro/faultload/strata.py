"""Stratified faultload sampling.

The paper draws each campaign's faults uniformly over one location pool
and runs a fixed count.  Treating fault grading as a *sampling* problem
(López-Ongil et al.'s fast fault grading; Rhod et al.'s per-resource
vulnerability estimates) calls for more structure: partition the fault
space into **strata** — one per (fault model, target kind, resource
group) — and draw deterministic, seed-derived samples per stratum.

Three sampling strategies share the machinery:

* ``uniform`` — the historical draw order of
  :func:`repro.core.config.iter_faultload`, bit-identical to
  ``generate_faultload``'s prefix; strata exist only as reporting tags;
* ``stratified`` — proportional allocation: strata are visited by a
  deterministic largest-remainder schedule weighted by stratum size, so
  every resource group is covered early instead of at the whim of the
  uniform draw;
* ``importance`` — like ``stratified`` but weighted by the static fault
  analysis' combinational fan-out cones (:mod:`repro.sfa.graph`):
  faults whose targets reach more logic get sampled more often.
  Per-stratum rates stay unbiased (draws are uniform *within* each
  stratum); the pooled point estimate is importance-allocated, not a
  uniform-population estimate.

Everything is a pure function of ``(spec, locmap, seed, strategy)``:
serial, sharded and resumed campaigns regenerate the identical fault
sequence, which is the determinism contract the runtime journal relies
on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from ..core.config import FaultLoadSpec, candidate_targets, finish_fault
from ..core.faults import Fault, Target, TargetKind
from ..synth.locmap import LocationMap

#: Sampling strategies understood by :class:`FaultStream` (and the
#: ``--strategy`` CLI flag).
STRATEGIES = ("uniform", "stratified", "importance")


@dataclass(frozen=True)
class Stratum:
    """One cell of the fault-space partition.

    ``key`` reads ``<model>/<kind>/<group>`` — e.g. ``bitflip/ff/ALU``
    or ``bitflip/memory_bit/scratch``; ``weight`` drives the allocation
    schedule (stratum size under proportional sampling, cone mass under
    importance sampling).
    """

    key: str
    targets: Tuple[Target, ...]
    weight: float


def _group_of(target: Target, locmap: LocationMap,
              net_units: Mapping[int, str]) -> str:
    """Resource group of one target: functional unit or memory block."""
    mapped = locmap.mapped
    if target.kind is TargetKind.FF:
        return str(mapped.ffs[target.index].unit)
    if target.kind is TargetKind.LUT:
        return str(mapped.luts[target.index].unit)
    if target.kind is TargetKind.MEMORY_BIT:
        return str(mapped.brams[target.index].name)
    if target.kind is TargetKind.NET:
        return net_units.get(target.index, "routing")
    return "design"


def _net_units(locmap: LocationMap) -> Dict[int, str]:
    """Driving unit per net (FF Q outputs and LUT outputs)."""
    mapped = locmap.mapped
    units: Dict[int, str] = {}
    for ff in mapped.ffs:
        units[ff.q] = str(ff.unit)
    for lut in mapped.luts:
        units[lut.out] = str(lut.unit)
    return units


def partition_strata(
        spec: FaultLoadSpec, locmap: LocationMap,
        routed_nets: Optional[Callable[[int], bool]] = None,
        target_weight: Optional[Callable[[Target], float]] = None,
) -> List[Stratum]:
    """Partition a spec's location pool into strata.

    Stratum order follows first appearance in the (deterministic)
    target enumeration, so the partition itself is reproducible.
    ``target_weight`` customises the weight mass each target
    contributes (default 1.0 — proportional allocation).
    """
    targets = candidate_targets(spec, locmap, routed_nets)
    net_units = _net_units(locmap)
    grouped: Dict[str, List[Target]] = {}
    weights: Dict[str, float] = {}
    for target in targets:
        key = "/".join((spec.model.value, target.kind.value,
                        _group_of(target, locmap, net_units)))
        grouped.setdefault(key, []).append(target)
        mass = 1.0 if target_weight is None else target_weight(target)
        weights[key] = weights.get(key, 0.0) + mass
    return [Stratum(key=key, targets=tuple(members),
                    weight=max(weights[key], 1e-12))
            for key, members in grouped.items()]


def cone_weight(locmap: LocationMap) -> Callable[[Target], float]:
    """Importance mass per target: size of its combinational fan-out
    cone (how much logic a fault there can disturb), from the static
    fault analysis' structural graph."""
    from ..sfa.graph import StructuralGraph  # local: heavy, optional

    mapped = locmap.mapped
    graph = StructuralGraph.from_design(mapped)

    def weight(target: Target) -> float:
        if target.kind is TargetKind.FF:
            net = mapped.ffs[target.index].q
        elif target.kind is TargetKind.LUT:
            net = mapped.luts[target.index].out
        elif target.kind is TargetKind.NET:
            net = target.index
        elif target.kind is TargetKind.MEMORY_BIT:
            rdata = mapped.brams[target.index].rdata
            net = rdata[(target.bit or 0) % len(rdata)] if rdata else -1
        else:
            return 1.0
        if not 0 <= net < graph.n_nets:
            return 1.0
        return 1.0 + len(graph.comb_fanout(net))

    return weight


class StratifiedSampler:
    """Deterministic weighted round-robin over strata.

    Each draw advances a largest-remainder schedule: every stratum
    accrues credit proportional to its weight and the most-overdue
    stratum (ties broken by partition order) is sampled next — uniform
    within the stratum, attributes via the shared
    :func:`~repro.core.config.finish_fault` draw.  The schedule is
    anytime: allocation over any prefix is within one draw of the exact
    weighted split, with no total count fixed in advance.
    """

    def __init__(self, spec: FaultLoadSpec, strata: List[Stratum],
                 seed: int = 0):
        if not strata:
            raise ValueError("cannot sample from an empty partition")
        self.spec = spec
        self.strata = strata
        self._rng = random.Random(seed)
        total = sum(stratum.weight for stratum in strata)
        self._share = [stratum.weight / total for stratum in strata]
        self._credit = [0.0] * len(strata)

    def __iter__(self) -> "StratifiedSampler":
        return self

    def __next__(self) -> Tuple[Fault, str]:
        for index, share in enumerate(self._share):
            self._credit[index] += share
        pick = max(range(len(self._credit)),
                   key=lambda index: (self._credit[index], -index))
        self._credit[pick] -= 1.0
        stratum = self.strata[pick]
        target = stratum.targets[self._rng.randrange(len(stratum.targets))]
        return finish_fault(self.spec, target, self._rng), stratum.key


class FaultStream:
    """A deterministic, lazily-materialised fault sequence.

    The runtime engine pulls faults in checkpoint-sized windows via
    :meth:`ensure`; ``faults[i]`` and ``tags[i]`` stay stable once
    issued, so fault indices keep their journal meaning.  With strategy
    ``uniform`` the sequence is exactly the
    :func:`~repro.core.config.generate_faultload` sequence (strata are
    reporting tags only); the stratified strategies re-order the draws
    through :class:`StratifiedSampler`.
    """

    def __init__(self, spec: FaultLoadSpec, locmap: LocationMap,
                 seed: int = 0,
                 routed_nets: Optional[Callable[[int], bool]] = None,
                 strategy: str = "uniform"):
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown sampling strategy {strategy!r} "
                f"(choose from {', '.join(STRATEGIES)})")
        self.strategy = strategy
        self.spec = spec
        self.faults: List[Fault] = []
        self.tags: List[str] = []
        weight = cone_weight(locmap) if strategy == "importance" else None
        self.strata = partition_strata(spec, locmap, routed_nets, weight)
        if strategy == "uniform":
            targets = candidate_targets(spec, locmap, routed_nets)
            net_units = _net_units(locmap)
            tag_of = {
                target: "/".join((spec.model.value, target.kind.value,
                                  _group_of(target, locmap, net_units)))
                for target in targets}
            rng = random.Random(seed)

            def draw() -> Tuple[Fault, str]:
                target = rng.choice(targets)
                return finish_fault(spec, target, rng), tag_of[target]

            self._draw: Callable[[], Tuple[Fault, str]] = draw
        else:
            sampler = StratifiedSampler(spec, self.strata, seed=seed)
            self._draw = sampler.__next__

    def ensure(self, count: int) -> List[Fault]:
        """Materialise the sequence out to *count* faults (idempotent)."""
        while len(self.faults) < count:
            fault, tag = self._draw()
            self.faults.append(fault)
            self.tags.append(tag)
        return self.faults

    def __len__(self) -> int:
        return len(self.faults)


def summarize_strata(tags: Iterable[str], outcomes: Mapping[int, str],
                     confidence: float = 0.95) -> List[Dict[str, object]]:
    """Per-stratum outcome rates with Wilson intervals.

    ``tags`` maps fault index -> stratum key (positionally);
    ``outcomes`` maps fault index -> outcome string (missing indices —
    unexecuted under early stopping — are skipped).  Rows are sorted by
    stratum key; rates are ``[percent, low, high]`` triples, JSON-ready
    for the journal and report tables.
    """
    from ..analysis.stats import wilson  # local: avoid import cycle

    counts: Dict[str, Dict[str, int]] = {}
    for index, tag in enumerate(tags):
        outcome = outcomes.get(index)
        if outcome is None:
            continue
        row = counts.setdefault(tag, {"failure": 0, "latent": 0,
                                      "silent": 0})
        if outcome in row:
            row[outcome] += 1
    table: List[Dict[str, object]] = []
    for key in sorted(counts):
        row = counts[key]
        n = sum(row.values())
        rates: Dict[str, List[float]] = {}
        for outcome in ("failure", "latent", "silent"):
            interval = wilson(row[outcome], n, confidence)
            rates[outcome] = [round(value, 4)
                              for value in interval.percent()]
        table.append({"stratum": key, "n": n, "rates": rates})
    return table
