"""Confidence-driven early stopping for fault-injection campaigns.

A fixed 3000-fault campaign (the paper's table 2 setting) keeps paying
for experiments long after the outcome rates have converged.  The
controller here implements the alternative: keep sampling until the
Wilson interval on **each** tracked outcome rate (Failure / Latent /
Silent) has half-width at most ``epsilon``, with a hard ``budget`` cap.

Anytime validity under batching
-------------------------------
Peeking at a confidence interval after every batch and stopping the
first time it looks narrow is the classic sequential-testing trap: each
peek is another chance to stop on noise, so the realised coverage of
the reported interval drops below the nominal level.  The controller
therefore

* checks only at a fixed, geometrically-spaced schedule of sample
  sizes (:meth:`SequentialController.checkpoints`), known up front from
  ``(initial, growth, budget)`` alone — serial, sharded and resumed
  runs see the identical schedule and hence stop at the identical
  experiment count; and
* makes each *stopping decision* at a Bonferroni-corrected confidence
  ``1 - (1 - confidence) / k`` over the ``k`` scheduled checks, a
  union bound guaranteeing that the probability any of the ``k``
  looks produced a spuriously-narrow interval stays below
  ``1 - confidence``.

The *reported* intervals (:attr:`StopDecision.intervals`) use the
plain, uncorrected confidence — they describe the estimate at the point
the campaign stopped, the correction only guards the decision to stop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.classify import OutcomeCounts
from ..obs import metrics as obs_metrics

_CHECKS = obs_metrics.counter(
    "stopping_rule_checks_total",
    "Stopping-rule evaluations, by decision.")

#: The outcome rates a campaign's stopping rule tracks.
TRACKED_OUTCOMES = ("failure", "latent", "silent")


@dataclass(frozen=True)
class StopDecision:
    """One stopping-rule evaluation.

    ``intervals`` maps outcome -> ``(successes, trials, low, high)`` at
    the user's (uncorrected) confidence; ``half_width`` is the largest
    half-width among the tracked outcomes at the *decision* confidence,
    the quantity compared against epsilon.
    """

    stop: bool
    reason: str  # "converged" | "budget" | "" (keep sampling)
    n: int
    checks: int
    half_width: float
    intervals: Dict[str, List[float]]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for the journal's stop line."""
        return {"reason": self.reason, "n": self.n,
                "checks": self.checks,
                "half_width": round(self.half_width, 6),
                "intervals": {outcome: list(values) for outcome, values
                              in self.intervals.items()}}


def plan_checkpoints(budget: int, initial: int = 100,
                     growth: float = 1.5) -> List[int]:
    """Geometric check schedule ending exactly at the budget.

    Geometric spacing keeps the Bonferroni factor small (k grows
    logarithmically with the budget) while still checking early enough
    to realise most of the possible savings.
    """
    if budget < 1:
        raise ValueError(f"budget must be positive, got {budget}")
    points: List[int] = []
    mark = float(max(1, min(initial, budget)))
    while int(mark) < budget:
        points.append(int(mark))
        mark = max(mark * growth, mark + 1)
    points.append(budget)
    return points


class SequentialController:
    """Wilson-interval stopping rule over a scheduled sequence of looks.

    Pure function of its constructor arguments: feeding it the same
    outcome tallies at the same checkpoints always yields the same
    decisions, which is what lets sharded and resumed campaigns stop at
    the same experiment as a serial run.
    """

    def __init__(self, epsilon: float, budget: int,
                 confidence: float = 0.95,
                 initial: int = 100, growth: float = 1.5):
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}")
        self.epsilon = epsilon
        self.budget = budget
        self.confidence = confidence
        self._checkpoints = plan_checkpoints(budget, initial, growth)
        # Union bound over the scheduled looks: each look spends an
        # equal share of the allowed miscoverage.
        self.decision_confidence = \
            1.0 - (1.0 - confidence) / len(self._checkpoints)
        self.checks = 0

    def checkpoints(self) -> List[int]:
        """Sample sizes at which the rule is evaluated (ends at budget)."""
        return list(self._checkpoints)

    def check(self, counts: OutcomeCounts, n: int) -> StopDecision:
        """Evaluate the rule after *n* completed experiments.

        ``counts`` must tally exactly the first *n* fault indices —
        the engine only calls this at batch barriers where the record
        prefix is complete, keeping decisions order-independent.

        Quarantined experiments count toward *n* (the prefix is
        complete, and the scheduling position of a poison fault must
        not shift the checkpoint grid) but are excluded from every
        Wilson denominator: a fault the runtime excised carries no
        outcome evidence.
        """
        from ..analysis.stats import wilson  # local: avoid import cycle

        self.checks += 1
        trials = counts.total  # classified only; excludes quarantined
        per_outcome = {"failure": counts.failure, "latent": counts.latent,
                       "silent": counts.silent}
        if trials > 0:
            half_width = max(
                (interval.high - interval.low) / 2.0
                for interval in (wilson(successes, trials,
                                        self.decision_confidence)
                                 for successes in per_outcome.values()))
        else:
            half_width = 1.0  # no evidence at all: never converged
        converged = half_width <= self.epsilon
        if converged:
            reason = "converged"
        elif n >= self.budget:
            reason = "budget"
        else:
            reason = ""
        _CHECKS.inc(decision=reason or "continue")
        intervals = {
            outcome: [successes, trials,
                      round(wilson(successes, max(1, trials),
                                   self.confidence).low, 6),
                      round(wilson(successes, max(1, trials),
                                   self.confidence).high, 6)]
            for outcome, successes in per_outcome.items()}
        return StopDecision(stop=bool(reason), reason=reason, n=n,
                            checks=self.checks, half_width=half_width,
                            intervals=intervals)


def tally_prefix(records: Dict[int, Dict[str, object]],
                 n: int) -> Optional[OutcomeCounts]:
    """Outcome tally over fault indices ``0..n-1``; ``None`` if any
    index lacks a record (the prefix is not yet complete)."""
    from ..core.classify import Outcome

    counts = OutcomeCounts()
    for index in range(n):
        record = records.get(index)
        if record is None:
            return None
        counts.add(Outcome(record["outcome"]))
    return counts
