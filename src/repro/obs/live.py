"""``repro top`` — a live ANSI dashboard over a running campaign.

Attaches to a campaign two ways:

* **URL** (``repro top http://host:port``) — polls the campaign's
  ``/status`` endpoint (see :mod:`repro.obs.server`);
* **journal path** (``repro top out.jsonl``) — tails the journal and
  its ``.tsdb`` time-series sidecar, reconstructing the same status
  shape from durable state alone.  This also works after the campaign
  ended: ``repro top out.jsonl --once`` renders its final state.

The renderer is a pure function (:func:`render_dashboard`) over the
status dict and sample list so tests can assert on its output; the loop
around it redraws with a plain ANSI home+clear, no curses.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from .logsetup import console, get_logger
from .timeseries import read_tsdb, tsdb_path_for

log = get_logger("repro.obs.live")

#: Throughput sparkline glyphs, lowest to highest.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: Outcome display order and bar glyph.
OUTCOME_ORDER = ("failure", "latent", "silent", "quarantined")
_BAR_GLYPH = "█"

_ANSI_CLEAR = "\x1b[2J\x1b[H"


def is_url(target: str) -> bool:
    return target.startswith(("http://", "https://"))


def fetch_status(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """GET ``<url>/status`` and parse the JSON payload."""
    endpoint = url.rstrip("/")
    if not endpoint.endswith("/status"):
        endpoint += "/status"
    try:
        with urllib.request.urlopen(endpoint, timeout=timeout) as reply:
            payload = json.loads(reply.read().decode("utf-8"))
    except (urllib.error.URLError, OSError, ValueError) as error:
        raise ObservabilityError(
            f"cannot fetch {endpoint}: {error}") from error
    if not isinstance(payload, dict):
        raise ObservabilityError(f"{endpoint}: not a status object")
    return payload


def status_from_journal(journal: str) -> Tuple[Dict[str, Any],
                                               List[Dict[str, Any]]]:
    """Rebuild a ``/status``-shaped dict from journal + tsdb sidecar."""
    from ..runtime.journal import read_journal

    if not os.path.exists(journal):
        raise ObservabilityError(f"{journal}: no such journal")
    state = read_journal(journal)
    outcomes: Dict[str, int] = {}
    quarantined = 0
    for record in state.records.values():
        outcome = str(record.get("outcome", "?"))
        outcomes[outcome] = outcomes.get(outcome, 0) + 1
        if record.get("quarantined"):
            quarantined += 1
    label = "(headerless journal)"
    total: Optional[int] = None
    total_exact = True
    if state.header is not None:
        jobspec = state.jobspec
        label = jobspec.display_label()
        total = jobspec.effective_budget()
        total_exact = jobspec.epsilon is None
    if state.stop is not None and isinstance(state.stop.get("n"), int):
        total, total_exact = state.stop["n"], True

    samples: List[Dict[str, Any]] = []
    tsdb = tsdb_path_for(journal)
    if os.path.exists(tsdb):
        samples, dropped = read_tsdb(tsdb)
        if dropped:
            log.debug("%s: dropped %d unverifiable samples", tsdb,
                      dropped)
    last = samples[-1] if samples else {}
    n = len(state.records)
    status: Dict[str, Any] = {
        "campaign": label,
        "journal": journal,
        "n": n,
        "total": total if total is not None else n,
        "total_exact": total_exact,
        "pending": max(0, (total or n) - n),
        "outcomes": outcomes,
        "quarantined": quarantined,
        "retries": last.get("retries", 0),
        "hangs": last.get("hangs", 0),
        "fallbacks": last.get("fallbacks", 0),
        "throughput": last.get("ewma", 0.0),
        "eta_s": None,
        "elapsed_s": last.get("t", 0.0),
        "emulated_s": last.get("emulated_s", 0.0),
        "phases": last.get("phases", {}),
        "workers": {},
        "alerts": [],
        "alert_history": state.alerts,
        "finished": state.summary is not None
        or (state.stop is not None
            and state.stop.get("reason") != "interrupted"),
    }
    return status, samples


def sparkline(values: List[float], width: int = 32) -> str:
    """Render the last ``width`` values as unicode block glyphs."""
    tail = [max(0.0, float(value)) for value in values[-width:]]
    if not tail:
        return ""
    peak = max(tail)
    if peak <= 0:
        return SPARK_GLYPHS[0] * len(tail)
    steps = len(SPARK_GLYPHS) - 1
    return "".join(SPARK_GLYPHS[round(value / peak * steps)]
                   for value in tail)


def outcome_bar(outcomes: Dict[str, int], width: int = 40) -> str:
    """Proportional outcome summary: ``failure ███ 12 (35%)  ...``"""
    total = sum(outcomes.values())
    if total <= 0:
        return "(no experiments yet)"
    parts: List[str] = []
    ordered = [name for name in OUTCOME_ORDER if outcomes.get(name)]
    ordered += sorted(set(outcomes) - set(OUTCOME_ORDER))
    for name in ordered:
        count = outcomes.get(name, 0)
        if not count:
            continue
        share = count / total
        bar = _BAR_GLYPH * max(1, round(share * width))
        parts.append(f"{name} {bar} {count} ({share:.0%})")
    return "  ".join(parts)


def _fmt_eta(eta_s: Optional[float]) -> str:
    if eta_s is None:
        return "--:--"
    eta = max(0, int(round(eta_s)))
    return f"{eta // 60:02d}:{eta % 60:02d}"


def render_dashboard(status: Dict[str, Any],
                     samples: Optional[List[Dict[str, Any]]] = None
                     ) -> str:
    """Pure renderer: status (+ optional sample history) -> text."""
    samples = samples if samples is not None else []
    lines: List[str] = []
    total = status.get("total", 0)
    bound = (f"{total}" if status.get("total_exact", True)
             else f"<={total}")
    state = "done" if status.get("finished") else "running"
    lines.append(f"repro top — {status.get('campaign', '?')}   "
                 f"[{state}]   n {status.get('n', 0)}/{bound}   "
                 f"elapsed {float(status.get('elapsed_s') or 0.0):.1f} s")

    workers = status.get("workers") or {}
    worker_cell = ""
    if workers.get("configured"):
        worker_cell = (f"   workers {workers.get('alive', '?')}"
                       f"/{workers['configured']}")
    lines.append(f"throughput {float(status.get('throughput') or 0.0):.2f}"
                 f" exp/s   eta {_fmt_eta(status.get('eta_s'))}"
                 f"{worker_cell}"
                 f"   retries {int(status.get('retries') or 0)}"
                 f"   hangs {int(status.get('hangs') or 0)}"
                 f"   quarantined "
                 f"{int(status.get('quarantined') or 0)}")
    lines.append("outcomes   "
                 + outcome_bar(dict(status.get("outcomes") or {})))

    series = status.get("series")
    if not series:
        series = [float(sample.get("throughput", 0.0))
                  for sample in samples]
    if series:
        peak = max(float(value) for value in series)
        lines.append(f"thrpt      {sparkline(list(map(float, series)))}"
                     f"   peak {peak:.2f} exp/s")

    active = status.get("alerts") or []
    history = status.get("alert_history") or []
    if active:
        lines.append("ALERTS     "
                     + "   ".join(f"{alert.get('rule')}"
                                  f" [{alert.get('severity')}]"
                                  f" {alert.get('condition', '')}".rstrip()
                                  for alert in active))
    fired = [entry for entry in history if not entry.get("resolved")]
    if fired:
        lines.append(f"fired      {len(fired)} alert"
                     f"{'s' if len(fired) != 1 else ''}:")
        for entry in fired[-8:]:
            lines.append(f"  t={float(entry.get('t', 0.0)):7.1f}s  "
                         f"{entry.get('rule', '?'):<22s} "
                         f"[{entry.get('severity', '?')}] "
                         f"{entry.get('message', '')}")
    if not active and not fired:
        lines.append("alerts     none")
    return "\n".join(lines)


def _poll(target: str) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    if is_url(target):
        return fetch_status(target), []
    return status_from_journal(target)


def run_top(target: str, once: bool = False,
            interval: float = 1.0) -> int:
    """Drive the dashboard; returns a process exit code."""
    try:
        status, samples = _poll(target)
    except ObservabilityError as error:
        log.error("%s", error)
        return 1
    if once:
        console(render_dashboard(status, samples))
        return 0
    try:
        while True:
            console(_ANSI_CLEAR + render_dashboard(status, samples))
            if status.get("finished"):
                return 0
            time.sleep(max(0.1, interval))
            try:
                status, samples = _poll(target)
            except ObservabilityError:
                if is_url(target):
                    # The endpoint lives only as long as the campaign:
                    # a vanished server is the normal end of the show.
                    console("campaign endpoint gone (campaign "
                            "finished or aborted)")
                    return 0
                raise
    except KeyboardInterrupt:
        return 130
