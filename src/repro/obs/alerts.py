"""Declarative alert rules evaluated over campaign time-series samples.

An :class:`AlertRule` watches one sample field (see
:mod:`repro.obs.timeseries` for the schema) through one of three modes:

``level``
    Compare the field's current value against the threshold.
``delta``
    Compare the change since the previous sample (runtime-health
    counters are cumulative, so a spike is a positive delta).
``stall``
    Fire when the field has not changed for ``for_s`` seconds while
    experiments are still pending — the zero-progress deadline.

A rule *fires* on the transition into breach (sustained past ``for_s``
where set) and *resolves* on the transition out; while breached it is
listed as an active alert on ``/status`` and in ``repro top``.  Every
firing is emitted four ways: a structured ``repro.obs.alerts`` log
record, an ``alerts_fired_total{rule=...}`` counter increment, a trace
instant, and — when the campaign journals — an ``alert`` journal line
replayed on resume.

Rule syntax (CLI ``--alert``, one rule per flag)::

    --alert 'slow:throughput<0.5:for=10'
    --alert 'latent_burst:latent>3:mode=delta:severity=critical'

``name:FIELD OP VALUE`` with optional ``:``-separated options
``mode=level|delta|stall``, ``for=SECONDS``, ``severity=LEVEL``.  The
name may be omitted when the first segment already contains a
comparison.  The same rules load from a TOML file (``--alert-rules``)::

    [[rules]]
    name = "slow"
    field = "throughput"
    op = "<"
    value = 0.5
    for_s = 10.0
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ObservabilityError
from . import metrics as obs_metrics
from .logsetup import get_logger
from .tracing import TRACER

log = get_logger("repro.obs.alerts")

_FIRED = obs_metrics.counter(
    "alerts_fired_total",
    "Alert rule firings over the campaign time series, by rule.")

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

MODES = ("level", "delta", "stall")

#: Fields resolved from the nested ``outcomes`` map when absent at the
#: sample's top level (so rules can say ``failure>0`` directly).
_CONDITION_RE = re.compile(
    r"^\s*(?P<field>[A-Za-z_][A-Za-z0-9_.]*)\s*"
    r"(?P<op><=|>=|==|!=|<|>)\s*(?P<value>-?[0-9.]+)\s*$")


@dataclass(frozen=True)
class AlertRule:
    """One threshold rule over the sample stream."""

    name: str
    field: str
    op: str
    value: float
    mode: str = "level"
    #: Breach must be sustained this long before the rule fires.
    for_s: float = 0.0
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ObservabilityError(
                f"alert rule {self.name!r}: unknown comparator "
                f"{self.op!r} (known: {', '.join(sorted(_OPS))})")
        if self.mode not in MODES:
            raise ObservabilityError(
                f"alert rule {self.name!r}: unknown mode {self.mode!r} "
                f"(known: {', '.join(MODES)})")
        if self.for_s < 0:
            raise ObservabilityError(
                f"alert rule {self.name!r}: for_s must be >= 0")

    def observed(self, sample: Dict[str, Any],
                 prev: Optional[Dict[str, Any]]) -> Optional[float]:
        """The value this rule compares for one sample."""
        current = _field_value(sample, self.field)
        if current is None:
            return None
        if self.mode == "level":
            return current
        previous = _field_value(prev, self.field) if prev else None
        if self.mode == "delta":
            return current - (previous if previous is not None else 0.0)
        # stall: seconds since the watched field last changed, tracked
        # by the engine; `observed` reports the raw field so the event
        # message stays meaningful.
        return current

    def describe(self) -> str:
        suffix = "" if self.mode == "level" else f" [{self.mode}]"
        sustain = f" for {self.for_s:g}s" if self.for_s else ""
        return f"{self.field}{self.op}{self.value:g}{suffix}{sustain}"


def _field_value(sample: Optional[Dict[str, Any]],
                 name: str) -> Optional[float]:
    if not sample:
        return None
    if name in sample:
        value = sample[name]
    else:
        value = sample.get("outcomes", {}).get(name)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


@dataclass(frozen=True)
class AlertEvent:
    """One firing (or resolution) of a rule."""

    rule: str
    severity: str
    t: float
    value: float
    threshold: float
    message: str
    resolved: bool = False

    def to_dict(self) -> Dict[str, Any]:
        entry: Dict[str, Any] = {
            "rule": self.rule, "severity": self.severity,
            "t": round(self.t, 4), "value": self.value,
            "threshold": self.threshold, "message": self.message,
        }
        if self.resolved:
            entry["resolved"] = True
        return entry


def built_in_rules(stall_after_s: float = 30.0) -> List[AlertRule]:
    """The default rule set every live campaign is watched with."""
    return [
        AlertRule("worker_hang_spike", field="hangs", op=">",
                  value=0.0, mode="delta", severity="warning"),
        AlertRule("compile_fallback", field="fallbacks", op=">",
                  value=0.0, mode="delta", severity="warning"),
        AlertRule("quarantine_burst", field="quarantined", op=">",
                  value=0.0, mode="delta", severity="critical"),
        AlertRule("throughput_stall", field="n", op="==", value=0.0,
                  mode="stall", for_s=stall_after_s,
                  severity="critical"),
    ]


def parse_rule_spec(spec: str) -> AlertRule:
    """Parse one ``--alert`` term (see the module docstring)."""
    parts = [part.strip() for part in spec.split(":")]
    if not parts or not parts[0]:
        raise ObservabilityError(f"empty alert rule spec {spec!r}")
    if _CONDITION_RE.match(parts[0]):
        name, condition, options = "", parts[0], parts[1:]
    else:
        if len(parts) < 2:
            raise ObservabilityError(
                f"alert rule {spec!r} has no condition "
                "(expected 'name:FIELD OP VALUE[:options]')")
        name, condition, options = parts[0], parts[1], parts[2:]
    match = _CONDITION_RE.match(condition)
    if match is None:
        raise ObservabilityError(
            f"alert rule {spec!r}: cannot parse condition "
            f"{condition!r} (expected FIELD OP VALUE)")
    kwargs: Dict[str, Any] = {}
    for option in options:
        key, _, value = option.partition("=")
        key = key.strip()
        try:
            if key == "for":
                kwargs["for_s"] = float(value)
            elif key == "mode":
                kwargs["mode"] = value.strip()
            elif key == "severity":
                kwargs["severity"] = value.strip()
            else:
                raise ObservabilityError(
                    f"alert rule {spec!r}: unknown option {key!r}")
        except ValueError as error:
            raise ObservabilityError(
                f"alert rule {spec!r}: malformed option "
                f"{option!r}: {error}") from error
    rule_field = match.group("field")
    if not name:
        name = f"{rule_field}_{match.group('op')}_{match.group('value')}"
        name = re.sub(r"[^A-Za-z0-9_]", "_", name)
    try:
        value = float(match.group("value"))
    except ValueError as error:
        raise ObservabilityError(
            f"alert rule {spec!r}: malformed threshold") from error
    return AlertRule(name=name, field=rule_field, op=match.group("op"),
                     value=value, **kwargs)


def load_rules_toml(path: str) -> List[AlertRule]:
    """Load ``[[rules]]`` entries from a TOML file."""
    try:
        import tomllib
    except ImportError as error:  # pragma: no cover - py<3.11
        raise ObservabilityError(
            "TOML alert rules need Python 3.11+ (tomllib); use "
            "--alert specs instead") from error
    try:
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as error:
        raise ObservabilityError(
            f"{path}: cannot load alert rules: {error}") from error
    rules: List[AlertRule] = []
    for entry in payload.get("rules", []):
        if not isinstance(entry, dict):
            raise ObservabilityError(
                f"{path}: [[rules]] entries must be tables")
        try:
            rules.append(AlertRule(
                name=str(entry["name"]),
                field=str(entry["field"]),
                op=str(entry.get("op", ">")),
                value=float(entry["value"]),
                mode=str(entry.get("mode", "level")),
                for_s=float(entry.get("for_s", 0.0)),
                severity=str(entry.get("severity", "warning"))))
        except KeyError as error:
            raise ObservabilityError(
                f"{path}: alert rule missing key {error}") from error
    if not rules:
        raise ObservabilityError(f"{path}: no [[rules]] entries")
    return rules


@dataclass
class _RuleState:
    breach_since: Optional[float] = None
    active: bool = False
    #: stall mode: (last observed value, t it last changed).
    last_value: Optional[float] = None
    changed_at: float = 0.0


class AlertEngine:
    """Evaluates a rule set over the sample stream, tracking firings.

    ``on_event`` receives every :class:`AlertEvent` as it fires (the
    engine wires this to the journal).  ``history`` accumulates fired
    events — including ones replayed from a resumed journal — and
    ``active`` lists the rules currently in breach.
    """

    def __init__(self, rules: Optional[Sequence[AlertRule]] = None,
                 on_event: Optional[Callable[[AlertEvent], None]] = None):
        self.rules: List[AlertRule] = list(
            built_in_rules() if rules is None else rules)
        names = [rule.name for rule in self.rules]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ObservabilityError(
                f"duplicate alert rule names: {', '.join(sorted(duplicates))}")
        self._on_event = on_event
        self._states: Dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in self.rules}
        self.history: List[Dict[str, Any]] = []

    # -- resume --------------------------------------------------------
    def replay(self, events: Sequence[Dict[str, Any]]) -> None:
        """Adopt journalled alert lines from a previous run segment."""
        for entry in events:
            record = {key: value for key, value in entry.items()
                      if key not in ("type", "crc")}
            record["replayed"] = True
            self.history.append(record)

    # -- evaluation ----------------------------------------------------
    @property
    def active(self) -> List[Dict[str, Any]]:
        """Currently-firing alerts, most severe information included."""
        out: List[Dict[str, Any]] = []
        by_name = {rule.name: rule for rule in self.rules}
        for name, state in self._states.items():
            if state.active:
                rule = by_name[name]
                out.append({"rule": name, "severity": rule.severity,
                            "condition": rule.describe()})
        return out

    def evaluate(self, sample: Dict[str, Any],
                 prev: Optional[Dict[str, Any]] = None
                 ) -> List[AlertEvent]:
        """Run every rule against one sample; returns fresh firings."""
        fired: List[AlertEvent] = []
        t = float(sample.get("t", 0.0))
        for rule in self.rules:
            state = self._states[rule.name]
            if rule.mode == "stall":
                breached, value = self._stall_breached(rule, state,
                                                       sample, t)
            else:
                observed = rule.observed(sample, prev)
                if observed is None:
                    continue
                value = observed
                breached = _OPS[rule.op](observed, rule.value)
            event = self._transition(rule, state, breached, t, value)
            if event is not None:
                fired.append(event)
        return fired

    def _stall_breached(self, rule: AlertRule, state: _RuleState,
                        sample: Dict[str, Any],
                        t: float) -> Tuple[bool, float]:
        current = _field_value(sample, rule.field)
        if current is None:
            return False, 0.0
        if state.last_value is None or current != state.last_value:
            state.last_value = current
            state.changed_at = t
            return False, 0.0
        stalled_s = t - state.changed_at
        pending = _field_value(sample, "pending")
        breached = (pending is not None and pending > 0
                    and stalled_s >= max(rule.for_s, 0.0))
        return breached, stalled_s

    def _transition(self, rule: AlertRule, state: _RuleState,
                    breached: bool, t: float,
                    value: float) -> Optional[AlertEvent]:
        if not breached:
            state.breach_since = None
            if state.active:
                state.active = False
                log.info("alert resolved: %s", rule.name)
            return None
        if state.breach_since is None:
            state.breach_since = t
        # Stall rules fold their sustain window into the breach test
        # itself; level/delta rules sustain here.
        sustain = 0.0 if rule.mode == "stall" else rule.for_s
        if state.active or t - state.breach_since < sustain:
            return None
        state.active = True
        event = AlertEvent(
            rule=rule.name, severity=rule.severity, t=t, value=value,
            threshold=rule.value,
            message=f"{rule.name}: {rule.describe()} "
                    f"(observed {value:g} at t={t:.1f}s)")
        self._fire(event)
        return event

    def _fire(self, event: AlertEvent) -> None:
        _FIRED.inc(rule=event.rule)
        TRACER.instant("alert", rule=event.rule,
                       severity=event.severity, value=event.value,
                       threshold=event.threshold)
        log.warning("ALERT %s [%s]: %s", event.rule, event.severity,
                    event.message)
        self.history.append(event.to_dict())
        if self._on_event is not None:
            self._on_event(event)
