"""Campaign time series: periodic samples of a running campaign.

A *sample* is one flat JSON object describing the campaign at a moment
in time — progress, instantaneous and smoothed throughput, cumulative
outcome counts, and the runtime-health counters PR 9 introduced (hangs,
retries, quarantines, compiled-backend fallbacks).  Samples are taken
at the engine's batch barriers (see ``DESIGN.md``: barrier-clock
sampling), throttled to a minimum spacing, and land in two places:

* a bounded in-memory ring buffer, which feeds the ``/status`` endpoint
  and the ``repro top`` sparkline;
* an append-only ``<journal>.tsdb`` JSONL sidecar using the journal's
  CRC-per-line convention (:func:`line_crc` / :func:`seal_line` live
  here and :mod:`repro.runtime.journal` imports them), so a crashed
  campaign leaves a loadable series and a resumed one extends it.

Unlike the journal, the time series is advisory telemetry: a corrupt
line anywhere is *dropped* on read rather than refused — losing a
sample never loses a result.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from . import metrics as obs_metrics

#: Suffix appended to a journal path to derive its time-series sidecar.
TSDB_SUFFIX = ".tsdb"

#: Default minimum spacing between samples, seconds.
DEFAULT_INTERVAL_S = 1.0

#: Default ring-buffer capacity (samples kept in memory for /status).
DEFAULT_CAPACITY = 512

#: EWMA weight of the newest instantaneous-throughput sample.
_EWMA_ALPHA = 0.3

#: Registry counters folded into every sample as campaign-relative
#: deltas (the registry is process-wide and outlives one campaign).
TRACKED_COUNTERS: Tuple[str, ...] = (
    "worker_hangs_total",
    "shard_retries_total",
    "faults_quarantined_total",
    "emu_backend_fallbacks_total",
    "chaos_injected_total",
    "alerts_fired_total",
)

#: Short sample-field names the tracked counters map onto.
COUNTER_FIELDS: Dict[str, str] = {
    "worker_hangs_total": "hangs",
    "shard_retries_total": "retries",
    "faults_quarantined_total": "quarantined",
    "emu_backend_fallbacks_total": "fallbacks",
    "chaos_injected_total": "chaos",
    "alerts_fired_total": "alerts",
}


def line_crc(entry: Dict[str, Any]) -> str:
    """CRC32 (hex) of an entry's canonical JSON, minus the crc itself."""
    payload = {key: value for key, value in entry.items() if key != "crc"}
    canonical = json.dumps(payload, sort_keys=True)
    return format(zlib.crc32(canonical.encode("utf-8")), "08x")


def seal_line(entry: Dict[str, Any]) -> str:
    """Serialise one journal/tsdb entry with its integrity checksum."""
    sealed = dict(entry)
    sealed["crc"] = line_crc(entry)
    return json.dumps(sealed, sort_keys=True)


def verify_line(raw: str) -> Optional[Dict[str, Any]]:
    """Parse one sealed line; ``None`` when torn or CRC-mismatched."""
    try:
        entry = json.loads(raw)
    except ValueError:
        return None
    if not isinstance(entry, dict):
        return None
    if "crc" in entry and entry["crc"] != line_crc(entry):
        return None
    return entry


class TsdbWriter:
    """Appends sealed sample lines with per-append durability.

    Mirrors :class:`repro.runtime.journal.JournalWriter`'s torn-tail
    discipline: opening truncates a partial final line in place so a
    crash signature never glues onto the next sample.
    """

    def __init__(self, path: str):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._truncate_torn_tail()
        self._handle = open(path, "a", encoding="utf-8")

    def _truncate_torn_tail(self) -> None:
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        if not data or data.endswith(b"\n"):
            return
        keep = data.rfind(b"\n") + 1  # 0 when no complete line exists
        with open(self.path, "r+b") as handle:
            handle.truncate(keep)

    def append(self, sample: Dict[str, Any]) -> None:
        self._handle.write(seal_line(sample) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TsdbWriter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def read_tsdb(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Read a time-series sidecar: ``(samples, dropped_lines)``.

    Any line that fails to parse or verify is dropped — a torn tail is
    the expected crash signature and interior rot only costs telemetry,
    never results.
    """
    if not os.path.exists(path):
        raise ObservabilityError(f"{path}: no such time-series file")
    samples: List[Dict[str, Any]] = []
    dropped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            raw = raw.strip()
            if not raw:
                continue
            entry = verify_line(raw)
            if entry is None:
                dropped += 1
                continue
            samples.append(entry)
    return samples, dropped


def tsdb_path_for(journal: str) -> str:
    """Sidecar path next to a journal (``out.jsonl`` -> ``out.jsonl.tsdb``)."""
    return journal + TSDB_SUFFIX


class TimeseriesSampler:
    """Builds throttled samples from campaign metrics snapshots.

    Fed :class:`~repro.runtime.metrics.MetricsSnapshot` objects at the
    engine's batch barriers; emits a sample at most every ``interval``
    seconds (barrier-clock sampling: the hot path never pays for a
    sample, only the parent's per-batch bookkeeping does).  Tracked
    registry counters are folded in as deltas against the baseline
    captured at construction, so one process running many campaigns
    reports per-campaign numbers.
    """

    def __init__(self, path: Optional[str] = None,
                 interval: float = DEFAULT_INTERVAL_S,
                 capacity: int = DEFAULT_CAPACITY,
                 clock: Callable[[], float] = time.monotonic,
                 registry: obs_metrics.MetricsRegistry = obs_metrics.REGISTRY):
        self.interval = max(0.0, interval)
        self.capacity = max(2, capacity)
        self._clock = clock
        self._registry = registry
        self._writer = TsdbWriter(path) if path else None
        self._started = clock()
        self._last_t: Optional[float] = None
        self._last_n = 0
        self.ewma: Optional[float] = None
        self.samples: List[Dict[str, Any]] = []
        self._baseline = {name: self._counter_total(name)
                          for name in TRACKED_COUNTERS}

    def _counter_total(self, name: str) -> float:
        metric = self._registry.get(name)
        total = getattr(metric, "total", None)
        return float(total()) if callable(total) else 0.0

    def _counter_fields(self) -> Dict[str, float]:
        return {COUNTER_FIELDS[name]:
                self._counter_total(name) - self._baseline[name]
                for name in TRACKED_COUNTERS}

    @property
    def last(self) -> Optional[Dict[str, Any]]:
        return self.samples[-1] if self.samples else None

    def sample(self, snapshot: Any,
               force: bool = False) -> Optional[Dict[str, Any]]:
        """Take one sample, or return ``None`` while throttled.

        ``snapshot`` is a :class:`~repro.runtime.metrics.MetricsSnapshot`
        (typed loosely to keep this module free of runtime imports).
        """
        now = self._clock()
        t = now - self._started
        if not force and self._last_t is not None \
                and t - self._last_t < self.interval:
            return None
        n = int(snapshot.completed) + int(snapshot.skipped)
        dt = t - self._last_t if self._last_t is not None else t
        dn = n - self._last_n
        inst = (dn / dt) if dt > 0 else 0.0
        self.ewma = inst if self.ewma is None else \
            _EWMA_ALPHA * inst + (1.0 - _EWMA_ALPHA) * self.ewma
        self._last_t, self._last_n = t, n
        entry: Dict[str, Any] = {
            "t": round(t, 4),
            "n": n,
            "completed": int(snapshot.completed),
            "skipped": int(snapshot.skipped),
            "pending": int(snapshot.pending),
            "total": int(snapshot.total),
            "total_exact": bool(snapshot.total_exact),
            "throughput": round(inst, 4),
            "ewma": round(self.ewma, 4),
            "emulated_s": round(float(snapshot.emulated_s), 4),
            "outcomes": dict(getattr(snapshot, "outcomes", {}) or {}),
            "phases": {name: round(seconds, 4) for name, seconds
                       in dict(snapshot.phases).items()},
        }
        for field, value in self._counter_fields().items():
            entry[field] = value
        self.samples.append(entry)
        if len(self.samples) > self.capacity:
            del self.samples[:len(self.samples) - self.capacity]
        if self._writer is not None:
            self._writer.append(entry)
        return entry

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
