"""Trace summarisation: ``repro obs summarize out.json``.

Turns a raw span stream back into the tables the paper reasons with:

* an **engine phase** table (setup / plan / golden / prune /
  experiments / aggregate)
  whose rows partition the parent process's campaign wall-clock — with
  ``--workers 4`` these still sum to the wall time, because they are
  measured in the parent;
* an **experiment phase** table (reconfigure / run / readback /
  classify) in *worker-seconds* of self time — with N workers this sums
  to roughly N× the experiments phase;
* a **per-mechanism** table totalling ``reconfigure`` spans by the
  Table 1 mechanism that produced them (ff-lsr, lut-rewrite, ...);
* a **per-backend** table splitting ``run``/``classify``/``experiment``
  time by the simulator backend (``reference`` vs ``compiled``) so
  mixed-backend traces expose where each engine spent its time.

Self time is computed from the explicit parent links the tracer records
(span ids are scoped per ``tid``/process, so the key is ``(tid, id)``),
not from timestamp containment.

Instant markers are tallied as **runtime events** (watchdog kills,
quarantines, shard retries/bisections, chaos injections, alert
firings), and ``repro obs summarize --tsdb`` folds in the campaign's
``.tsdb`` time series (peak/mean throughput, alert timeline).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .tracing import PARENT_TID

#: Instant-marker names surfaced in the runtime-events table, in
#: display order (foreign instants are tallied too, after these).
RUNTIME_EVENTS = ("watchdog_kill", "shard_retry", "shard_bisect",
                  "quarantine", "chaos", "alert")

#: Engine phases in execution order (children of the ``campaign`` span).
ENGINE_PHASES = ("setup", "plan", "golden", "prune", "experiments",
                 "aggregate")

#: Experiment phases in execution order (children of ``experiment``).
EXPERIMENT_PHASES = ("reconfigure", "run", "readback", "classify")


_SpanKey = Tuple[Any, Any]


def _span_key(event: Dict[str, Any]) -> Optional[_SpanKey]:
    span_id = event.get("args", {}).get("id")
    if span_id is None:
        return None
    return (event.get("tid"), span_id)


def summarize_trace(events: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace event list into per-phase/per-mechanism totals.

    All times are reported in seconds.  Complete (``"ph": "X"``) events
    feed the time tables; instant markers (``"ph": "i"``) are counted
    as runtime events.
    """
    spans = [event for event in events if event.get("ph") == "X"]
    runtime_events: Dict[str, int] = {}
    for event in events:
        if event.get("ph") == "i":
            name = str(event.get("name", "?"))
            runtime_events[name] = runtime_events.get(name, 0) + 1

    # Self time: a span's duration minus its direct children's.
    children_dur: Dict[_SpanKey, float] = {}
    for event in spans:
        parent = event.get("args", {}).get("parent")
        if parent is not None:
            key = (event.get("tid"), parent)
            children_dur[key] = (children_dur.get(key, 0.0)
                                 + event.get("dur", 0.0))

    def self_us(event: Dict[str, Any]) -> float:
        key = _span_key(event)
        child = children_dur.get(key, 0.0) if key else 0.0
        return max(0.0, event.get("dur", 0.0) - child)

    wall_us = 0.0
    engine: Dict[str, Dict[str, Any]] = {}
    phases: Dict[str, Dict[str, Any]] = {}
    mechanisms: Dict[str, Dict[str, Any]] = {}
    backends: Dict[str, Dict[str, Dict[str, Any]]] = {}
    experiments: Dict[str, Any] = {"count": 0, "total_s": 0.0}
    workers = set()

    for event in spans:
        name = event.get("name")
        dur_us = event.get("dur", 0.0)
        tid = event.get("tid")
        if tid not in (None, PARENT_TID):
            workers.add(tid)
        if name == "campaign":
            wall_us += dur_us
        elif name in ENGINE_PHASES and tid == PARENT_TID:
            row = engine.setdefault(name, {"total_s": 0.0, "count": 0})
            row["total_s"] += dur_us / 1e6
            row["count"] += 1
        elif name == "experiment":
            experiments["count"] += 1
            experiments["total_s"] += dur_us / 1e6
        if name in ("run", "classify", "experiment"):
            label = event.get("args", {}).get("backend", "reference")
            row = backends.setdefault(label, {}).setdefault(
                name, {"total_s": 0.0, "count": 0})
            row["total_s"] += dur_us / 1e6
            row["count"] += 1
        if name in EXPERIMENT_PHASES:
            row = phases.setdefault(name, {"self_s": 0.0, "total_s": 0.0,
                                           "count": 0})
            row["self_s"] += self_us(event) / 1e6
            row["total_s"] += dur_us / 1e6
            row["count"] += 1
            if name == "reconfigure":
                label = event.get("args", {}).get("mechanism", "?")
                mech = mechanisms.setdefault(
                    label, {"total_s": 0.0, "count": 0})
                mech["total_s"] += dur_us / 1e6
                mech["count"] += 1

    wall_s = wall_us / 1e6
    phase_sum = sum(row["total_s"] for row in engine.values())
    return {
        "wall_s": wall_s,
        "engine_phases": engine,
        "phase_coverage": (phase_sum / wall_s) if wall_s > 0 else 0.0,
        "experiment_phases": phases,
        "mechanisms": mechanisms,
        "backends": backends,
        "experiments": experiments,
        "workers": len(workers),
        "events": len(spans),
        "runtime_events": runtime_events,
    }


def summarize_timeseries(samples: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a ``.tsdb`` sample list for the summary's live section.

    Reports throughput statistics over the instantaneous per-sample
    rates plus the final cumulative health counters (they are
    monotonic within one sampler lifetime).
    """
    rates = [float(sample.get("throughput", 0.0)) for sample in samples]
    last = samples[-1] if samples else {}
    return {
        "samples": len(samples),
        "duration_s": float(last.get("t", 0.0)),
        "peak_throughput": max(rates) if rates else 0.0,
        "mean_throughput": (sum(rates) / len(rates)) if rates else 0.0,
        "final_ewma": float(last.get("ewma", 0.0)),
        "hangs": last.get("hangs", 0),
        "retries": last.get("retries", 0),
        "quarantined": last.get("quarantined", 0),
        "fallbacks": last.get("fallbacks", 0),
        "alerts": last.get("alerts", 0),
    }


def _fmt_s(seconds: float) -> str:
    return f"{seconds:10.3f}"


def render_summary(summary: Dict[str, Any],
                   timeseries: Optional[Dict[str, Any]] = None,
                   alerts: Optional[List[Dict[str, Any]]] = None) -> str:
    """Human-readable table for ``repro obs summarize``.

    ``timeseries`` is a :func:`summarize_timeseries` aggregate and
    ``alerts`` a list of journalled alert lines; both are optional
    extra sections (``--tsdb`` / ``--alerts``).
    """
    lines: List[str] = []
    wall = summary["wall_s"]
    lines.append(f"campaign wall-clock   {wall:.3f} s   "
                 f"({summary['events']} spans, "
                 f"{summary['workers']} worker streams)")
    lines.append("")

    engine = summary["engine_phases"]
    if engine:
        lines.append("engine phase      total (s)    share")
        lines.append("-" * 38)
        ordered = [name for name in ENGINE_PHASES if name in engine]
        ordered += sorted(set(engine) - set(ENGINE_PHASES))
        for name in ordered:
            row = engine[name]
            share = row["total_s"] / wall if wall > 0 else 0.0
            lines.append(f"{name:<14s} {_fmt_s(row['total_s'])}   "
                         f"{share:6.1%}")
        covered = sum(engine[name]["total_s"] for name in engine)
        share = covered / wall if wall > 0 else 0.0
        lines.append(f"{'(covered)':<14s} {_fmt_s(covered)}   "
                     f"{share:6.1%}")
        lines.append("")

    phases = summary["experiment_phases"]
    if phases:
        lines.append("experiment phase  self (s)     count   "
                     "mean (ms)   [worker-seconds]")
        lines.append("-" * 62)
        ordered = [name for name in EXPERIMENT_PHASES if name in phases]
        ordered += sorted(set(phases) - set(EXPERIMENT_PHASES))
        for name in ordered:
            row = phases[name]
            mean_ms = (row["total_s"] / row["count"] * 1e3
                       if row["count"] else 0.0)
            lines.append(f"{name:<14s} {_fmt_s(row['self_s'])}   "
                         f"{row['count']:7d}   {mean_ms:9.3f}")
        lines.append("")

    mechanisms = summary["mechanisms"]
    if mechanisms:
        lines.append("mechanism (Table 1)   reconfig (s)    count   "
                     "mean (ms)")
        lines.append("-" * 56)
        for label in sorted(mechanisms):
            row = mechanisms[label]
            mean_ms = (row["total_s"] / row["count"] * 1e3
                       if row["count"] else 0.0)
            lines.append(f"{label:<20s} {_fmt_s(row['total_s'])}     "
                         f"{row['count']:7d}   {mean_ms:9.3f}")
        lines.append("")

    backends = summary.get("backends", {})
    if len(backends) > 1 or "compiled" in backends:
        lines.append("backend        span          total (s)    count   "
                     "mean (ms)")
        lines.append("-" * 58)
        for label in sorted(backends):
            for name in ("experiment", "run", "classify"):
                row = backends[label].get(name)
                if not row:
                    continue
                mean_ms = (row["total_s"] / row["count"] * 1e3
                           if row["count"] else 0.0)
                lines.append(f"{label:<12s}   {name:<10s} "
                             f"{_fmt_s(row['total_s'])}   "
                             f"{row['count']:7d}   {mean_ms:9.3f}")
        lines.append("")

    experiments = summary["experiments"]
    if experiments["count"]:
        mean_ms = experiments["total_s"] / experiments["count"] * 1e3
        lines.append(f"experiments: {experiments['count']} spans, "
                     f"{experiments['total_s']:.3f} worker-seconds, "
                     f"mean {mean_ms:.3f} ms")

    runtime_events = summary.get("runtime_events") or {}
    if runtime_events:
        lines.append("")
        lines.append("runtime event         count")
        lines.append("-" * 27)
        ordered = [name for name in RUNTIME_EVENTS
                   if name in runtime_events]
        ordered += sorted(set(runtime_events) - set(RUNTIME_EVENTS))
        for name in ordered:
            lines.append(f"{name:<20s} {runtime_events[name]:6d}")

    if timeseries is not None:
        lines.append("")
        lines.append(f"time series: {timeseries['samples']} samples "
                     f"over {timeseries['duration_s']:.1f} s")
        lines.append(f"  throughput  peak {timeseries['peak_throughput']:.2f}"
                     f"  mean {timeseries['mean_throughput']:.2f}"
                     f"  final ewma {timeseries['final_ewma']:.2f}"
                     "  exp/s")
        health = [f"{name} {int(timeseries[name])}"
                  for name in ("hangs", "retries", "quarantined",
                               "fallbacks")
                  if timeseries.get(name)]
        if health:
            lines.append("  health      " + "  ".join(health))

    if alerts is not None:
        lines.append("")
        if not alerts:
            lines.append("alerts: none fired")
        else:
            lines.append(f"alert timeline ({len(alerts)} fired)")
            lines.append("-" * 48)
            for entry in alerts:
                replayed = " (replayed)" if entry.get("replayed") else ""
                lines.append(
                    f"  t={float(entry.get('t', 0.0)):8.1f}s  "
                    f"{str(entry.get('rule', '?')):<22s} "
                    f"[{entry.get('severity', '?')}]"
                    f"{replayed}")
    return "\n".join(lines)
