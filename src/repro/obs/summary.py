"""Trace summarisation: ``repro obs summarize out.json``.

Turns a raw span stream back into the tables the paper reasons with:

* an **engine phase** table (setup / plan / golden / prune /
  experiments / aggregate)
  whose rows partition the parent process's campaign wall-clock — with
  ``--workers 4`` these still sum to the wall time, because they are
  measured in the parent;
* an **experiment phase** table (reconfigure / run / readback /
  classify) in *worker-seconds* of self time — with N workers this sums
  to roughly N× the experiments phase;
* a **per-mechanism** table totalling ``reconfigure`` spans by the
  Table 1 mechanism that produced them (ff-lsr, lut-rewrite, ...);
* a **per-backend** table splitting ``run``/``classify``/``experiment``
  time by the simulator backend (``reference`` vs ``compiled``) so
  mixed-backend traces expose where each engine spent its time.

Self time is computed from the explicit parent links the tracer records
(span ids are scoped per ``tid``/process, so the key is ``(tid, id)``),
not from timestamp containment.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .tracing import PARENT_TID

#: Engine phases in execution order (children of the ``campaign`` span).
ENGINE_PHASES = ("setup", "plan", "golden", "prune", "experiments",
                 "aggregate")

#: Experiment phases in execution order (children of ``experiment``).
EXPERIMENT_PHASES = ("reconfigure", "run", "readback", "classify")


def _span_key(event: Dict) -> Optional[tuple]:
    span_id = event.get("args", {}).get("id")
    if span_id is None:
        return None
    return (event.get("tid"), span_id)


def summarize_trace(events: List[Dict]) -> Dict:
    """Aggregate a trace event list into per-phase/per-mechanism totals.

    All times are reported in seconds.  Only complete (``"ph": "X"``)
    events contribute; instants and foreign events are ignored.
    """
    spans = [event for event in events if event.get("ph") == "X"]

    # Self time: a span's duration minus its direct children's.
    children_dur: Dict[tuple, float] = {}
    for event in spans:
        parent = event.get("args", {}).get("parent")
        if parent is not None:
            key = (event.get("tid"), parent)
            children_dur[key] = (children_dur.get(key, 0.0)
                                 + event.get("dur", 0.0))

    def self_us(event: Dict) -> float:
        key = _span_key(event)
        child = children_dur.get(key, 0.0) if key else 0.0
        return max(0.0, event.get("dur", 0.0) - child)

    wall_us = 0.0
    engine: Dict[str, Dict] = {}
    phases: Dict[str, Dict] = {}
    mechanisms: Dict[str, Dict] = {}
    backends: Dict[str, Dict] = {}
    experiments = {"count": 0, "total_s": 0.0}
    workers = set()

    for event in spans:
        name = event.get("name")
        dur_us = event.get("dur", 0.0)
        tid = event.get("tid")
        if tid not in (None, PARENT_TID):
            workers.add(tid)
        if name == "campaign":
            wall_us += dur_us
        elif name in ENGINE_PHASES and tid == PARENT_TID:
            row = engine.setdefault(name, {"total_s": 0.0, "count": 0})
            row["total_s"] += dur_us / 1e6
            row["count"] += 1
        elif name == "experiment":
            experiments["count"] += 1
            experiments["total_s"] += dur_us / 1e6
        if name in ("run", "classify", "experiment"):
            label = event.get("args", {}).get("backend", "reference")
            row = backends.setdefault(label, {}).setdefault(
                name, {"total_s": 0.0, "count": 0})
            row["total_s"] += dur_us / 1e6
            row["count"] += 1
        if name in EXPERIMENT_PHASES:
            row = phases.setdefault(name, {"self_s": 0.0, "total_s": 0.0,
                                           "count": 0})
            row["self_s"] += self_us(event) / 1e6
            row["total_s"] += dur_us / 1e6
            row["count"] += 1
            if name == "reconfigure":
                label = event.get("args", {}).get("mechanism", "?")
                mech = mechanisms.setdefault(
                    label, {"total_s": 0.0, "count": 0})
                mech["total_s"] += dur_us / 1e6
                mech["count"] += 1

    wall_s = wall_us / 1e6
    phase_sum = sum(row["total_s"] for row in engine.values())
    return {
        "wall_s": wall_s,
        "engine_phases": engine,
        "phase_coverage": (phase_sum / wall_s) if wall_s > 0 else 0.0,
        "experiment_phases": phases,
        "mechanisms": mechanisms,
        "backends": backends,
        "experiments": experiments,
        "workers": len(workers),
        "events": len(spans),
    }


def _fmt_s(seconds: float) -> str:
    return f"{seconds:10.3f}"


def render_summary(summary: Dict) -> str:
    """Human-readable table for ``repro obs summarize``."""
    lines: List[str] = []
    wall = summary["wall_s"]
    lines.append(f"campaign wall-clock   {wall:.3f} s   "
                 f"({summary['events']} spans, "
                 f"{summary['workers']} worker streams)")
    lines.append("")

    engine = summary["engine_phases"]
    if engine:
        lines.append("engine phase      total (s)    share")
        lines.append("-" * 38)
        ordered = [name for name in ENGINE_PHASES if name in engine]
        ordered += sorted(set(engine) - set(ENGINE_PHASES))
        for name in ordered:
            row = engine[name]
            share = row["total_s"] / wall if wall > 0 else 0.0
            lines.append(f"{name:<14s} {_fmt_s(row['total_s'])}   "
                         f"{share:6.1%}")
        covered = sum(engine[name]["total_s"] for name in engine)
        share = covered / wall if wall > 0 else 0.0
        lines.append(f"{'(covered)':<14s} {_fmt_s(covered)}   "
                     f"{share:6.1%}")
        lines.append("")

    phases = summary["experiment_phases"]
    if phases:
        lines.append("experiment phase  self (s)     count   "
                     "mean (ms)   [worker-seconds]")
        lines.append("-" * 62)
        ordered = [name for name in EXPERIMENT_PHASES if name in phases]
        ordered += sorted(set(phases) - set(EXPERIMENT_PHASES))
        for name in ordered:
            row = phases[name]
            mean_ms = (row["total_s"] / row["count"] * 1e3
                       if row["count"] else 0.0)
            lines.append(f"{name:<14s} {_fmt_s(row['self_s'])}   "
                         f"{row['count']:7d}   {mean_ms:9.3f}")
        lines.append("")

    mechanisms = summary["mechanisms"]
    if mechanisms:
        lines.append("mechanism (Table 1)   reconfig (s)    count   "
                     "mean (ms)")
        lines.append("-" * 56)
        for label in sorted(mechanisms):
            row = mechanisms[label]
            mean_ms = (row["total_s"] / row["count"] * 1e3
                       if row["count"] else 0.0)
            lines.append(f"{label:<20s} {_fmt_s(row['total_s'])}     "
                         f"{row['count']:7d}   {mean_ms:9.3f}")
        lines.append("")

    backends = summary.get("backends", {})
    if len(backends) > 1 or "compiled" in backends:
        lines.append("backend        span          total (s)    count   "
                     "mean (ms)")
        lines.append("-" * 58)
        for label in sorted(backends):
            for name in ("experiment", "run", "classify"):
                row = backends[label].get(name)
                if not row:
                    continue
                mean_ms = (row["total_s"] / row["count"] * 1e3
                           if row["count"] else 0.0)
                lines.append(f"{label:<12s}   {name:<10s} "
                             f"{_fmt_s(row['total_s'])}   "
                             f"{row['count']:7d}   {mean_ms:9.3f}")
        lines.append("")

    experiments = summary["experiments"]
    if experiments["count"]:
        mean_ms = experiments["total_s"] / experiments["count"] * 1e3
        lines.append(f"experiments: {experiments['count']} spans, "
                     f"{experiments['total_s']:.3f} worker-seconds, "
                     f"mean {mean_ms:.3f} ms")
    return "\n".join(lines)
