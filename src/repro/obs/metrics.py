"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Instrumented modules register named metrics once (registration is
idempotent) and update them with label sets::

    _INJECTIONS = metrics.counter("injections_total")
    _INJECTIONS.inc(model="bitflip", target="ff")

    _RECONFIG = metrics.histogram("reconfig_seconds",
                                  buckets=RECONFIG_BUCKETS)
    _RECONFIG.observe(0.26, mechanism="ff-lsr")

Histogram buckets are cumulative upper bounds with Prometheus ``le``
(less-or-equal) semantics; a ``+Inf`` bucket is always appended.  Two
exporters are provided: :meth:`MetricsRegistry.render_text` (the
Prometheus text exposition format, the CLI's ``--metrics out.prom``)
and :meth:`MetricsRegistry.to_dict` (JSON).

Multiprocessing: each worker process owns a private copy of the
registry (it is plain module state).  The campaign scheduler ships
:meth:`~MetricsRegistry.to_state` snapshots back with every shard and
the parent :meth:`~MetricsRegistry.merge_state`\\ s them, so campaign
metrics aggregate across any worker count.  :meth:`~MetricsRegistry.reset`
zeroes values *in place* — metric handles held by instrumented modules
stay valid.
"""

from __future__ import annotations

import bisect
import json
import threading
from typing import Any, Dict, List, Optional, Tuple, Type, TypeVar

from ..errors import ObservabilityError

LabelKey = Tuple[Tuple[str, str], ...]

_MetricT = TypeVar("_MetricT", bound="_Metric")

#: Default histogram bounds (seconds): spans four orders of magnitude
#: around the board model's per-transaction latency.
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0)


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((name, str(value))
                        for name, value in labels.items()))


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Metric:
    """Shared registration identity of the three metric kinds."""

    kind = "metric"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help = help_text
        self._lock = threading.Lock()


class Counter(_Metric):
    """Monotonically increasing per-label-set totals."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()

    def _merge(self, series: Dict[LabelKey, float]) -> None:
        with self._lock:
            for key, value in series.items():
                self._values[key] = self._values.get(key, 0.0) + value


class Gauge(_Metric):
    """Last-written per-label-set values."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def series(self) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._values)

    def _reset(self) -> None:
        with self._lock:
            self._values.clear()

    def _merge(self, series: Dict[LabelKey, float]) -> None:
        with self._lock:
            self._values.update(series)


class Histogram(_Metric):
    """Fixed-bucket distribution with ``le`` (≤ bound) semantics."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ObservabilityError(
                f"histogram {self.name} needs at least one bucket")
        self.bounds = bounds  # +Inf overflow bucket is implicit
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.bounds) + 1)
            counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value

    # -- per-series views ---------------------------------------------
    def count(self, **labels: Any) -> int:
        return sum(self._counts.get(_label_key(labels), ()))

    def sum(self, **labels: Any) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def bucket_counts(self, **labels: Any) -> List[int]:
        """Per-bucket (non-cumulative) counts; last entry is ``+Inf``."""
        key = _label_key(labels)
        return list(self._counts.get(key, [0] * (len(self.bounds) + 1)))

    def cumulative_counts(self, **labels: Any) -> List[int]:
        """Cumulative ``le`` counts as the text exposition reports them."""
        total = 0
        cumulative: List[int] = []
        for count in self.bucket_counts(**labels):
            total += count
            cumulative.append(total)
        return cumulative

    def series(self) -> Dict[LabelKey, Dict[str, Any]]:
        with self._lock:
            return {key: {"counts": list(counts),
                          "sum": self._sums.get(key, 0.0)}
                    for key, counts in self._counts.items()}

    def _reset(self) -> None:
        with self._lock:
            self._counts.clear()
            self._sums.clear()

    def _merge(self, series: Dict[LabelKey, Dict[str, Any]]) -> None:
        with self._lock:
            for key, data in series.items():
                counts = self._counts.get(key)
                if counts is None:
                    counts = self._counts[key] = [0] * (len(self.bounds)
                                                        + 1)
                for index, count in enumerate(data["counts"]):
                    counts[index] += count
                self._sums[key] = self._sums.get(key, 0.0) + data["sum"]


class MetricsRegistry:
    """Names → metrics; the single aggregation point of a process."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration (idempotent) -------------------------------------
    def _register(self, name: str, kind: Type[_MetricT],
                  **kwargs: Any) -> _MetricT:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ObservabilityError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind.kind}")
                return existing
            metric = self._metrics[name] = kind(name, **kwargs)
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(name, Counter, help_text=help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(name, Gauge, help_text=help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> Histogram:
        return self._register(name, Histogram, help_text=help_text,
                              buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        """Zero every metric in place (handles stay registered)."""
        for metric in list(self._metrics.values()):
            metric._reset()

    # -- cross-process aggregation -------------------------------------
    def to_state(self) -> Dict[str, Dict[str, Any]]:
        """Picklable snapshot for shipping across process boundaries."""
        state: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in list(self._metrics.items()):
            if isinstance(metric, Counter):
                state["counters"][name] = metric.series()
            elif isinstance(metric, Gauge):
                state["gauges"][name] = metric.series()
            elif isinstance(metric, Histogram):
                state["histograms"][name] = {
                    "buckets": metric.bounds,
                    "series": metric.series(),
                }
        return state

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another process's snapshot into this registry."""
        for name, series in state.get("counters", {}).items():
            self.counter(name)._merge(series)
        for name, series in state.get("gauges", {}).items():
            self.gauge(name)._merge(series)
        for name, data in state.get("histograms", {}).items():
            self.histogram(name, buckets=tuple(data["buckets"])) \
                ._merge(data["series"])

    # -- exporters -----------------------------------------------------
    def render_text(self) -> str:
        """Prometheus text exposition format (``--metrics out.prom``)."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, (Counter, Gauge)):
                series = metric.series()
                for key in sorted(series):
                    lines.append(
                        f"{name}{_render_labels(key)} {series[key]:g}")
            elif isinstance(metric, Histogram):
                hseries = metric.series()
                bounds = [f"{bound:g}" for bound in metric.bounds]
                bounds.append("+Inf")
                for key in sorted(hseries):
                    total = 0
                    for bound_text, count in zip(
                            bounds, hseries[key]["counts"]):
                        total += count
                        le = f'le="{bound_text}"'
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels(key, le)} {total}")
                    lines.append(f"{name}_sum{_render_labels(key)} "
                                 f"{hseries[key]['sum']:g}")
                    lines.append(f"{name}_count{_render_labels(key)} "
                                 f"{total}")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible export of every metric and series."""
        out: Dict[str, Any] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, (Counter, Gauge)):
                out[name] = {
                    "kind": metric.kind,
                    "series": [{"labels": dict(key), "value": value}
                               for key, value
                               in sorted(metric.series().items())],
                }
            elif isinstance(metric, Histogram):
                out[name] = {
                    "kind": metric.kind,
                    "buckets": list(metric.bounds),
                    "series": [{"labels": dict(key),
                                "counts": data["counts"],
                                "sum": data["sum"]}
                               for key, data
                               in sorted(metric.series().items())],
                }
        return out

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


#: The process-wide registry every instrumented module records into.
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str = "") -> Counter:
    return REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> Gauge:
    return REGISTRY.gauge(name, help_text)


def histogram(name: str, help_text: str = "",
              buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> Histogram:
    return REGISTRY.histogram(name, help_text, buckets)
