"""Hierarchical spans over the injection pipeline.

The paper's whole argument is a *time* argument (table 2's speed-ups,
section 5's per-mechanism reconfiguration costs), so the reproduction
needs to see where an experiment's wall-clock actually goes.  A *span*
is one timed region with a name and attributes::

    with tracing.span("experiment", index=7, model="bitflip"):
        with tracing.span("reconfigure", mechanism="ff-lsr"):
            ...

Spans nest through a context-local current-span variable; each finished
span records its parent's id, so exporters and the summariser can
rebuild the hierarchy (and compute *self* time) without relying on
timestamp containment.

Design points:

* **Disabled by default, near-zero cost.**  The process-wide
  :data:`TRACER` starts disabled; a disabled ``span()`` yields without
  taking the lock or reading the clock, so the instrumented hot path
  (:mod:`repro.core.campaign`, :mod:`repro.runtime.jobspec`) stays
  within the overhead budget asserted by
  ``benchmarks/bench_obs_overhead.py``.
* **Multiprocessing-aware.**  Worker processes run their own tracer
  (span ids are scoped per ``tid``); the runtime scheduler drains worker
  events per shard and the parent merges them, tagging each worker's
  stream with its worker id (see :meth:`Tracer.drain` /
  :meth:`Tracer.adopt`).  ``time.monotonic`` is system-wide on the
  platforms we support, so timestamps from different processes share a
  timeline.
* **Chrome/Perfetto-compatible export.**  Events use the Trace Event
  ``"X"`` (complete) phase; the file layout is a JSON array written one
  event per line, which both ``chrome://tracing`` and Perfetto load
  (the closing bracket is optional in the Trace Event format) and which
  behaves like an append-only JSONL journal: a torn tail line — the
  crash signature — is dropped on read, exactly like
  :mod:`repro.runtime.journal` does.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import (Any, Callable, ContextManager, Dict, Iterator,
                    List, Optional)

from ..errors import ObservabilityError

#: ``tid`` used for spans recorded by the campaign's parent process.
PARENT_TID = 0


class Tracer:
    """Records spans as Chrome trace events; one instance per process."""

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 tid: int = PARENT_TID) -> None:
        self._clock = clock
        self.enabled = False
        self.tid = tid
        self._events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._next_id = 0
        self._current: contextvars.ContextVar[Optional[int]] = \
            contextvars.ContextVar("repro_obs_span", default=None)

    # -- lifecycle -----------------------------------------------------
    def enable(self, tid: Optional[int] = None) -> None:
        """Start recording spans (optionally under a new stream id)."""
        if tid is not None:
            self.tid = tid
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self, enabled: bool = False,
              tid: Optional[int] = None) -> None:
        """Drop all state (worker processes call this after ``fork`` so
        events inherited from the parent are not double-reported)."""
        with self._lock:
            self._events = []
            self._next_id = 0
        if tid is not None:
            self.tid = tid
        self.enabled = enabled

    # -- recording -----------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[int]]:
        """Time a region; yields the span id (``None`` when disabled)."""
        if not self.enabled:
            yield None
            return
        with self._lock:
            self._next_id += 1
            span_id = self._next_id
        parent = self._current.get()
        token = self._current.set(span_id)
        start = self._clock()
        try:
            yield span_id
        finally:
            duration = self._clock() - start
            self._current.reset(token)
            args = dict(attrs)
            args["id"] = span_id
            args["parent"] = parent
            event: Dict[str, Any] = {
                "name": name,
                "ph": "X",
                "pid": 1,
                "tid": self.tid,
                "ts": round(start * 1e6, 3),
                "dur": round(duration * 1e6, 3),
                "args": args,
            }
            with self._lock:
                self._events.append(event)

    def instant(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration marker event."""
        if not self.enabled:
            return
        event: Dict[str, Any] = {
            "name": name, "ph": "i", "pid": 1, "tid": self.tid,
            "ts": round(self._clock() * 1e6, 3), "s": "t",
            "args": dict(attrs)}
        with self._lock:
            self._events.append(event)

    # -- collection ----------------------------------------------------
    @property
    def events(self) -> List[Dict[str, Any]]:
        """Snapshot of the finished events recorded so far."""
        with self._lock:
            return list(self._events)

    def drain(self) -> List[Dict[str, Any]]:
        """Remove and return all finished events (worker shipping)."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def adopt(self, events: List[Dict[str, Any]],
              tid: Optional[int] = None) -> None:
        """Merge events drained from another process into this stream.

        ``tid`` relabels the adopted stream (the parent tags each
        worker's spans with the worker id so streams stay separable).
        """
        if tid is not None:
            events = [{**event, "tid": tid} for event in events]
        with self._lock:
            self._events.extend(events)


#: The process-wide tracer every instrumented module records into.
TRACER = Tracer()


def span(name: str, **attrs: Any) -> ContextManager[Optional[int]]:
    """Open a span on the process-wide tracer (the usual entry point)."""
    return TRACER.span(name, **attrs)


# ---------------------------------------------------------------------------
# Chrome-trace file format (JSON array, one event per line, torn-tail safe)
# ---------------------------------------------------------------------------
class TraceWriter:
    """Streams trace events to disk as they arrive.

    The engine keeps one of these open next to the journal (the *trace
    sidecar*) so a crashed campaign still leaves a loadable trace of
    everything that finished; ``append=True`` lets a resumed campaign
    extend the same file.
    """

    def __init__(self, path: str, append: bool = False) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fresh = (not append or not os.path.exists(path)
                 or os.path.getsize(path) == 0)
        self._handle = open(path, "a" if append else "w",
                            encoding="utf-8")
        if fresh:
            self._handle.write("[\n")
            self._handle.flush()

    def write(self, events: List[Dict[str, Any]]) -> None:
        for event in events:
            self._handle.write(json.dumps(event, sort_keys=True) + ",\n")
        if events:
            self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def write_trace(path: str, events: List[Dict[str, Any]]) -> None:
    """Write a complete trace file in one go (overwrites)."""
    with TraceWriter(path) as writer:
        writer.write(events)


def read_trace(path: str) -> List[Dict[str, Any]]:
    """Parse a trace file back into its event list.

    Like the journal reader, malformed lines are dropped rather than
    fatal: a torn tail line only loses the spans that were in flight
    when the process died.
    """
    if not os.path.exists(path):
        raise ObservabilityError(f"{path}: no such trace file")
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip().rstrip(",")
            if not line or line in "[]":
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail (or foreign garbage): drop
            if isinstance(entry, dict):
                events.append(entry)
    return events
