"""``repro obs diff A B`` — run-to-run regression comparison.

Compares two campaign runs and reports what moved; past
``--regress-pct`` a *regression* (slower throughput, longer phases,
shifted outcome rates) makes the command exit non-zero, which is the
reusable check benchmarks and CI hang their gates on.

Each side loads from either artefact a run leaves behind:

* a ``.tsdb`` time-series sidecar (``<journal>.tsdb``) — throughput
  statistics, final health counters, outcome counts, phase seconds;
* a ``repro obs summarize --json`` output file — engine-phase seconds
  and experiment counts.

The two are normalised onto one profile shape; metrics present on only
one side are reported but never judged.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import ObservabilityError
from .summary import summarize_timeseries
from .timeseries import TSDB_SUFFIX, read_tsdb

#: Ignore absolute movements smaller than this (seconds or exp/s):
#: percentage noise on near-zero baselines is not a regression signal.
_FLOOR = 1e-3


@dataclass
class RunProfile:
    """Comparable facts about one finished run."""

    path: str
    #: exp/s, higher is better.
    throughput: Optional[float] = None
    peak_throughput: Optional[float] = None
    #: phase name -> seconds, lower is better.
    phase_s: Dict[str, float] = field(default_factory=dict)
    #: outcome name -> fraction of experiments, drift either way counts.
    outcome_rates: Dict[str, float] = field(default_factory=dict)
    experiments: Optional[int] = None


@dataclass(frozen=True)
class Delta:
    """One compared metric; ``regressed`` judged against a threshold."""

    metric: str
    before: float
    after: float
    change_pct: float
    regressed: bool

    def render(self) -> str:
        marker = "REGRESSED" if self.regressed else "ok"
        return (f"{self.metric:<28s} {self.before:10.4f} -> "
                f"{self.after:10.4f}  {self.change_pct:+7.1f}%  {marker}")


def load_profile(path: str) -> RunProfile:
    """Load one comparison side; dispatch on file content, not name."""
    if not os.path.exists(path):
        raise ObservabilityError(f"{path}: no such run artefact")
    if path.endswith(TSDB_SUFFIX):
        return _profile_from_tsdb(path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except ValueError:
        # Not a JSON document: could still be a tsdb without the
        # conventional suffix (JSONL never parses as one document).
        return _profile_from_tsdb(path)
    if not isinstance(payload, dict):
        raise ObservabilityError(
            f"{path}: not a run summary (expected a JSON object)")
    return _profile_from_summary(path, payload)


def _profile_from_tsdb(path: str) -> RunProfile:
    samples, _dropped = read_tsdb(path)
    if not samples:
        raise ObservabilityError(f"{path}: time series has no samples")
    aggregate = summarize_timeseries(samples)
    last = samples[-1]
    profile = RunProfile(
        path=path,
        throughput=aggregate["mean_throughput"],
        peak_throughput=aggregate["peak_throughput"],
        phase_s={str(name): float(seconds) for name, seconds
                 in dict(last.get("phases") or {}).items()},
        experiments=int(last.get("n", 0)))
    outcomes = {str(name): int(count) for name, count
                in dict(last.get("outcomes") or {}).items()}
    total = sum(outcomes.values())
    if total > 0:
        profile.outcome_rates = {name: count / total
                                 for name, count in outcomes.items()}
    return profile


def _profile_from_summary(path: str, payload: Dict[str, Any]) -> RunProfile:
    if "engine_phases" not in payload:
        raise ObservabilityError(
            f"{path}: not a 'repro obs summarize --json' output or "
            f"{TSDB_SUFFIX} time series")
    profile = RunProfile(path=path)
    profile.phase_s = {
        str(name): float(row.get("total_s", 0.0))
        for name, row in dict(payload["engine_phases"]).items()}
    experiments = payload.get("experiments") or {}
    count = int(experiments.get("count", 0))
    if count:
        profile.experiments = count
        wall = float(payload.get("wall_s", 0.0))
        if wall > 0:
            profile.throughput = count / wall
    return profile


def _pct(before: float, after: float) -> float:
    if before == 0.0:
        return 0.0 if after == 0.0 else float("inf")
    return (after - before) / abs(before) * 100.0


def compare(before: RunProfile, after: RunProfile,
            regress_pct: float) -> List[Delta]:
    """Judge every metric both profiles carry."""
    deltas: List[Delta] = []

    def judge(metric: str, old: float, new: float,
              bad_direction: int) -> None:
        # bad_direction: +1 when an increase is a regression (phase
        # seconds), -1 when a decrease is (throughput), 0 when drift
        # either way is (outcome rates).
        change = _pct(old, new)
        moved = abs(new - old) >= _FLOOR
        if bad_direction > 0:
            bad = change > regress_pct
        elif bad_direction < 0:
            bad = change < -regress_pct
        else:
            bad = abs(change) > regress_pct
        deltas.append(Delta(metric=metric, before=old, after=new,
                            change_pct=0.0 if change == float("inf")
                            else change,
                            regressed=bool(bad and moved)))

    if before.throughput is not None and after.throughput is not None:
        judge("throughput (exp/s)", before.throughput,
              after.throughput, bad_direction=-1)
    if before.peak_throughput is not None \
            and after.peak_throughput is not None:
        judge("peak throughput (exp/s)", before.peak_throughput,
              after.peak_throughput, bad_direction=-1)
    for name in sorted(set(before.phase_s) & set(after.phase_s)):
        judge(f"phase {name} (s)", before.phase_s[name],
              after.phase_s[name], bad_direction=+1)
    for name in sorted(set(before.outcome_rates)
                       | set(after.outcome_rates)):
        judge(f"outcome {name} (rate)",
              before.outcome_rates.get(name, 0.0),
              after.outcome_rates.get(name, 0.0), bad_direction=0)
    return deltas


def render_diff(before: RunProfile, after: RunProfile,
                deltas: List[Delta], regress_pct: float) -> str:
    lines = [f"run diff: {before.path} -> {after.path} "
             f"(threshold {regress_pct:g}%)"]
    if before.experiments is not None and after.experiments is not None:
        lines.append(f"experiments: {before.experiments} -> "
                     f"{after.experiments}")
    if not deltas:
        lines.append("no comparable metrics between the two artefacts")
        return "\n".join(lines)
    lines.append("")
    lines.append(f"{'metric':<28s} {'before':>10s}    {'after':>10s}  "
                 f"{'change':>8s}")
    lines.append("-" * 62)
    lines.extend(delta.render() for delta in deltas)
    regressed = [delta for delta in deltas if delta.regressed]
    lines.append("")
    lines.append(f"{len(regressed)} regression"
                 f"{'s' if len(regressed) != 1 else ''} past "
                 f"{regress_pct:g}%"
                 + (": " + ", ".join(delta.metric
                                     for delta in regressed)
                    if regressed else ""))
    return "\n".join(lines)


def diff_runs(path_a: str, path_b: str,
              regress_pct: float = 10.0
              ) -> Tuple[str, bool]:
    """Full pipeline: load, compare, render; ``(report, regressed)``."""
    before = load_profile(path_a)
    after = load_profile(path_b)
    deltas = compare(before, after, regress_pct)
    report = render_diff(before, after, deltas, regress_pct)
    return report, any(delta.regressed for delta in deltas)
