"""Opt-in background HTTP exporter for a running campaign.

``repro campaign --serve-obs [HOST:]PORT`` starts one of these on a
daemon thread for the lifetime of the campaign.  Three endpoints:

``/metrics``
    The process-wide metrics registry in Prometheus text exposition
    format.  Worker snapshots merge into the registry at shard barriers
    (see :mod:`repro.runtime.scheduler`), so the scrape reflects every
    finished shard with no extra synchronisation.
``/status``
    A JSON snapshot of the campaign: label, progress against the
    budget, per-outcome counts, runtime-health counters, worker
    liveness, EWMA throughput/ETA, active alerts, and the recent
    throughput series ``repro top`` renders as a sparkline.
``/healthz``
    Plain ``ok`` — liveness for load balancers and CI curls.

The server binds before the campaign starts (a bad ``--serve-obs`` spec
fails fast) and serves each request on its own thread, so a slow
scraper can never stall the scheduler.  Port 0 binds an ephemeral port;
the bound address is logged and exposed via :func:`current` so tests
and tooling can discover it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ObservabilityError
from . import metrics as obs_metrics
from .logsetup import get_logger

log = get_logger("repro.obs.server")

#: Prometheus text exposition content type.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Provider of the ``/status`` payload (the engine wires one in).
StatusProvider = Callable[[], Dict[str, Any]]

_current: Optional["ObsServer"] = None
_current_lock = threading.Lock()


def current() -> Optional["ObsServer"]:
    """The most recently started (still-running) server, if any."""
    return _current


def parse_serve_spec(spec: str) -> Tuple[str, int]:
    """``[HOST:]PORT`` -> ``(host, port)``; bare ports bind loopback."""
    text = str(spec).strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "127.0.0.1", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError as error:
        raise ObservabilityError(
            f"bad --serve-obs spec {spec!r} "
            "(expected [HOST:]PORT)") from error
    if not 0 <= port <= 65535:
        raise ObservabilityError(
            f"bad --serve-obs port {port} (expected 0-65535)")
    return host, port


class _Handler(BaseHTTPRequestHandler):
    """Routes the three endpoints; everything else is a 404."""

    server: "_Server"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            self._reply(200, self.server.registry.render_text(),
                        METRICS_CONTENT_TYPE)
        elif path == "/healthz":
            self._reply(200, "ok\n", "text/plain; charset=utf-8")
        elif path == "/status":
            try:
                payload = self.server.status_provider()
                body = json.dumps(payload, indent=2, sort_keys=True,
                                  default=str) + "\n"
            except Exception as error:  # pragma: no cover - defensive
                self._reply(500, f"status unavailable: {error}\n",
                            "text/plain; charset=utf-8")
                return
            self._reply(200, body, "application/json")
        else:
            self._reply(404, "not found (try /metrics, /status, "
                             "/healthz)\n", "text/plain; charset=utf-8")

    def _reply(self, code: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, format: str, *args: Any) -> None:
        # Route http.server's stderr chatter through the repro logger
        # at debug level (scrapes are routine, not diagnostics).
        log.debug("%s %s", self.address_string(), format % args)


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the handler's dependencies."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int],
                 status_provider: StatusProvider,
                 registry: obs_metrics.MetricsRegistry):
        super().__init__(address, _Handler)
        self.status_provider = status_provider
        self.registry = registry


class ObsServer:
    """Lifecycle wrapper: bind, serve on a daemon thread, shut down."""

    def __init__(self, spec: str, status_provider: StatusProvider,
                 registry: obs_metrics.MetricsRegistry
                 = obs_metrics.REGISTRY):
        host, port = parse_serve_spec(spec)
        try:
            self._server = _Server((host, port), status_provider,
                                   registry)
        except OSError as error:
            raise ObservabilityError(
                f"cannot bind --serve-obs {spec!r}: {error}") from error
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ObsServer":
        global _current
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-obs-server", daemon=True)
        self._thread.start()
        with _current_lock:
            _current = self
        log.info("observability endpoint serving on %s "
                 "(/metrics /status /healthz)", self.url)
        return self

    def close(self) -> None:
        global _current
        with _current_lock:
            if _current is self:
                _current = None
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "ObsServer":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
