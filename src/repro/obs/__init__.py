"""Observability layer: tracing, metrics, logging, profiling.

The paper's claims are time claims, so the reproduction instruments its
own injection pipeline:

* :mod:`~repro.obs.tracing` — hierarchical spans over the hot path,
  exported in Chrome/Perfetto trace format (``--trace out.json``);
* :mod:`~repro.obs.metrics` — process-wide counters/gauges/histograms
  with Prometheus-text and JSON exporters (``--metrics out.prom``);
* :mod:`~repro.obs.logsetup` — the ``repro.*`` structured-logging
  hierarchy behind ``--log-level`` / ``--log-json``;
* :mod:`~repro.obs.profile` — opt-in cProfile phase hooks
  (``--profile prefix`` → ``prefix.<phase>.pstats``);
* :mod:`~repro.obs.summary` — ``repro obs summarize``, the per-phase /
  per-mechanism time table comparable to the paper's Table 2;
* :mod:`~repro.obs.timeseries` — the campaign time-series sampler and
  its crash-safe ``.tsdb`` sidecar (also home of the CRC-per-line
  convention the journal shares);
* :mod:`~repro.obs.alerts` — declarative threshold alert rules over
  the sample stream (``--alert`` / ``--alert-rules``);
* :mod:`~repro.obs.server` — the ``--serve-obs`` HTTP exporter
  (``/metrics``, ``/status``, ``/healthz``);
* :mod:`~repro.obs.live` — ``repro top``, the terminal dashboard;
* :mod:`~repro.obs.rundiff` — ``repro obs diff``, run-to-run
  regression comparison.
"""

from . import (alerts, live, logsetup, metrics, profile, rundiff,
               server, summary, timeseries, tracing)
from .alerts import AlertEngine, AlertEvent, AlertRule, built_in_rules
from .logsetup import console, get_logger, setup_logging
from .metrics import REGISTRY, MetricsRegistry
from .profile import PhaseProfiler
from .server import ObsServer
from .summary import (render_summary, summarize_timeseries,
                      summarize_trace)
from .timeseries import TimeseriesSampler, TsdbWriter, read_tsdb
from .tracing import (TRACER, Tracer, TraceWriter, read_trace, span,
                      write_trace)

__all__ = [
    "tracing", "metrics", "logsetup", "profile", "summary",
    "timeseries", "alerts", "server", "live", "rundiff",
    "TRACER", "Tracer", "TraceWriter", "span", "read_trace",
    "write_trace", "REGISTRY", "MetricsRegistry",
    "setup_logging", "get_logger", "console",
    "PhaseProfiler", "summarize_trace", "summarize_timeseries",
    "render_summary",
    "AlertEngine", "AlertEvent", "AlertRule", "built_in_rules",
    "ObsServer", "TimeseriesSampler", "TsdbWriter", "read_tsdb",
]
