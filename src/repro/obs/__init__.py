"""Observability layer: tracing, metrics, logging, profiling.

The paper's claims are time claims, so the reproduction instruments its
own injection pipeline:

* :mod:`~repro.obs.tracing` — hierarchical spans over the hot path,
  exported in Chrome/Perfetto trace format (``--trace out.json``);
* :mod:`~repro.obs.metrics` — process-wide counters/gauges/histograms
  with Prometheus-text and JSON exporters (``--metrics out.prom``);
* :mod:`~repro.obs.logsetup` — the ``repro.*`` structured-logging
  hierarchy behind ``--log-level`` / ``--log-json``;
* :mod:`~repro.obs.profile` — opt-in cProfile phase hooks
  (``--profile prefix`` → ``prefix.<phase>.pstats``);
* :mod:`~repro.obs.summary` — ``repro obs summarize``, the per-phase /
  per-mechanism time table comparable to the paper's Table 2.
"""

from . import logsetup, metrics, profile, summary, tracing
from .logsetup import console, get_logger, setup_logging
from .metrics import REGISTRY, MetricsRegistry
from .profile import PhaseProfiler
from .summary import render_summary, summarize_trace
from .tracing import (TRACER, Tracer, TraceWriter, read_trace, span,
                      write_trace)

__all__ = [
    "tracing", "metrics", "logsetup", "profile", "summary",
    "TRACER", "Tracer", "TraceWriter", "span", "read_trace",
    "write_trace", "REGISTRY", "MetricsRegistry",
    "setup_logging", "get_logger", "console",
    "PhaseProfiler", "summarize_trace", "render_summary",
]
