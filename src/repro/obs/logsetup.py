"""Structured logging for the ``repro.*`` logger hierarchy.

Every module logs through ``get_logger(__name__)``; the CLI calls
:func:`setup_logging` once per invocation to attach a stderr handler to
the ``repro`` root logger with either a human-readable or a JSON-lines
formatter (``--log-level`` / ``--log-json``).  Final report tables go
through :func:`console` — the one sanctioned stdout channel — so that
with ``--log-json`` everything on stderr is machine-parsable and stdout
carries only the deliverable.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Any, Dict, Optional, TextIO

ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS level logger: message`` — levels lowercased."""

    def format(self, record: logging.LogRecord) -> str:
        stamp = time.strftime("%H:%M:%S",
                              time.localtime(record.created))
        text = record.getMessage()
        if record.exc_info:
            text = f"{text}\n{self.formatException(record.exc_info)}"
        return (f"{stamp} {record.levelname.lower():7s} "
                f"{record.name}: {text}")


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg (+ extras)."""

    def format(self, record: logging.LogRecord) -> str:
        entry: Dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        if record.exc_info:
            entry["exc"] = self.formatException(record.exc_info)
        extra = getattr(record, "fields", None)
        if isinstance(extra, dict):
            entry.update(extra)
        return json.dumps(entry, sort_keys=True, default=str)


def setup_logging(level: str = "info", json_mode: bool = False,
                  stream: Optional[TextIO] = None) -> logging.Logger:
    """(Re)configure the ``repro`` root logger.

    Handlers are replaced — not appended — on every call, and a fresh
    handler is built around the *current* ``sys.stderr`` so output
    lands wherever stderr points right now (pytest redirects it per
    test).
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(_LEVELS.get(str(level).lower(), logging.INFO))
    logger.propagate = False
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
        handler.close()
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_mode
                         else HumanFormatter())
    logger.addHandler(handler)
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` hierarchy.

    Accepts either a module ``__name__`` (already ``repro.``-prefixed)
    or a bare suffix like ``"cli"``.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def console(text: str = "") -> None:
    """Write a final-deliverable line to stdout.

    This is the *only* sanctioned stdout channel in ``src/`` (report
    tables, ``--json`` payloads); everything diagnostic goes through
    logging to stderr.
    """
    sys.stdout.write(text + "\n")
