"""Opt-in cProfile hooks around campaign phases.

Tracing answers *where the wall-clock goes between phases*; profiling
answers *where a single phase spends it, function by function*.  The
engine wraps each campaign phase in :meth:`PhaseProfiler.phase` when
``repro campaign --profile PREFIX`` is given, writing one standard
``.pstats`` artifact per phase::

    repro campaign ... --profile prof/run
    python -m pstats prof/run.experiments.pstats

Profiling is heavyweight (cProfile instruments every call), so it is
strictly opt-in and never enabled together with the overhead-sensitive
benchmark path.
"""

from __future__ import annotations

import cProfile
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional


class PhaseProfiler:
    """Profiles named phases, dumping ``<prefix>.<phase>.pstats``."""

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self.timings: Dict[str, float] = {}
        directory = os.path.dirname(os.path.abspath(prefix))
        os.makedirs(directory, exist_ok=True)

    def path_for(self, name: str) -> str:
        return f"{self.prefix}.{name}.pstats"

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        profiler = cProfile.Profile()
        start = time.perf_counter()
        profiler.enable()
        try:
            yield
        finally:
            profiler.disable()
            self.timings[name] = (self.timings.get(name, 0.0)
                                  + time.perf_counter() - start)
            profiler.dump_stats(self.path_for(name))


@contextmanager
def maybe_profile(profiler: Optional[PhaseProfiler],
                  name: str) -> Iterator[None]:
    """Wrap a region in a profiler phase, or do nothing when disabled."""
    if profiler is None:
        yield
    else:
        with profiler.phase(name):
            yield
