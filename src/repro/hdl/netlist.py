"""Gate-level netlist intermediate representation.

An elaborated HDL model is a :class:`Netlist`: a feed-forward network of
simple gates between state elements (D flip-flops and synchronous memory
blocks), with named primary inputs and outputs.  This is the common currency
of the reproduction:

* the RTL builder (:mod:`repro.hdl.rtl`) elaborates word-level descriptions
  into a ``Netlist``;
* the model-level simulators (:mod:`repro.hdl.simulator`) execute it directly
  — this is where VFIT's simulator-command injection operates;
* synthesis (:mod:`repro.synth`) optimises it and technology-maps it onto
  4-input LUTs for the FPGA substrate.

Nets are dense integer identifiers.  Net ``0`` is the constant ``'0'`` and
net ``1`` the constant ``'1'``.  Gates are stored in *emission order*, which
the builder guarantees to be topological (every gate input is produced
earlier); :meth:`Netlist.check` verifies this invariant.

All state elements share one implicit global clock, matching the paper's
fully synchronous target model (section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ElaborationError

CONST0 = 0
CONST1 = 1

# Gate kinds.  Every gate has at most three inputs so that technology
# mapping can always fit a single gate into one 4-input LUT.
GATE_KINDS = ("BUF", "NOT", "AND", "OR", "XOR", "NAND", "NOR", "XNOR", "MUX")

# Truth tables indexed little-endian by the input vector:
# bit (i0 + 2*i1 + 4*i2) of the table is the output value.
_KIND_TT = {
    "BUF": 0b10,
    "NOT": 0b01,
    "AND": 0b1000,
    "OR": 0b1110,
    "XOR": 0b0110,
    "NAND": 0b0111,
    "NOR": 0b0001,
    "XNOR": 0b1001,
    # MUX inputs are (sel, if0, if1): out = if0 when sel=0 else if1.
    # Index = sel + 2*if0 + 4*if1, so the table reads 0b11100100.
    "MUX": 0b11100100,
}

_KIND_ARITY = {
    "BUF": 1,
    "NOT": 1,
    "AND": 2,
    "OR": 2,
    "XOR": 2,
    "NAND": 2,
    "NOR": 2,
    "XNOR": 2,
    "MUX": 3,
}


def kind_truth_table(kind: str) -> int:
    """Return the little-endian truth table of a gate *kind*."""
    return _KIND_TT[kind]


def kind_arity(kind: str) -> int:
    """Return the number of inputs a gate *kind* takes."""
    return _KIND_ARITY[kind]


@dataclass
class Gate:
    """A combinational gate.

    ``tt`` is the little-endian truth table over ``ins`` (input ``ins[0]``
    is the least-significant index bit), redundant with ``kind`` but kept so
    that evaluation and cone extraction never dispatch on strings.
    """

    out: int
    kind: str
    ins: Tuple[int, ...]
    tt: int
    unit: str = ""

    def eval(self, values: Sequence[int]) -> int:
        """Evaluate the gate over binary input *values* (indexed by net)."""
        index = 0
        for position, net in enumerate(self.ins):
            if values[net]:
                index |= 1 << position
        return (self.tt >> index) & 1


@dataclass
class Dff:
    """A D flip-flop clocked by the implicit global clock.

    ``init`` is the power-up / global-set-reset value; the FPGA substrate
    maps it onto the CB's ``PRMux``/``CLRMux`` configuration.
    """

    q: int
    d: int = -1
    init: int = 0
    name: str = ""
    unit: str = ""

    @property
    def driven(self) -> bool:
        """Whether :attr:`d` has been connected."""
        return self.d >= 0


@dataclass
class Bram:
    """A synchronous memory block (RAM or ROM).

    Semantics per clock edge, matching embedded FPGA memory blocks:

    * if ``we`` is high, ``data[waddr] <= wdata`` (write);
    * ``rdata <= data[raddr]`` using the *pre-write* contents (read-first).

    ROMs simply never assert ``we``.  ``rdata`` nets are state outputs,
    available — like flip-flop outputs — at the start of the next cycle.
    """

    name: str
    depth: int
    width: int
    raddr: Tuple[int, ...] = ()
    rdata: Tuple[int, ...] = ()
    waddr: Tuple[int, ...] = ()
    wdata: Tuple[int, ...] = ()
    we: int = CONST0
    init: List[int] = field(default_factory=list)
    rom: bool = False
    unit: str = ""

    @property
    def addr_bits(self) -> int:
        """Number of address bits implied by :attr:`depth`."""
        bits = 0
        while (1 << bits) < self.depth:
            bits += 1
        return bits


class Netlist:
    """A complete gate-level design.

    Attributes
    ----------
    gates:
        Combinational gates in topological (emission) order.
    dffs:
        State flip-flops; ``dffs[i].q`` nets are produced "before" all gates.
    brams:
        Synchronous memory blocks.
    inputs / outputs:
        Ordered name -> net-list maps for the primary ports.
    names:
        HDL-visible signal names (ports, registers, intermediate signals the
        designer chose to expose) mapped to their nets.  This is what VFIT
        targets and what the fault-location process starts from.
    """

    def __init__(self, name: str = "top"):
        self.name = name
        self.n_nets = 2  # nets 0/1 are the constants
        self.gates: List[Gate] = []
        self.dffs: List[Dff] = []
        self.brams: List[Bram] = []
        self.inputs: Dict[str, List[int]] = {}
        self.outputs: Dict[str, List[int]] = {}
        self.names: Dict[str, List[int]] = {}
        self.name_units: Dict[str, str] = {}
        self._driver: Dict[int, str] = {CONST0: "const", CONST1: "const"}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def new_net(self) -> int:
        """Allocate a fresh, as-yet undriven net identifier."""
        net = self.n_nets
        self.n_nets += 1
        return net

    def new_nets(self, count: int) -> List[int]:
        """Allocate *count* fresh nets."""
        return [self.new_net() for _ in range(count)]

    def add_gate(self, kind: str, ins: Sequence[int], unit: str = "",
                 tt: Optional[int] = None) -> int:
        """Emit a gate and return its output net.

        A custom truth table *tt* may be supplied for ``kind='LUT'``-style
        gates produced by lowering; otherwise the canonical table of the
        kind is used.
        """
        if tt is None:
            tt = _KIND_TT[kind]
            if len(ins) != _KIND_ARITY[kind]:
                raise ElaborationError(
                    f"gate {kind} expects {_KIND_ARITY[kind]} inputs, "
                    f"got {len(ins)}")
        for net in ins:
            if net >= self.n_nets:
                raise ElaborationError(f"gate input net {net} does not exist")
        out = self.new_net()
        self.gates.append(Gate(out, kind, tuple(ins), tt, unit))
        self._driver[out] = "gate"
        return out

    def add_dff(self, init: int = 0, name: str = "", unit: str = "") -> Dff:
        """Create a flip-flop; its ``d`` input is connected later."""
        q = self.new_net()
        dff = Dff(q=q, init=init, name=name, unit=unit)
        self.dffs.append(dff)
        self._driver[q] = "dff"
        return dff

    def add_bram(self, bram: Bram) -> Bram:
        """Register a memory block whose port nets were already allocated."""
        self.brams.append(bram)
        for net in bram.rdata:
            self._driver[net] = "bram"
        return bram

    def add_input(self, name: str, nets: Sequence[int]) -> None:
        """Declare primary input *name* over freshly allocated *nets*."""
        if name in self.inputs:
            raise ElaborationError(f"duplicate input {name!r}")
        self.inputs[name] = list(nets)
        for net in nets:
            self._driver[net] = "input"

    def add_output(self, name: str, nets: Sequence[int]) -> None:
        """Declare primary output *name* reading the given *nets*."""
        if name in self.outputs:
            raise ElaborationError(f"duplicate output {name!r}")
        self.outputs[name] = list(nets)

    def add_name(self, name: str, nets: Sequence[int], unit: str = "") -> None:
        """Expose *nets* under an HDL-visible signal *name*."""
        if name in self.names:
            raise ElaborationError(f"duplicate signal name {name!r}")
        self.names[name] = list(nets)
        self.name_units[name] = unit

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def driver_kind(self, net: int) -> str:
        """Return what drives *net*: ``const/input/gate/dff/bram`` or ``''``."""
        return self._driver.get(net, "")

    def fanout_counts(self) -> List[int]:
        """Number of gate/FF/BRAM/output readers of every net."""
        counts = [0] * self.n_nets
        for gate in self.gates:
            for net in gate.ins:
                counts[net] += 1
        for dff in self.dffs:
            if dff.driven:
                counts[dff.d] += 1
        for bram in self.brams:
            for net in (*bram.raddr, *bram.waddr, *bram.wdata, bram.we):
                counts[net] += 1
        for nets in self.outputs.values():
            for net in nets:
                counts[net] += 1
        return counts

    def levels(self) -> List[int]:
        """Logic depth of each net (state/inputs/constants are level 0)."""
        level = [0] * self.n_nets
        for gate in self.gates:
            level[gate.out] = 1 + max((level[n] for n in gate.ins), default=0)
        return level

    def stats(self) -> Dict[str, int]:
        """Size summary used by reports and the VFIT cost model."""
        return {
            "nets": self.n_nets,
            "gates": len(self.gates),
            "dffs": len(self.dffs),
            "brams": len(self.brams),
            "bram_bits": sum(b.depth * b.width for b in self.brams),
            "inputs": sum(len(v) for v in self.inputs.values()),
            "outputs": sum(len(v) for v in self.outputs.values()),
            "depth": max(self.levels(), default=0),
        }

    def check(self) -> None:
        """Validate structural invariants; raise :class:`ElaborationError`.

        Checks that every flip-flop and BRAM port is driven, that gates are
        in topological order and that no net has two drivers.
        """
        produced = [False] * self.n_nets
        produced[CONST0] = produced[CONST1] = True
        for nets in self.inputs.values():
            for net in nets:
                produced[net] = True
        for dff in self.dffs:
            produced[dff.q] = True
        for bram in self.brams:
            for net in bram.rdata:
                produced[net] = True
        for gate in self.gates:
            for net in gate.ins:
                if not produced[net]:
                    raise ElaborationError(
                        f"gate {gate.kind}->{gate.out} reads net {net} "
                        "before it is produced (not topological)")
            if produced[gate.out]:
                raise ElaborationError(f"net {gate.out} has two drivers")
            produced[gate.out] = True
        for dff in self.dffs:
            if not dff.driven:
                raise ElaborationError(f"flip-flop {dff.name!r} is undriven")
            if not produced[dff.d]:
                raise ElaborationError(
                    f"flip-flop {dff.name!r} D input reads dangling net")
        for bram in self.brams:
            for net in (*bram.raddr, *bram.waddr, *bram.wdata, bram.we):
                if not produced[net]:
                    raise ElaborationError(
                        f"memory {bram.name!r} reads dangling net {net}")
        for nets in self.outputs.values():
            for net in nets:
                if not produced[net]:
                    raise ElaborationError(f"output reads dangling net {net}")
