"""Word-level RTL builder.

HDL models in this reproduction are described *structurally* in Python: a
:class:`Rtl` object offers word-level operators (bitwise logic, adders,
multiplexers, truth tables, registers, memories) and immediately elaborates
them into the gate-level :class:`~repro.hdl.netlist.Netlist` IR.  The builder
therefore plays the role of the VHDL front-end + elaborator of the paper's
tool chain, and it records the *HDL-visible* names (ports, registers,
exposed signals) that both VFIT and the FADES fault-location process target.

Design notes
------------
* Words are little-endian tuples of nets (:class:`Word`); bit 0 is the LSB.
* Every operator performs local constant folding, so descriptions may freely
  use constants without bloating the netlist; the global optimiser in
  :mod:`repro.synth.optimize` does the rest.
* ``unit(...)`` tags emitted logic with a named functional unit (ALU, MEM,
  FSM, ...); the paper's experiments partition fault locations by unit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ElaborationError
from .netlist import CONST0, CONST1, Bram, Dff, Netlist


class Word:
    """An immutable little-endian vector of nets."""

    __slots__ = ("nets",)

    def __init__(self, nets: Sequence[int]):
        self.nets = tuple(nets)

    @property
    def width(self) -> int:
        """Number of bits in the word."""
        return len(self.nets)

    def __len__(self) -> int:
        return len(self.nets)

    def __iter__(self):
        return iter(self.nets)

    def __getitem__(self, index) -> "Word":
        if isinstance(index, slice):
            return Word(self.nets[index])
        return Word((self.nets[index],))

    def __repr__(self) -> str:
        return f"Word({list(self.nets)})"


WordLike = Union[Word, int]


class Reg:
    """A register: a bank of flip-flops with a deferred next-value."""

    def __init__(self, rtl: "Rtl", name: str, dffs: List[Dff]):
        self._rtl = rtl
        self.name = name
        self.dffs = dffs
        self.q = Word([dff.q for dff in dffs])
        self._driven = False

    @property
    def width(self) -> int:
        """Number of bits stored by the register."""
        return len(self.dffs)

    def drive(self, value: WordLike, en: Optional[WordLike] = None) -> None:
        """Connect the next-cycle value, optionally gated by enable *en*.

        With an enable, the register recirculates its current value when
        *en* is low — the standard clock-enable idiom, lowered to a mux so
        the whole design stays single-clock.
        """
        if self._driven:
            raise ElaborationError(f"register {self.name!r} driven twice")
        rtl = self._rtl
        word = rtl._coerce(value, self.width)
        if en is not None:
            word = rtl.mux(rtl._coerce(en, 1), self.q, word)
        for dff, net in zip(self.dffs, word.nets):
            dff.d = net
        self._driven = True


class Mem:
    """A synchronous memory with one read and one write port.

    The read port is *registered*: ``rdata`` shows the contents of the
    address presented on the previous cycle (read-first with respect to a
    same-cycle write).  Create the memory early, use :attr:`rdata` anywhere,
    then :meth:`connect` the port nets once.
    """

    def __init__(self, rtl: "Rtl", bram: Bram):
        self._rtl = rtl
        self.bram = bram
        self.rdata = Word(bram.rdata)
        self._connected = False

    @property
    def name(self) -> str:
        """The HDL-visible name of the memory block."""
        return self.bram.name

    def connect(self, raddr: WordLike, waddr: WordLike = 0,
                wdata: WordLike = 0, we: WordLike = 0) -> None:
        """Wire the address/data/enable ports of the memory."""
        if self._connected:
            raise ElaborationError(f"memory {self.name!r} connected twice")
        rtl = self._rtl
        bits = self.bram.addr_bits
        self.bram.raddr = tuple(rtl._coerce(raddr, bits).nets)
        self.bram.waddr = tuple(rtl._coerce(waddr, bits).nets)
        self.bram.wdata = tuple(rtl._coerce(wdata, self.bram.width).nets)
        self.bram.we = rtl._coerce(we, 1).nets[0]
        if self.bram.rom and self.bram.we != CONST0:
            raise ElaborationError(f"ROM {self.name!r} cannot be written")
        self._connected = True


class Rtl:
    """Builder/elaborator for a synchronous word-level design."""

    def __init__(self, name: str = "top"):
        self.netlist = Netlist(name)
        self._regs: List[Reg] = []
        self._mems: List[Mem] = []
        self._units: List[str] = []
        self._built = False

    # ------------------------------------------------------------------
    # units and names
    # ------------------------------------------------------------------
    @contextmanager
    def unit(self, name: str):
        """Tag logic emitted inside the block as belonging to unit *name*."""
        self._units.append(name)
        try:
            yield
        finally:
            self._units.pop()

    @property
    def current_unit(self) -> str:
        """The innermost active unit tag (empty string at top level)."""
        return self._units[-1] if self._units else ""

    # ------------------------------------------------------------------
    # ports, constants, names
    # ------------------------------------------------------------------
    def input(self, name: str, width: int = 1) -> Word:
        """Declare a primary input and return its word."""
        nets = self.netlist.new_nets(width)
        self.netlist.add_input(name, nets)
        self.netlist.add_name(name, nets, self.current_unit)
        return Word(nets)

    def output(self, name: str, value: WordLike, width: int = 0) -> Word:
        """Declare a primary output driven by *value*."""
        word = self._coerce(value, width or None)
        self.netlist.add_output(name, list(word.nets))
        if name not in self.netlist.names:
            self.netlist.add_name(name, list(word.nets), self.current_unit)
        return word

    def const(self, value: int, width: int) -> Word:
        """A constant word built from the reserved constant nets."""
        if value < 0:
            value &= (1 << width) - 1
        if value >> width:
            raise ElaborationError(f"constant {value} exceeds {width} bits")
        return Word([CONST1 if (value >> i) & 1 else CONST0
                     for i in range(width)])

    def signal(self, name: str, value: Word) -> Word:
        """Expose *value* as an HDL-visible (injectable) signal name."""
        self.netlist.add_name(name, list(value.nets), self.current_unit)
        return value

    def _coerce(self, value: WordLike, width: Optional[int]) -> Word:
        """Accept ints as constants; check/apply the expected width."""
        if isinstance(value, int):
            if width is None:
                raise ElaborationError(
                    "integer operand needs an explicit width here")
            return self.const(value, width)
        if width is not None and value.width != width:
            raise ElaborationError(
                f"width mismatch: expected {width}, got {value.width}")
        return value

    # ------------------------------------------------------------------
    # gate emission with local constant folding
    # ------------------------------------------------------------------
    def _gate(self, kind: str, *ins: int) -> int:
        folded = self._fold(kind, ins)
        if folded is not None:
            return folded
        return self.netlist.add_gate(kind, ins, self.current_unit)

    @staticmethod
    def _fold(kind: str, ins: Tuple[int, ...]) -> Optional[int]:
        """Local constant folding; returns an existing net or ``None``."""
        if kind == "BUF":
            return ins[0]
        if kind == "NOT":
            if ins[0] == CONST0:
                return CONST1
            if ins[0] == CONST1:
                return CONST0
            return None
        if kind == "AND":
            a, b = ins
            if CONST0 in ins:
                return CONST0
            if a == CONST1:
                return b
            if b == CONST1:
                return a
            if a == b:
                return a
            return None
        if kind == "OR":
            a, b = ins
            if CONST1 in ins:
                return CONST1
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            if a == b:
                return a
            return None
        if kind == "XOR":
            a, b = ins
            if a == b:
                return CONST0
            if a == CONST0:
                return b
            if b == CONST0:
                return a
            return None
        if kind == "MUX":
            sel, if0, if1 = ins
            if sel == CONST0 or if0 == if1:
                return if0
            if sel == CONST1:
                return if1
            return None
        return None

    def _not(self, a: int) -> int:
        return self._gate("NOT", a)

    def _and(self, a: int, b: int) -> int:
        return self._gate("AND", a, b)

    def _or(self, a: int, b: int) -> int:
        return self._gate("OR", a, b)

    def _xor(self, a: int, b: int) -> int:
        return self._gate("XOR", a, b)

    def _mux(self, sel: int, if0: int, if1: int) -> int:
        folded = self._fold("MUX", (sel, if0, if1))
        if folded is not None:
            return folded
        if if0 == CONST0 and if1 == CONST1:
            return sel
        if if0 == CONST1 and if1 == CONST0:
            return self._not(sel)
        if if1 == CONST0:
            return self._and(self._not(sel), if0)
        if if0 == CONST0:
            return self._and(sel, if1)
        return self.netlist.add_gate("MUX", (sel, if0, if1),
                                     self.current_unit)

    # ------------------------------------------------------------------
    # bitwise operators
    # ------------------------------------------------------------------
    def not_(self, a: Word) -> Word:
        """Bitwise complement."""
        return Word([self._not(n) for n in a.nets])

    def _bitwise(self, op, a: Word, b: WordLike) -> Word:
        b = self._coerce(b, a.width)
        return Word([op(x, y) for x, y in zip(a.nets, b.nets)])

    def and_(self, a: Word, b: WordLike) -> Word:
        """Bitwise AND."""
        return self._bitwise(self._and, a, b)

    def or_(self, a: Word, b: WordLike) -> Word:
        """Bitwise OR."""
        return self._bitwise(self._or, a, b)

    def xor_(self, a: Word, b: WordLike) -> Word:
        """Bitwise XOR."""
        return self._bitwise(self._xor, a, b)

    def mux(self, sel: WordLike, if0: Word, if1: WordLike) -> Word:
        """2:1 word multiplexer: *if0* when *sel* is low, *if1* when high."""
        sel = self._coerce(sel, 1)
        if1 = self._coerce(if1, if0.width)
        s = sel.nets[0]
        return Word([self._mux(s, x, y)
                     for x, y in zip(if0.nets, if1.nets)])

    def select(self, sel: Word, choices: Sequence[WordLike],
               default: Optional[WordLike] = None) -> Word:
        """N-way selection: ``choices[int(sel)]`` as a balanced mux tree.

        Missing entries (when ``len(choices) < 2**sel.width``) fall back to
        *default*, which is then mandatory.
        """
        total = 1 << sel.width
        width = None
        for choice in choices:
            if isinstance(choice, Word):
                width = choice.width
                break
        if width is None and isinstance(default, Word):
            width = default.width
        if width is None:
            raise ElaborationError("select needs at least one Word choice")
        padded: List[Word] = []
        for index in range(total):
            if index < len(choices):
                padded.append(self._coerce(choices[index], width))
            else:
                if default is None:
                    raise ElaborationError(
                        f"select covers {len(choices)}/{total} values and "
                        "no default was given")
                padded.append(self._coerce(default, width))
        level = padded
        bit = 0
        while len(level) > 1:
            sel_net = sel.nets[bit]
            level = [self.mux(Word([sel_net]), level[i], level[i + 1])
                     for i in range(0, len(level), 2)]
            bit += 1
        return level[0]

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def add(self, a: Word, b: WordLike,
            cin: WordLike = 0) -> Tuple[Word, Word]:
        """Ripple-carry addition; returns ``(sum, carry_out)``."""
        b = self._coerce(b, a.width)
        carry = self._coerce(cin, 1).nets[0]
        sums: List[int] = []
        for x, y in zip(a.nets, b.nets):
            p = self._xor(x, y)
            sums.append(self._xor(p, carry))
            carry = self._or(self._and(x, y), self._and(p, carry))
        return Word(sums), Word([carry])

    def sub(self, a: Word, b: WordLike,
            bin_: WordLike = 0) -> Tuple[Word, Word]:
        """Subtraction ``a - b - bin``; returns ``(difference, borrow_out)``.

        Implemented as ``a + ~b + ~bin`` with the carry-out complemented,
        which is exactly how the 8051 ALU computes ``SUBB``.
        """
        b = self._coerce(b, a.width)
        bin_word = self._coerce(bin_, 1)
        cin = Word([self._not(bin_word.nets[0])])
        diff, carry = self.add(a, self.not_(b), cin)
        return diff, Word([self._not(carry.nets[0])])

    def inc(self, a: Word) -> Word:
        """Increment modulo ``2**width``."""
        result, _ = self.add(a, self.const(0, a.width), cin=1)
        return result

    def dec(self, a: Word) -> Word:
        """Decrement modulo ``2**width``."""
        result, _ = self.sub(a, self.const(0, a.width), bin_=1)
        return result

    # ------------------------------------------------------------------
    # reductions and comparisons
    # ------------------------------------------------------------------
    def reduce_or(self, a: Word) -> Word:
        """OR-reduce a word to one bit."""
        return Word([self._reduce(self._or, a.nets, CONST0)])

    def reduce_and(self, a: Word) -> Word:
        """AND-reduce a word to one bit."""
        return Word([self._reduce(self._and, a.nets, CONST1)])

    def reduce_xor(self, a: Word) -> Word:
        """XOR-reduce a word to one bit (even parity)."""
        return Word([self._reduce(self._xor, a.nets, CONST0)])

    def _reduce(self, op, nets: Sequence[int], empty: int) -> int:
        """Balanced-tree reduction to minimise logic depth."""
        if not nets:
            return empty
        work = list(nets)
        while len(work) > 1:
            nxt = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(op(work[i], work[i + 1]))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def is_zero(self, a: Word) -> Word:
        """One bit, high iff the word is all zeroes."""
        return Word([self._not(self.reduce_or(a).nets[0])])

    def eq(self, a: Word, b: WordLike) -> Word:
        """One bit, high iff the two words are equal."""
        return self.is_zero(self.xor_(a, b))

    # ------------------------------------------------------------------
    # structural helpers
    # ------------------------------------------------------------------
    def cat(self, *words: WordLike) -> Word:
        """Concatenate words, first argument in the least-significant bits."""
        nets: List[int] = []
        for word in words:
            if isinstance(word, int):
                raise ElaborationError("cat needs Word operands")
            nets.extend(word.nets)
        return Word(nets)

    def bits(self, a: Word, lo: int, width: int) -> Word:
        """Slice *width* bits starting at bit *lo*."""
        if lo + width > a.width:
            raise ElaborationError(
                f"slice [{lo}:{lo + width}] out of a {a.width}-bit word")
        return Word(a.nets[lo:lo + width])

    def bit(self, a: Word, index: int) -> Word:
        """Extract a single bit as a 1-bit word."""
        return self.bits(a, index, 1)

    def zext(self, a: Word, width: int) -> Word:
        """Zero-extend to *width* bits."""
        if width < a.width:
            raise ElaborationError("zext cannot shrink a word")
        return Word(list(a.nets) + [CONST0] * (width - a.width))

    def repeat(self, a: Word, count: int) -> Word:
        """Concatenate *count* copies of a word (usually 1-bit fan-out)."""
        return Word(list(a.nets) * count)

    # ------------------------------------------------------------------
    # truth tables
    # ------------------------------------------------------------------
    def table(self, inputs: Word, out_width: int,
              fn: Callable[[int], int]) -> Word:
        """Arbitrary combinational function as a shared Shannon mux tree.

        ``fn(index)`` must return the ``out_width``-bit output for every
        input value ``index`` in ``range(2**inputs.width)``.  Sub-functions
        are memoised, so the decoder tables of the 8051 control unit share
        their common cofactors instead of exploding.
        """
        total = 1 << inputs.width
        rows = [fn(i) & ((1 << out_width) - 1) for i in range(total)]
        cache: Dict[Tuple[int, ...], int] = {}
        out_nets = [self._table_bit(tuple((row >> bit) & 1 for row in rows),
                                    inputs.nets, cache)
                    for bit in range(out_width)]
        return Word(out_nets)

    def _table_bit(self, vec: Tuple[int, ...], vars_: Tuple[int, ...],
                   cache: Dict[Tuple[int, ...], int]) -> int:
        if all(v == vec[0] for v in vec):
            return CONST1 if vec[0] else CONST0
        cached = cache.get(vec)
        if cached is not None:
            return cached
        half = len(vec) // 2
        # Split on the most significant remaining variable.
        low = self._table_bit(vec[:half], vars_[:-1], cache)
        high = self._table_bit(vec[half:], vars_[:-1], cache)
        net = self._mux(vars_[-1], low, high)
        cache[vec] = net
        return net

    # ------------------------------------------------------------------
    # sequential elements
    # ------------------------------------------------------------------
    def register(self, name: str, width: int, init: int = 0) -> Reg:
        """Create a named register of *width* bits with reset value *init*."""
        unit = self.current_unit
        dffs = [self.netlist.add_dff(init=(init >> i) & 1,
                                     name=f"{name}[{i}]", unit=unit)
                for i in range(width)]
        reg = Reg(self, name, dffs)
        self.netlist.add_name(name, [d.q for d in dffs], unit)
        self._regs.append(reg)
        return reg

    def memory(self, name: str, depth: int, width: int,
               init: Optional[Sequence[int]] = None,
               rom: bool = False) -> Mem:
        """Create a synchronous memory block (RAM, or ROM when *rom*)."""
        contents = list(init or [])
        if len(contents) > depth:
            raise ElaborationError(
                f"memory {name!r}: {len(contents)} init words > depth {depth}")
        contents += [0] * (depth - len(contents))
        rdata = self.netlist.new_nets(width)
        bram = Bram(name=name, depth=depth, width=width,
                    rdata=tuple(rdata), init=contents, rom=rom,
                    unit=self.current_unit)
        self.netlist.add_bram(bram)
        self.netlist.add_name(name, list(rdata), self.current_unit)
        mem = Mem(self, bram)
        self._mems.append(mem)
        return mem

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self) -> Netlist:
        """Finalise the design: default-connect, check, and return the IR."""
        if self._built:
            raise ElaborationError("build() called twice")
        for mem in self._mems:
            if not mem._connected:
                raise ElaborationError(f"memory {mem.name!r} never connected")
        self.netlist.check()
        self._built = True
        return self.netlist
