"""Execution traces: the observation process of a fault-injection run.

The paper's observation process (section 2) stores "a trace of the outputs
and state of the system" for later analysis; the results-analysis module
then compares each faulty trace against the fault-free *golden run* to
classify the experiment outcome.  :class:`Trace` is that artefact: an
ordered record of sampled output values plus a final-state snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass
class Trace:
    """Recorded observations of one run.

    Attributes
    ----------
    output_names:
        The observed outputs, in sampling order.
    samples:
        One tuple per observed cycle; entries may be ``None`` when the
        value was unknown (four-valued simulation under VFIT).
    final_state:
        Hashable snapshot of the architectural state (flip-flops and
        memories) at the end of the run.
    cycles:
        Number of clock cycles executed (trace length may be shorter when
        sampling is decimated).
    """

    output_names: Tuple[str, ...]
    samples: List[Tuple[Optional[int], ...]] = field(default_factory=list)
    final_state: Tuple = ()
    cycles: int = 0

    def record(self, outputs: Dict[str, Optional[int]]) -> None:
        """Append one sample from a simulator's output dictionary."""
        self.samples.append(tuple(outputs[name] for name in self.output_names))

    def same_outputs(self, other: "Trace") -> bool:
        """True when both runs produced identical output sequences.

        An unknown sample (``None``) never matches a known one: from the
        analyser's point of view an ``X`` on a system output is an
        observable deviation.
        """
        return self.samples == other.samples

    def same_state(self, other: "Trace") -> bool:
        """True when the final architectural states are identical."""
        return self.final_state == other.final_state

    def first_divergence(self, other: "Trace") -> Optional[int]:
        """Index of the first differing sample, or ``None`` if equal.

        If one trace is a prefix of the other, the first index beyond the
        shorter trace is returned.
        """
        for index, (mine, theirs) in enumerate(zip(self.samples,
                                                   other.samples)):
            if mine != theirs:
                return index
        if len(self.samples) != len(other.samples):
            return min(len(self.samples), len(other.samples))
        return None


def capture_run(sim, cycles: int, output_names: Sequence[str],
                inputs: Optional[Dict[str, int]] = None,
                sample_every: int = 1) -> Trace:
    """Run *sim* for *cycles* and return the recorded :class:`Trace`.

    ``sample_every`` decimates the output sampling (the paper's tool
    monitors sequential elements once per clock cycle; large campaigns may
    observe less often to bound trace size).
    """
    trace = Trace(tuple(output_names))
    for cycle in range(cycles):
        outputs = sim.step(inputs if cycle == 0 else None)
        if cycle % sample_every == 0:
            trace.record(outputs)
    trace.final_state = sim.state_snapshot()
    trace.cycles = cycles
    return trace
