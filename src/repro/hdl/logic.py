"""Four-valued logic for HDL-style simulation.

The paper's baseline tool (VFIT) injects *indetermination* faults by forcing
VHDL ``'X'`` values onto signals, so the model-level simulator must propagate
unknowns.  The FPGA device simulator, on the other hand, is strictly binary:
the paper argues (section 4.4) that an undetermined analogue level always
resolves to a well-defined — although uncertain — logic value once it crosses
a buffer, which is why FADES emulates indeterminations with a *randomiser*.

Values are small integers so that they can be packed into flat lists and
evaluated in tight loops:

====== ======= ==========================================
value  symbol  meaning
====== ======= ==========================================
``0``  ``'0'`` logic low
``1``  ``'1'`` logic high
``2``  ``'X'`` unknown / undetermined
``3``  ``'Z'`` high impedance (treated as unknown inputs)
====== ======= ==========================================
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

ZERO = 0
ONE = 1
X = 2
Z = 3

_CHARS = "01XZ"
_FROM_CHAR = {"0": ZERO, "1": ONE, "X": X, "x": X, "Z": Z, "z": Z}


def to_char(value: int) -> str:
    """Return the canonical character for a logic *value* (``0/1/X/Z``)."""
    return _CHARS[value]


def from_char(char: str) -> int:
    """Parse a logic character (case-insensitive) into its integer value."""
    try:
        return _FROM_CHAR[char]
    except KeyError:
        raise ValueError(f"not a logic character: {char!r}") from None


def is_known(value: int) -> bool:
    """Return ``True`` for a well-defined binary value (``0`` or ``1``)."""
    return value == ZERO or value == ONE


def not4(a: int) -> int:
    """Four-valued NOT: unknown inputs stay unknown."""
    if a == ZERO:
        return ONE
    if a == ONE:
        return ZERO
    return X


def and4(a: int, b: int) -> int:
    """Four-valued AND: ``0`` dominates; otherwise unknowns poison."""
    if a == ZERO or b == ZERO:
        return ZERO
    if a == ONE and b == ONE:
        return ONE
    return X


def or4(a: int, b: int) -> int:
    """Four-valued OR: ``1`` dominates; otherwise unknowns poison."""
    if a == ONE or b == ONE:
        return ONE
    if a == ZERO and b == ZERO:
        return ZERO
    return X


def xor4(a: int, b: int) -> int:
    """Four-valued XOR: any unknown input makes the output unknown."""
    if is_known(a) and is_known(b):
        return a ^ b
    return X


def mux4(sel: int, if0: int, if1: int) -> int:
    """Four-valued 2:1 multiplexer.

    When the select line is unknown the output is only known if both data
    inputs agree — the standard optimistic (VHDL-like) behaviour.
    """
    if sel == ZERO:
        return if0
    if sel == ONE:
        return if1
    if if0 == if1 and is_known(if0):
        return if0
    return X


def resolve(a: int, b: int) -> int:
    """Resolution of two drivers on the same net (wired logic).

    ``Z`` yields to the other driver; conflicting strong drivers produce
    ``X``.  Only used by the tri-state helpers in the RTL builder.
    """
    if a == Z:
        return b
    if b == Z:
        return a
    if a == b:
        return a
    return X


def word_to_int(bits: Sequence[int]) -> int:
    """Pack a little-endian bit sequence into an integer.

    Raises :class:`ValueError` if any bit is not binary; callers that may
    see ``X`` should use :func:`word_to_int_or_none`.
    """
    value = 0
    for index, bit in enumerate(bits):
        if bit == ONE:
            value |= 1 << index
        elif bit != ZERO:
            raise ValueError(f"bit {index} is {to_char(bit)}, not binary")
    return value


def word_to_int_or_none(bits: Sequence[int]):
    """Pack bits into an integer, or return ``None`` if any bit is unknown."""
    value = 0
    for index, bit in enumerate(bits):
        if bit == ONE:
            value |= 1 << index
        elif bit != ZERO:
            return None
    return value


def int_to_word(value: int, width: int) -> List[int]:
    """Unpack the *width* low bits of *value* into a little-endian list."""
    if value < 0:
        value &= (1 << width) - 1
    return [(value >> index) & 1 for index in range(width)]


def word_to_str(bits: Sequence[int]) -> str:
    """Render a word MSB-first, e.g. ``[1, 0, X]`` -> ``"X01"``."""
    return "".join(to_char(bit) for bit in reversed(bits))


def parity(value: int, width: int = 8) -> int:
    """Even-ones parity bit of the low *width* bits of *value* (8051 ``P``)."""
    ones = bin(value & ((1 << width) - 1)).count("1")
    return ones & 1


def any_unknown(bits: Iterable[int]) -> bool:
    """Return ``True`` if any bit of the word is ``X`` or ``Z``."""
    return any(not is_known(bit) for bit in bits)
