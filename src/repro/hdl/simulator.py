"""Cycle-accurate simulators for gate-level netlists.

Two executable semantics are provided for the same
:class:`~repro.hdl.netlist.Netlist`:

:class:`NetlistSim`
    A fast, strictly binary, levelized cycle simulator.  Because the IR
    keeps gates in topological order, one pass per clock cycle suffices.
    This is the reference semantics the FPGA device simulator must match.

:class:`FourValuedSim`
    A four-valued (``0/1/X/Z``) variant with *simulator commands* — force,
    release and deposit — exactly the mechanism the VFIT baseline uses to
    inject faults into VHDL models (paper, section 6).  Unknowns propagate
    pessimistically through gates and memories.

Both simulators share the step protocol::

    sim.reset()
    outputs = sim.step({"in_a": 3})   # one clock cycle
    sim.peek("some_signal")           # named HDL-level observation
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SimulationError
from ..obs import metrics as obs_metrics
from . import logic
from .netlist import CONST0, CONST1, Netlist

_SIM_CYCLES = obs_metrics.counter(
    "sim_cycles_total", "Clock cycles executed through the batch run API.")


class _BaseSim:
    """State handling shared by both simulators."""

    def __init__(self, netlist: Netlist):
        netlist.check()
        self.netlist = netlist
        self.cycle = 0
        self._values: List[int] = [0] * netlist.n_nets
        self._ff_state: List[int] = [dff.init for dff in netlist.dffs]
        self._mem_state: Dict[str, List[int]] = {
            bram.name: list(bram.init) for bram in netlist.brams}
        self._input_nets: List[Tuple[str, List[int]]] = [
            (name, nets) for name, nets in netlist.inputs.items()]
        self._held_inputs: Dict[str, int] = {
            name: 0 for name in netlist.inputs}

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return all state elements to their initial values.

        Memories are restored to their initialisation contents as well;
        campaign code relies on this to start every experiment from the
        same state (paper, figure 1: "reset system to initial state").
        """
        self.cycle = 0
        self._ff_state = [dff.init for dff in self.netlist.dffs]
        for bram in self.netlist.brams:
            self._mem_state[bram.name] = list(bram.init)
        for name in self._held_inputs:
            self._held_inputs[name] = 0

    # ------------------------------------------------------------------
    def set_inputs(self, inputs: Optional[Dict[str, int]]) -> None:
        """Latch driven values for primary inputs; they hold until changed."""
        if not inputs:
            return
        for name, value in inputs.items():
            if name not in self._held_inputs:
                raise SimulationError(f"unknown input {name!r}")
            self._held_inputs[name] = value

    def peek(self, name: str) -> Optional[int]:
        """Read a named signal as an integer (``None`` if any bit unknown).

        Values reflect the combinational settle of the most recent
        :meth:`step`.
        """
        nets = self.netlist.names.get(name)
        if nets is None:
            raise SimulationError(f"unknown signal {name!r}")
        return logic.word_to_int_or_none([self._values[n] for n in nets])

    def peek_bits(self, name: str) -> List[int]:
        """Read the raw per-bit logic values of a named signal."""
        nets = self.netlist.names.get(name)
        if nets is None:
            raise SimulationError(f"unknown signal {name!r}")
        return [self._values[n] for n in nets]

    def ff_state(self) -> Tuple[int, ...]:
        """Snapshot of every flip-flop's stored value, in netlist order."""
        return tuple(self._ff_state)

    def mem_state(self, name: str) -> Tuple[int, ...]:
        """Snapshot of a memory block's contents."""
        try:
            return tuple(self._mem_state[name])
        except KeyError:
            raise SimulationError(f"unknown memory {name!r}") from None

    def state_snapshot(self) -> Tuple:
        """Hashable snapshot of all architectural state (FFs + memories)."""
        mems = tuple(sorted(
            (name, tuple(cells)) for name, cells in self._mem_state.items()))
        return (tuple(self._ff_state), mems)

    def deposit_ff(self, index: int, value: int) -> None:
        """Overwrite one flip-flop's stored value (bit-flip injection)."""
        self._ff_state[index] = value

    def deposit_mem(self, name: str, addr: int, value: int) -> None:
        """Overwrite one memory word."""
        self._mem_state[name][addr] = value

    def _sample_outputs(self) -> Dict[str, Optional[int]]:
        values = self._values
        return {
            name: logic.word_to_int_or_none([values[n] for n in nets])
            for name, nets in self.netlist.outputs.items()}

    def run(self, cycles: int,
            inputs: Optional[Dict[str, int]] = None) -> Dict[str, Optional[int]]:
        """Step *cycles* times with constant inputs; return last outputs."""
        outputs: Dict[str, Optional[int]] = {}
        for _ in range(cycles):
            outputs = self.step(inputs)
            inputs = None
        if cycles > 0:
            # Counted per batch, not per step: step() is the hot path.
            _SIM_CYCLES.inc(cycles, sim=type(self).__name__)
        return outputs

    def step(self, inputs: Optional[Dict[str, int]] = None):
        raise NotImplementedError


class NetlistSim(_BaseSim):
    """Fast binary levelized simulator (the reference semantics)."""

    def __init__(self, netlist: Netlist):
        super().__init__(netlist)
        # Pre-compile every gate to (out, tt3, i0, i1, i2): the truth table
        # is expanded over three variables so that the inner loop is a
        # single shift regardless of arity.
        compiled = []
        for gate in netlist.gates:
            ins = list(gate.ins) + [CONST0] * (3 - len(gate.ins))
            mask = (1 << len(gate.ins)) - 1
            tt3 = 0
            for index in range(8):
                if (gate.tt >> (index & mask)) & 1:
                    tt3 |= 1 << index
            compiled.append((gate.out, tt3, ins[0], ins[1], ins[2]))
        self._compiled = compiled

    def step(self, inputs: Optional[Dict[str, int]] = None
             ) -> Dict[str, Optional[int]]:
        """Advance one clock cycle; return the settled primary outputs."""
        self.set_inputs(inputs)
        values = self._values
        values[CONST0] = 0
        values[CONST1] = 1
        for name, nets in self._input_nets:
            held = self._held_inputs[name]
            for position, net in enumerate(nets):
                values[net] = (held >> position) & 1
        for dff, state in zip(self.netlist.dffs, self._ff_state):
            values[dff.q] = state
        # BRAM rdata nets keep their registered values from the previous
        # capture; nothing to refresh here.
        for out, tt, i0, i1, i2 in self._compiled:
            values[out] = (tt >> (values[i0] | values[i1] << 1
                                  | values[i2] << 2)) & 1
        outputs = self._sample_outputs()
        self._capture()
        self.cycle += 1
        return outputs

    def _capture(self) -> None:
        values = self._values
        for index, dff in enumerate(self.netlist.dffs):
            self._ff_state[index] = values[dff.d]
        for bram in self.netlist.brams:
            cells = self._mem_state[bram.name]
            raddr = 0
            for position, net in enumerate(bram.raddr):
                raddr |= values[net] << position
            read = cells[raddr] if raddr < bram.depth else 0
            if not bram.rom and values[bram.we]:
                waddr = 0
                for position, net in enumerate(bram.waddr):
                    waddr |= values[net] << position
                wdata = 0
                for position, net in enumerate(bram.wdata):
                    wdata |= values[net] << position
                if waddr < bram.depth:
                    cells[waddr] = wdata
            for position, net in enumerate(bram.rdata):
                values[net] = (read >> position) & 1

    def reset(self) -> None:
        super().reset()
        # Registered read ports come up showing address 0 contents' stale
        # value convention: define them as 0 at reset.
        for bram in self.netlist.brams:
            for net in bram.rdata:
                self._values[net] = 0


class FourValuedSim(_BaseSim):
    """Four-valued simulator with VFIT-style simulator commands.

    Supports ``force``/``release`` on any named signal (or raw nets) and
    direct ``deposit`` of flip-flop and memory state.  Unknown values
    (``X``) propagate through gates by cofactor enumeration and through
    memories pessimistically.
    """

    def __init__(self, netlist: Netlist):
        super().__init__(netlist)
        self._forced: Dict[int, int] = {}
        self._inverted: set = set()
        self.events = 0  # evaluation count, feeds the VFIT cost model

    # -- simulator commands -------------------------------------------
    def force(self, name: str, value: Sequence[int]) -> None:
        """Force a named signal to per-bit logic values (``X`` allowed).

        The force overrides the signal's driver every cycle until
        :meth:`release` — the semantics of a VHDL simulator ``force``
        command, which is how VFIT keeps a fault active for its duration.
        """
        nets = self.netlist.names.get(name)
        if nets is None:
            raise SimulationError(f"unknown signal {name!r}")
        if len(value) != len(nets):
            raise SimulationError(
                f"force width mismatch on {name!r}: "
                f"{len(value)} != {len(nets)}")
        for net, bit in zip(nets, value):
            self._forced[net] = bit

    def force_bit(self, name: str, bit_index: int, value: int) -> None:
        """Force a single bit of a named signal."""
        nets = self.netlist.names.get(name)
        if nets is None:
            raise SimulationError(f"unknown signal {name!r}")
        self._forced[nets[bit_index]] = value

    def release(self, name: str) -> None:
        """Remove any force on the named signal."""
        nets = self.netlist.names.get(name)
        if nets is None:
            raise SimulationError(f"unknown signal {name!r}")
        for net in nets:
            self._forced.pop(net, None)

    def release_all(self) -> None:
        """Remove every active force and inversion."""
        self._forced.clear()
        self._inverted.clear()

    def force_invert_net(self, net: int) -> None:
        """Continuously invert a net's driven value (pulse injection).

        Unlike :meth:`force`, the net still follows its driver — inverted.
        This models a transient pulse on a combinational line the way a
        VHDL simulator command script realises it.
        """
        self._inverted.add(net)

    def release_invert_net(self, net: int) -> None:
        """Remove an inversion installed by :meth:`force_invert_net`."""
        self._inverted.discard(net)

    # -- evaluation ----------------------------------------------------
    def step(self, inputs: Optional[Dict[str, int]] = None
             ) -> Dict[str, Optional[int]]:
        """Advance one clock cycle under four-valued semantics."""
        self.set_inputs(inputs)
        values = self._values
        forced = self._forced
        values[CONST0] = logic.ZERO
        values[CONST1] = logic.ONE
        for name, nets in self._input_nets:
            held = self._held_inputs[name]
            for position, net in enumerate(nets):
                values[net] = (held >> position) & 1
        for dff, state in zip(self.netlist.dffs, self._ff_state):
            values[dff.q] = state
        if forced:
            for net, value in forced.items():
                values[net] = value
        inverted = self._inverted
        if inverted:
            for net in inverted:
                if net < len(values) and net not in forced:
                    values[net] = logic.not4(values[net])
        for gate in self.netlist.gates:
            out = gate.out
            if out in forced:
                values[out] = forced[out]
                continue
            value = self._eval_gate(gate.tt, gate.ins, values)
            if out in inverted:
                value = logic.not4(value)
            values[out] = value
            self.events += 1
        outputs = self._sample_outputs()
        self._capture4()
        self.cycle += 1
        return outputs

    @staticmethod
    def _eval_gate(tt: int, ins: Tuple[int, ...],
                   values: List[int]) -> int:
        index = 0
        unknown: List[int] = []
        for position, net in enumerate(ins):
            bit = values[net]
            if bit == logic.ONE:
                index |= 1 << position
            elif bit != logic.ZERO:
                unknown.append(position)
        if not unknown:
            return (tt >> index) & 1
        seen0 = seen1 = False
        for combo in range(1 << len(unknown)):
            trial = index
            for offset, position in enumerate(unknown):
                if (combo >> offset) & 1:
                    trial |= 1 << position
            if (tt >> trial) & 1:
                seen1 = True
            else:
                seen0 = True
            if seen0 and seen1:
                return logic.X
        return logic.ONE if seen1 else logic.ZERO

    def _capture4(self) -> None:
        values = self._values
        for index, dff in enumerate(self.netlist.dffs):
            self._ff_state[index] = values[dff.d]
        for bram in self.netlist.brams:
            cells = self._mem_state[bram.name]
            raddr = logic.word_to_int_or_none(
                [values[n] for n in bram.raddr])
            we = logic.ZERO if bram.rom else values[bram.we]
            read: List[int]
            if raddr is None or raddr >= bram.depth:
                read = [logic.X] * bram.width
            else:
                word = cells[raddr]
                if word is None:
                    read = [logic.X] * bram.width
                else:
                    read = logic.int_to_word(word, bram.width)
            if we != logic.ZERO:
                waddr = logic.word_to_int_or_none(
                    [values[n] for n in bram.waddr])
                wdata = logic.word_to_int_or_none(
                    [values[n] for n in bram.wdata])
                if waddr is None:
                    # Unknown write address corrupts the whole block.
                    for cell in range(bram.depth):
                        cells[cell] = None
                elif waddr < bram.depth:
                    if we == logic.ONE:
                        cells[waddr] = wdata  # None encodes unknown word
                    else:
                        cells[waddr] = None  # X write-enable: may have hit
            for position, net in enumerate(bram.rdata):
                values[net] = read[position]

    def reset(self) -> None:
        super().reset()
        self._forced.clear()
        for bram in self.netlist.brams:
            for net in bram.rdata:
                self._values[net] = 0

    def mem_state(self, name: str) -> Tuple:
        """Memory snapshot; unknown words appear as ``None``."""
        try:
            return tuple(self._mem_state[name])
        except KeyError:
            raise SimulationError(f"unknown memory {name!r}") from None


# ---------------------------------------------------------------------------
# Backend seam.  Campaign/runtime/CLI layers select an execution backend by
# name; "reference" is this module's levelized simulator, "compiled" is the
# bit-parallel code-generating engine in :mod:`repro.emu`.

#: Simulator backends selectable through the campaign/CLI seam.
BACKENDS = ("reference", "compiled")


def check_backend(backend: str) -> str:
    """Validate a backend name; returns it for chaining."""
    if backend not in BACKENDS:
        raise SimulationError(
            f"unknown simulator backend {backend!r} "
            f"(expected one of {', '.join(BACKENDS)})")
    return backend


def make_sim(netlist: Netlist, backend: str = "reference") -> _BaseSim:
    """Instantiate a binary simulator for *netlist* by backend name.

    ``reference`` returns :class:`NetlistSim`; ``compiled`` returns
    :class:`repro.emu.CompiledSim`, which compiles the netlist to
    straight-line bitwise code once and caches it (imported lazily so the
    base HDL layer has no dependency on :mod:`repro.emu`).
    """
    check_backend(backend)
    if backend == "compiled":
        from ..emu import CompiledSim
        return CompiledSim(netlist)
    return NetlistSim(netlist)
