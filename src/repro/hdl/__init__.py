"""HDL modelling substrate: logic values, netlist IR, RTL builder, simulators.

This package is substrate **S1** of the reproduction (see ``DESIGN.md``): it
stands in for the VHDL front-end and simulator of the paper's tool chain.
"""

from . import logic
from .netlist import Bram, Dff, Gate, Netlist
from .rtl import Mem, Reg, Rtl, Word
from .simulator import (BACKENDS, FourValuedSim, NetlistSim, check_backend,
                        make_sim)
from .trace import Trace, capture_run
from .vcd import VcdWriter, dump_run

__all__ = [
    "logic",
    "Bram",
    "Dff",
    "Gate",
    "Netlist",
    "Mem",
    "Reg",
    "Rtl",
    "Word",
    "BACKENDS",
    "FourValuedSim",
    "NetlistSim",
    "check_backend",
    "make_sim",
    "Trace",
    "capture_run",
    "VcdWriter",
    "dump_run",
]
