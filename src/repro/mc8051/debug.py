"""Debugging aids: instruction traces and ISS-vs-RTL divergence hunting.

When a fault-injection experiment (or a CPU change) misbehaves, the first
question is *where execution went wrong*.  This module provides:

* :func:`trace_execution` — a disassembled instruction-level log from the
  reference ISS, with per-instruction architectural state;
* :func:`compare_iss_rtl` — lockstep ISS/RTL execution that reports the
  first architectural divergence (cycle, signal, both values), the tool
  that located every CPU bug during this reproduction's bring-up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..hdl.simulator import NetlistSim
from .asm import disassemble
from .cpu import build_mc8051
from .iss import Iss


@dataclass
class TraceEntry:
    """One executed instruction in an ISS trace."""

    cycle: int          # cycle count *before* the instruction
    pc: int
    text: str           # disassembled instruction
    acc: int            # architectural state *after* execution
    psw: int
    sp: int

    def render(self) -> str:
        return (f"{self.cycle:>6}  {self.pc:04X}  {self.text:<20} "
                f"A={self.acc:02X} PSW={self.psw:02X} SP={self.sp:02X}")


def trace_execution(rom: bytes, max_instructions: int = 10_000,
                    stop_on_idle: bool = True) -> List[TraceEntry]:
    """Run the ISS and log every executed instruction."""
    iss = Iss(rom)
    entries: List[TraceEntry] = []
    for _ in range(max_instructions):
        pc = iss.pc
        cycle = iss.cycles
        listing = disassemble(bytes(iss.rom[pc:pc + 3]), base=pc)
        text = listing[0][1] if listing else "?"
        iss.step_instruction()
        entries.append(TraceEntry(cycle=cycle, pc=pc, text=text,
                                  acc=iss.acc, psw=iss.psw, sp=iss.sp))
        if stop_on_idle and iss.pc == pc and iss.rom[pc] == 0x80:
            break
    return entries


def render_trace(entries: List[TraceEntry]) -> str:
    """Plain-text rendering of an instruction trace."""
    header = f"{'cycle':>6}  {'pc':>4}  {'instruction':<20} state"
    return "\n".join([header] + [entry.render() for entry in entries])


@dataclass
class Divergence:
    """First point where the RTL disagrees with the reference ISS."""

    cycle: int
    signal: str
    iss_value: int
    rtl_value: Optional[int]
    instruction: str = ""

    def render(self) -> str:
        return (f"divergence at cycle {self.cycle} "
                f"({self.instruction or 'unknown instruction'}): "
                f"{self.signal} ISS={self.iss_value:#x} "
                f"RTL={self.rtl_value if self.rtl_value is None else hex(self.rtl_value)}")


#: Architectural signals compared in lockstep, in check order.
COMPARED_SIGNALS: Tuple[str, ...] = ("acc", "sp", "p1", "p2", "b",
                                     "dpl", "dph")


def compare_iss_rtl(rom: bytes, max_cycles: int = 20_000
                    ) -> Optional[Divergence]:
    """Run the ISS and the RTL model in lockstep; return the first
    architectural divergence, or ``None`` if they agree to the end.

    Comparison happens at instruction boundaries (the ISS's granularity):
    after each ISS instruction, the RTL is stepped the same number of
    cycles plus one settle cycle on a scratch copy, and the architectural
    registers and IRAM are compared.
    """
    iss = Iss(rom)
    model = build_mc8051(rom)
    sim = NetlistSim(model.netlist)
    sim.reset()
    executed = 0
    while iss.cycles < max_cycles:
        pc_before = iss.pc
        listing = disassemble(bytes(iss.rom[pc_before:pc_before + 3]),
                              base=pc_before)
        text = listing[0][1] if listing else "?"
        spent = iss.step_instruction()
        for _ in range(spent):
            sim.step()
        executed += spent
        # Peek reflects the evaluation phase, one capture behind; the
        # state registers compared here were all stable for >=1 cycle
        # at an instruction boundary except those written on the very
        # last edge — step a scratch probe cycle only when needed by
        # comparing against the *stored* FF state instead.
        mismatch = _compare_state(iss, sim, model)
        if mismatch is not None:
            signal, iss_value, rtl_value = mismatch
            return Divergence(cycle=iss.cycles, signal=signal,
                              iss_value=iss_value, rtl_value=rtl_value,
                              instruction=text)
        if iss.pc == pc_before and iss.rom[pc_before] == 0x80:
            break  # terminal self-loop
    return None


def _compare_state(iss: Iss, sim: NetlistSim, model):
    """Compare architectural state via stored FF values (capture-exact)."""
    netlist = model.netlist
    ff_of_net = {dff.q: index for index, dff in enumerate(netlist.dffs)}
    state = sim.ff_state()

    def rtl_word(name: str) -> Optional[int]:
        nets = netlist.names.get(name)
        if nets is None:
            return None
        value = 0
        for position, net in enumerate(nets):
            index = ff_of_net.get(net)
            if index is None:
                return None  # not FF-backed: skip
            value |= state[index] << position
        return value

    for signal in COMPARED_SIGNALS:
        rtl_value = rtl_word(signal)
        if rtl_value is None:
            continue
        iss_value = getattr(iss, signal if signal != "acc" else "acc")
        if rtl_value != iss_value:
            return signal, iss_value, rtl_value
    rtl_iram = sim.mem_state("iram")
    for addr, value in enumerate(iss.iram):
        if rtl_iram[addr] != value:
            return f"iram[{addr:#04x}]", value, rtl_iram[addr]
    return None
