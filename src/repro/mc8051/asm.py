"""Two-pass assembler (and disassembler) for the 8051-subset ISA.

Accepted syntax, one statement per line::

    ; comments run to end of line
    start:  MOV  R0,#0x30      ; labels end with ':'
            MOV  A,@R0
            CJNE A,#10,start
            MOV  0x90,A        ; direct addresses may be numbers or symbols
            DB   1, 2, 0x33    ; raw bytes
            ORG  0x100         ; set location counter
    P1 EQU 0x90                ; symbolic constants

Numbers: decimal, ``0x``-prefixed hex, or ``NNh`` suffix hex.  Relative
branch targets are written as labels (or absolute addresses) and encoded as
signed 8-bit displacements.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..errors import WorkloadError
from .isa import lookup, spec_for

_NUMBER = re.compile(r"^(0x[0-9a-fA-F]+|[0-9a-fA-F]+[hH]|[0-9]+)$")


def parse_number(token: str, symbols: Optional[Dict[str, int]] = None) -> int:
    """Parse a numeric literal or symbol into an integer."""
    token = token.strip()
    if symbols and token in symbols:
        return symbols[token]
    if token.lower().startswith("0x"):
        return int(token, 16)
    if token and token[-1] in "hH" and _NUMBER.match(token):
        return int(token[:-1], 16)
    if token.isdigit():
        return int(token, 10)
    raise WorkloadError(f"cannot parse number or symbol {token!r}")


def _classify_operand(token: str) -> Tuple[str, Optional[str]]:
    """Map an operand token to a format atom plus its value text."""
    token = token.strip()
    upper = token.upper()
    if upper == "A":
        return "A", None
    if upper == "C":
        return "C", None
    match = re.fullmatch(r"R([0-7])", upper)
    if match:
        return f"R{match.group(1)}", None
    match = re.fullmatch(r"@R([01])", upper)
    if match:
        return f"@R{match.group(1)}", None
    if upper == "DPTR":
        return "DPTR", None
    if upper == "@A+DPTR":
        return "@A+DPTR", None
    if token.startswith("#"):
        return "#imm", token[1:]
    return "dir", token  # numbers, symbols, labels


class Assembler:
    """Two-pass assembler producing a flat code image."""

    def __init__(self):
        self.symbols: Dict[str, int] = {}

    def assemble(self, source: str, origin: int = 0) -> bytes:
        """Assemble *source* into bytes starting at *origin*."""
        statements = self._parse(source)
        self._collect_labels(statements, origin)
        return self._emit(statements, origin)

    # ------------------------------------------------------------------
    def _parse(self, source: str) -> List[Tuple[int, str, str, List[str]]]:
        statements = []
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(";", 1)[0].rstrip()
            if not line.strip():
                continue
            label = ""
            match = re.match(r"^\s*([A-Za-z_][\w]*):", line)
            if match:
                label = match.group(1)
                line = line[match.end():]
            equ = re.match(r"^\s*([A-Za-z_][\w]*)\s+EQU\s+(\S+)\s*$", line,
                           re.IGNORECASE)
            if equ:
                self.symbols[equ.group(1)] = parse_number(equ.group(2),
                                                          self.symbols)
                if label:
                    statements.append((line_no, label, "", []))
                continue
            parts = line.split(None, 1)
            mnemonic = parts[0].upper() if parts else ""
            operands: List[str] = []
            if len(parts) > 1:
                operands = [tok.strip() for tok in parts[1].split(",")]
            statements.append((line_no, label, mnemonic, operands))
        return statements

    def _statement_length(self, line_no: int, mnemonic: str,
                          operands: List[str]) -> int:
        if not mnemonic:
            return 0
        if mnemonic == "ORG":
            return 0
        if mnemonic == "DB":
            return len(operands)
        fmt = ",".join(_classify_operand(tok)[0] for tok in operands)
        found = lookup(mnemonic, self._fmt_with_rel(mnemonic, fmt))
        if found is None:
            raise WorkloadError(
                f"line {line_no}: unknown instruction {mnemonic} {fmt}")
        return found[1].length

    @staticmethod
    def _fmt_with_rel(mnemonic: str, fmt: str) -> str:
        """Rewrite trailing 'dir' atoms into 'rel'/'addr16' for branches."""
        if mnemonic in ("JC", "JNC", "JZ", "JNZ", "SJMP"):
            return "rel"
        if mnemonic in ("LJMP", "LCALL"):
            return "addr16"
        if mnemonic == "CJNE":
            parts = fmt.split(",")
            parts[-1] = "rel"
            return ",".join(parts)
        if mnemonic == "DJNZ":
            parts = fmt.split(",")
            parts[-1] = "rel"
            return ",".join(parts)
        if fmt.startswith("DPTR,#imm"):
            return "DPTR,#imm16"
        return fmt

    def _collect_labels(self, statements, origin: int) -> None:
        counter = origin
        for line_no, label, mnemonic, operands in statements:
            if label:
                self.symbols[label] = counter
            if mnemonic == "ORG":
                counter = parse_number(operands[0], self.symbols)
                continue
            counter += self._statement_length(line_no, mnemonic, operands)

    def _emit(self, statements, origin: int) -> bytes:
        image: Dict[int, int] = {}
        counter = origin
        for line_no, _label, mnemonic, operands in statements:
            if not mnemonic:
                continue
            if mnemonic == "ORG":
                counter = parse_number(operands[0], self.symbols)
                continue
            if mnemonic == "DB":
                for token in operands:
                    image[counter] = parse_number(token, self.symbols) & 0xFF
                    counter += 1
                continue
            atoms = [_classify_operand(tok) for tok in operands]
            fmt = self._fmt_with_rel(
                mnemonic, ",".join(atom for atom, _v in atoms))
            found = lookup(mnemonic, fmt)
            if found is None:
                raise WorkloadError(
                    f"line {line_no}: unknown instruction {mnemonic}")
            code, spec = found
            image[counter] = code
            position = counter + 1
            end = counter + spec.length
            fmt_atoms = fmt.split(",") if fmt else []
            for (_atom, value), fmt_atom in zip(atoms, fmt_atoms):
                if value is None:
                    continue
                number = parse_number(value, self.symbols)
                if fmt_atom == "rel":
                    displacement = number - end
                    if not -128 <= displacement <= 127:
                        raise WorkloadError(
                            f"line {line_no}: branch target out of range "
                            f"({displacement})")
                    image[position] = displacement & 0xFF
                    position += 1
                elif fmt_atom in ("addr16", "#imm16"):
                    image[position] = (number >> 8) & 0xFF
                    image[position + 1] = number & 0xFF
                    position += 2
                else:  # #imm or dir
                    image[position] = number & 0xFF
                    position += 1
            counter = end
        if not image:
            return b""
        size = max(image) + 1
        return bytes(image.get(addr, 0) for addr in range(size))


def assemble(source: str, origin: int = 0) -> bytes:
    """Convenience wrapper: assemble *source* with a fresh symbol table."""
    return Assembler().assemble(source, origin)


def disassemble(code: bytes, addr: int = 0,
                base: int = 0) -> List[Tuple[int, str]]:
    """Linear-sweep disassembly; returns (address, text) pairs.

    ``base`` is the memory address of ``code[0]``; relative-branch targets
    and the returned addresses are rendered against it, so a window cut
    from a larger image still shows correct targets.
    """
    result = []
    position = addr
    while position < len(code):
        opcode = code[position]
        spec = spec_for(opcode)
        if position + spec.length > len(code):
            break  # truncated trailing instruction
        operands = code[position + 1:position + spec.length]
        text = spec.mnemonic
        if spec.fmt:
            rendered = spec.fmt
            consumed = 0
            for atom in spec.fmt.split(","):
                if atom in ("#imm", "dir"):
                    rendered = rendered.replace(
                        atom, f"{'#' if atom == '#imm' else ''}"
                        f"0x{operands[consumed]:02X}", 1)
                    consumed += 1
                elif atom == "rel":
                    rel = operands[consumed]
                    if rel >= 128:
                        rel -= 256
                    target = base + position + spec.length + rel
                    rendered = rendered.replace(atom, f"0x{target:04X}", 1)
                    consumed += 1
                elif atom in ("addr16", "#imm16"):
                    target = (operands[consumed] << 8) | operands[consumed + 1]
                    prefix = "#" if atom == "#imm16" else ""
                    rendered = rendered.replace(atom,
                                                f"{prefix}0x{target:04X}", 1)
                    consumed += 2
            text = f"{spec.mnemonic} {rendered}"
        result.append((base + position, text))
        position += spec.length
    return result
