"""Reference instruction-set simulator for the 8051 subset.

A plain-Python interpreter used to validate both the assembler and the RTL
hardware model: the RTL CPU and this ISS must agree on architectural state,
port-write sequences *and cycle counts* for every program (the RTL's state
walk is deterministic, so :meth:`~repro.mc8051.isa.InstrSpec.cycles` is
exact).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..hdl.logic import parity
from .isa import (AGEN_DIR, AGEN_IND, AGEN_REG, ALU_ADD,
                  ALU_ADDC, ALU_AND, ALU_CLR, ALU_CMP, ALU_CPL, ALU_DEC,
                  ALU_INC, ALU_OR, ALU_PASSA, ALU_PASSB, ALU_RL, ALU_RR,
                  ALU_SUBB, ALU_XOR, ASRC_ACC, BR_CJNE, BR_DJNZ, BR_JC,
                  BR_JNC, BR_JNZ, BR_JZ, BR_LJMP, BR_NONE, BR_RET, BR_SJMP,
                  BSRC_OP1, BSRC_OP2, BSRC_TMP, DEST_ACC, DEST_MEM,
                  FLAG_ARITH, FLAG_CMP, FLAG_CY0, FLAG_CY1, FLAG_CYCPL,
                  PSW_AC, PSW_CY, PSW_F0, PSW_OV, PSW_P, PSW_RS0, PSW_RS1,
                  SFR_ACC, SFR_B, SFR_DPH, SFR_DPL, SFR_P0, SFR_P1, SFR_P2,
                  SFR_PSW, SFR_SP, STACK_CALL, STACK_NONE, STACK_POP,
                  STACK_PUSH, STACK_RET, EXT_DPTR_INC, EXT_DPTR_LOAD,
                  EXT_MOVC, EXT_NONE, spec_for)

IRAM_SIZE = 128
ROM_SIZE = 512
PC_MASK = 0xFFF


class Iss:
    """Interpreter state: IRAM, SFRs and the program counter."""

    def __init__(self, rom: bytes):
        if len(rom) > ROM_SIZE:
            raise ValueError(f"program of {len(rom)} bytes exceeds ROM")
        self.rom = bytes(rom) + bytes(ROM_SIZE - len(rom))
        self.iram: List[int] = [0] * IRAM_SIZE
        self.pc = 0
        self.acc = 0
        self.b = 0
        self.sp = 0x07
        self.dpl = 0
        self.dph = 0
        self.p0 = 0
        self.p1 = 0
        self.p2 = 0
        self.cy = 0
        self.ac = 0
        self.ov = 0
        self.f0 = 0
        self.rs = 0
        self.cycles = 0
        #: (cycle, value) pairs of every write to port P1.
        self.p1_writes: List[Tuple[int, int]] = []

    # ------------------------------------------------------------------
    @property
    def psw(self) -> int:
        """Assembled PSW byte (P is computed from ACC)."""
        return ((self.cy << PSW_CY) | (self.ac << PSW_AC)
                | (self.f0 << PSW_F0) | ((self.rs & 3) << PSW_RS0)
                | (self.ov << PSW_OV) | (parity(self.acc) << PSW_P))

    def _write_psw(self, value: int) -> None:
        self.cy = (value >> PSW_CY) & 1
        self.ac = (value >> PSW_AC) & 1
        self.f0 = (value >> PSW_F0) & 1
        self.rs = (value >> PSW_RS0) & 3
        self.ov = (value >> PSW_OV) & 1

    def read_sfr(self, addr: int) -> int:
        """Direct-address read in SFR space (unimplemented SFRs read 0)."""
        return {
            SFR_ACC: self.acc, SFR_B: self.b, SFR_PSW: self.psw,
            SFR_SP: self.sp, SFR_DPL: self.dpl, SFR_DPH: self.dph,
            SFR_P0: self.p0, SFR_P1: self.p1, SFR_P2: self.p2,
        }.get(addr, 0)

    def write_sfr(self, addr: int, value: int) -> None:
        """Direct-address write in SFR space (unimplemented SFRs ignore)."""
        value &= 0xFF
        if addr == SFR_ACC:
            self.acc = value
        elif addr == SFR_B:
            self.b = value
        elif addr == SFR_PSW:
            self._write_psw(value)
        elif addr == SFR_SP:
            self.sp = value
        elif addr == SFR_DPL:
            self.dpl = value
        elif addr == SFR_DPH:
            self.dph = value
        elif addr == SFR_P0:
            self.p0 = value
        elif addr == SFR_P1:
            self.p1 = value
            self.p1_writes.append((self.cycles, value))
        elif addr == SFR_P2:
            self.p2 = value

    def reg_addr(self, n: int) -> int:
        """IRAM address of Rn in the current bank."""
        return (self.rs << 3) | n

    # ------------------------------------------------------------------
    def step_instruction(self) -> int:
        """Execute one instruction; returns its cycle count."""
        opcode = self.rom[self.pc & PC_MASK]
        spec = spec_for(opcode)
        op1 = self.rom[(self.pc + 1) & PC_MASK] if spec.length >= 2 else 0
        op2 = self.rom[(self.pc + 2) & PC_MASK] if spec.length >= 3 else 0
        next_pc = (self.pc + spec.length) & PC_MASK

        # --- address generation & operand fetch ------------------------
        mar = 0
        tmp = 0
        sfr_access = False
        if spec.ext == EXT_MOVC:
            code_addr = (((self.dph << 8) | self.dpl) + self.acc) & PC_MASK
            tmp = self.rom[code_addr % ROM_SIZE] \
                if code_addr < ROM_SIZE else 0
        elif spec.stack == STACK_POP:
            tmp = self.iram[self.sp & (IRAM_SIZE - 1)]
            mar = op1
            sfr_access = op1 >= 0x80
        elif spec.stack == STACK_RET:
            pch = self.iram[self.sp & (IRAM_SIZE - 1)]
            pcl = self.iram[(self.sp - 1) & (IRAM_SIZE - 1)]
        elif spec.agen == AGEN_REG:
            mar = self.reg_addr(opcode & 0x07)
            tmp = self.iram[mar]
        elif spec.agen == AGEN_IND:
            pointer = self.iram[self.reg_addr(opcode & 0x01)]
            mar = pointer & (IRAM_SIZE - 1)
            tmp = self.iram[mar]
        elif spec.agen == AGEN_DIR:
            if op1 >= 0x80:
                sfr_access = True
                mar = op1
                tmp = self.read_sfr(op1)
            else:
                mar = op1 & (IRAM_SIZE - 1)
                tmp = self.iram[mar]

        # --- ALU ---------------------------------------------------------
        a_side = tmp if spec.asrc != ASRC_ACC else self.acc
        if spec.bsrc == BSRC_OP1:
            b_side = op1
        elif spec.bsrc == BSRC_OP2:
            b_side = op2
        else:
            b_side = tmp

        result = 0
        new_cy, new_ac, new_ov = self.cy, self.ac, self.ov
        aluop = spec.aluop
        if aluop == ALU_PASSB:
            result = b_side
        elif aluop == ALU_PASSA:
            result = self.acc
        elif aluop in (ALU_ADD, ALU_ADDC):
            carry_in = self.cy if aluop == ALU_ADDC else 0
            total = a_side + b_side + carry_in
            result = total & 0xFF
            new_cy = total >> 8
            new_ac = 1 if ((a_side & 0xF) + (b_side & 0xF)
                           + carry_in) > 0xF else 0
            signed = ((a_side ^ b_side) ^ 0x80) & (a_side ^ result) & 0x80
            new_ov = 1 if signed else 0
        elif aluop == ALU_SUBB:
            total = a_side - b_side - self.cy
            result = total & 0xFF
            new_cy = 1 if total < 0 else 0
            new_ac = 1 if (a_side & 0xF) - (b_side & 0xF) - self.cy < 0 else 0
            signed = (a_side ^ b_side) & (a_side ^ result) & 0x80
            new_ov = 1 if signed else 0
        elif aluop == ALU_CMP:
            result = (a_side - b_side) & 0xFF
            new_cy = 1 if a_side < b_side else 0
        elif aluop == ALU_AND:
            result = a_side & b_side
        elif aluop == ALU_OR:
            result = a_side | b_side
        elif aluop == ALU_XOR:
            result = a_side ^ b_side
        elif aluop == ALU_INC:
            result = (a_side + 1) & 0xFF
        elif aluop == ALU_DEC:
            result = (a_side - 1) & 0xFF
        elif aluop == ALU_CPL:
            result = self.acc ^ 0xFF
        elif aluop == ALU_CLR:
            result = 0
        elif aluop == ALU_RL:
            result = ((self.acc << 1) | (self.acc >> 7)) & 0xFF
        elif aluop == ALU_RR:
            result = ((self.acc >> 1) | (self.acc << 7)) & 0xFF

        # --- flags -------------------------------------------------------
        if spec.flags == FLAG_ARITH:
            self.cy, self.ac, self.ov = new_cy, new_ac, new_ov
        elif spec.flags == FLAG_CMP:
            self.cy = new_cy
        elif spec.flags == FLAG_CY0:
            self.cy = 0
        elif spec.flags == FLAG_CY1:
            self.cy = 1
        elif spec.flags == FLAG_CYCPL:
            self.cy ^= 1

        # --- cycle accounting happens before write-back so that port
        # writes can record the precise write cycle --------------------
        instruction_cycles = spec.cycles()
        self.cycles += instruction_cycles

        # --- write-back --------------------------------------------------
        if spec.ext == EXT_DPTR_LOAD:
            self.dph = op1
            self.dpl = op2
        elif spec.ext == EXT_DPTR_INC:
            dptr = (((self.dph << 8) | self.dpl) + 1) & 0xFFFF
            self.dph, self.dpl = (dptr >> 8) & 0xFF, dptr & 0xFF
        if spec.xch:
            self.acc = tmp
        if spec.stack == STACK_PUSH:
            self.sp = (self.sp + 1) & 0xFF
            self.iram[self.sp & (IRAM_SIZE - 1)] = result & 0xFF
        elif spec.stack == STACK_POP:
            self.sp = (self.sp - 1) & 0xFF
            if sfr_access:
                self.write_sfr(mar, result)
            else:
                self.iram[mar & (IRAM_SIZE - 1)] = result & 0xFF
        elif spec.stack == STACK_CALL:
            self.sp = (self.sp + 1) & 0xFF
            self.iram[self.sp & (IRAM_SIZE - 1)] = next_pc & 0xFF
            self.sp = (self.sp + 1) & 0xFF
            self.iram[self.sp & (IRAM_SIZE - 1)] = (next_pc >> 8) & 0x0F
        elif spec.dest == DEST_ACC:
            self.acc = result & 0xFF
        elif spec.dest == DEST_MEM:
            if sfr_access:
                self.write_sfr(mar, result)
            else:
                self.iram[mar] = result & 0xFF

        # --- branches ------------------------------------------------------
        branch = spec.branch
        taken = False
        if branch == BR_JC:
            taken = bool(self.cy)
        elif branch == BR_JNC:
            taken = not self.cy
        elif branch == BR_JZ:
            taken = self.acc == 0
        elif branch == BR_JNZ:
            taken = self.acc != 0
        elif branch == BR_SJMP:
            taken = True
        elif branch == BR_CJNE:
            taken = result != 0
        elif branch == BR_DJNZ:
            taken = result != 0
        if branch == BR_RET:
            self.sp = (self.sp - 2) & 0xFF
            self.pc = ((pch << 8) | pcl) & PC_MASK
        elif branch == BR_LJMP:
            self.pc = ((op1 << 8) | op2) & PC_MASK
        elif taken:
            rel = op2 if spec.length == 3 else op1
            if rel >= 128:
                rel -= 256
            self.pc = (next_pc + rel) & PC_MASK
        else:
            self.pc = next_pc
        return instruction_cycles

    def run(self, max_cycles: int) -> int:
        """Run until *max_cycles* is reached; returns cycles executed."""
        while self.cycles < max_cycles:
            self.step_instruction()
        return self.cycles

    def run_until_idle(self, max_cycles: int = 1_000_000) -> int:
        """Run until the program spins in place (``SJMP $``) or the cycle
        budget is exhausted; returns total cycles."""
        while self.cycles < max_cycles:
            before = self.pc
            self.step_instruction()
            opcode = self.rom[self.pc & PC_MASK]
            if self.pc == before and opcode == 0x80 \
                    and self.rom[(self.pc + 1) & PC_MASK] == 0xFE:
                break
            if opcode == 0x80 and self.rom[(self.pc + 1) & PC_MASK] == 0xFE:
                # Entered the terminal self-loop.
                break
        return self.cycles

    def state(self) -> Dict[str, int]:
        """Architectural state snapshot for comparisons."""
        return {
            "pc": self.pc, "acc": self.acc, "b": self.b, "psw": self.psw,
            "sp": self.sp, "p1": self.p1, "p2": self.p2,
        }
